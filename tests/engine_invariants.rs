//! Engine invariants under random workloads and random legal strategies.
//!
//! Every strategy family the crate ships is driven step-by-step through
//! random (possibly non-disjoint) workloads; after every step the cache
//! must satisfy its structural invariants ([`Cache::debug_validate`]
//! cross-checks the free-cell bitset, the page index, the pin list and the
//! per-core ownership counts against the cell array), and the stepped run
//! must agree exactly with [`Simulator::run`] and
//! [`Simulator::run_with_trace`].
//!
//! [`Cache::debug_validate`]: multicore_paging::Cache::debug_validate

use multicore_paging::policies::{
    Clock, Fifo, Lfu, LruMimicPartition, Marking, MarkingTie, Mru, Partition, RandomEvict, Shared,
    SharedFitf,
};
use multicore_paging::{
    shared_lru, simulate, static_partition_lru, CacheStrategy, PageId, SimConfig, Simulator,
    Workload,
};
use proptest::prelude::*;

/// Instantiate the `idx`-th strategy family. Returns the strategy and
/// whether it requires a disjoint workload (the partition families own
/// pages per-core; cross-core sharing is outside their contract).
fn make_strategy(
    idx: usize,
    seed: u64,
    cache_size: usize,
    cores: usize,
) -> (Box<dyn CacheStrategy>, bool) {
    match idx {
        0 => (Box::new(shared_lru()), false),
        1 => (Box::new(Shared::new(Fifo::new())), false),
        2 => (Box::new(Shared::new(Clock::new())), false),
        3 => (Box::new(Shared::new(Lfu::new())), false),
        4 => (Box::new(Shared::new(Mru::new())), false),
        5 => (Box::new(Shared::new(RandomEvict::new(seed))), false),
        6 => (
            Box::new(Shared::new(Marking::new(MarkingTie::Random(seed)))),
            false,
        ),
        7 => (Box::new(SharedFitf::new()), false),
        8 => (Box::new(LruMimicPartition::new()), true),
        _ => (
            Box::new(static_partition_lru(Partition::equal(cache_size, cores))),
            true,
        ),
    }
}

fn arb_sequences() -> impl Strategy<Value = Vec<Vec<u32>>> {
    // 1..=3 cores, lengths 0..=12, universe 0..6 — deliberately shared
    // across cores, so shared-fetch misses and cross-core evictions occur.
    prop::collection::vec(prop::collection::vec(0u32..6, 0..12), 1..=3)
}

/// Build a workload from the raw sequences, giving each core a private
/// page range when the strategy demands disjointness.
fn build_workload(raw: &[Vec<u32>], disjoint: bool) -> Workload {
    let offset = if disjoint { 100 } else { 0 };
    Workload::new(
        raw.iter()
            .enumerate()
            .map(|(core, s)| {
                s.iter()
                    .map(|&v| PageId(core as u32 * offset + v))
                    .collect()
            })
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn every_strategy_preserves_engine_invariants(
        raw in arb_sequences(),
        strategy_idx in 0usize..10,
        extra_k in 0usize..3,
        tau in 0u64..4,
        seed in 0u64..1_000_000,
    ) {
        let cores = raw.len();
        let cache_size = cores + extra_k;
        let cfg = SimConfig::new(cache_size, tau);
        let (strategy, disjoint) = make_strategy(strategy_idx, seed, cache_size, cores);
        let w = build_workload(&raw, disjoint);

        // Step-wise run: validate the cache after every single step.
        let mut sim = Simulator::new(&w, cfg, strategy).unwrap();
        let mut steps = 0usize;
        loop {
            let report = sim.step().unwrap();
            prop_assert!(sim.cache().occupied() <= cache_size);
            let validated = sim.cache().debug_validate();
            prop_assert!(
                validated.is_ok(),
                "cache invariant broken after step {steps}: {validated:?}"
            );
            if report.is_none() {
                break;
            }
            steps += 1;
            prop_assert!(steps <= w.total_len() * (tau as usize + 2) + 2);
        }
        prop_assert!(sim.finished());
        let stepped = sim.run().unwrap(); // already finished: collects the result

        // The stepped run, the plain run, and the traced run agree exactly.
        let (strategy, _) = make_strategy(strategy_idx, seed, cache_size, cores);
        let plain = simulate(&w, cfg, strategy).unwrap();
        prop_assert_eq!(&stepped, &plain);
        let (strategy, _) = make_strategy(strategy_idx, seed, cache_size, cores);
        let (traced, trace) = Simulator::new(&w, cfg, strategy)
            .unwrap()
            .run_with_trace()
            .unwrap();
        prop_assert_eq!(&traced, &plain);
        let served: usize = trace.iter().map(|s| s.served.len()).sum();
        prop_assert_eq!(served, w.total_len());

        // Aggregate bookkeeping: counts match times, times strictly
        // increase, every request is accounted for.
        let n: u64 = w.total_len() as u64;
        prop_assert_eq!(plain.total_faults() + plain.total_hits(), n);
        for core in 0..cores {
            prop_assert_eq!(plain.faults[core], plain.fault_times[core].len() as u64);
            prop_assert_eq!(plain.faults[core] + plain.hits[core], w.len(core) as u64);
            prop_assert!(plain.fault_times[core].windows(2).all(|t| t[0] < t[1]));
        }
    }
}
