//! Every strategy × several workload shapes: sanity invariants that any
//! legal cache strategy must satisfy under the model.

use multicore_paging::policies::{
    Clock, Fifo, Lfu, LruMimicPartition, Marking, MarkingTie, Mru, RandomEvict, SacrificeOffline,
    Shared,
};
use multicore_paging::workloads::{lemma4_cyclic, multiprogrammed, uniform, zipf, CorePattern};
use multicore_paging::{
    shared_lru, simulate, static_partition_belady, static_partition_lru, Partition, SharedFitf,
    SimConfig, SimResult, Workload,
};

fn workload_zoo() -> Vec<(String, Workload, SimConfig)> {
    vec![
        (
            "uniform".into(),
            uniform(3, 300, 12, 1),
            SimConfig::new(6, 2),
        ),
        (
            "zipf".into(),
            zipf(2, 300, 20, 1.0, 2),
            SimConfig::new(4, 0),
        ),
        (
            "cycles".into(),
            lemma4_cyclic(2, 4, 200),
            SimConfig::new(4, 3),
        ),
        (
            "mixed".into(),
            multiprogrammed(
                &[
                    CorePattern::Scan { universe: 40 },
                    CorePattern::Loop { len: 3 },
                ],
                200,
                3,
            ),
            SimConfig::new(4, 1),
        ),
    ]
}

fn check_invariants(name: &str, w: &Workload, r: &SimResult) {
    let n = w.total_len() as u64;
    assert_eq!(
        r.total_faults() + r.total_hits(),
        n,
        "{name}: every request served once"
    );
    assert!(r.total_faults() <= n, "{name}: faults bounded by requests");
    // Cold misses are unavoidable: at least one fault per distinct page
    // that is ever requested (shared fetch misses can only add).
    assert!(
        r.total_faults() >= w.universe_size() as u64,
        "{name}: fewer faults than distinct pages"
    );
    // Makespan is at least the longest sequence (one step per request)
    // and at most every request faulting.
    assert!(
        r.makespan >= w.max_len() as u64,
        "{name}: makespan too small"
    );
    assert!(
        r.makespan <= n * (r.config.tau + 1),
        "{name}: makespan exceeds all-fault horizon"
    );
    for core in 0..w.num_cores() {
        assert_eq!(
            r.faults[core] + r.hits[core],
            w.len(core) as u64,
            "{name}: per-core request conservation"
        );
        assert!(
            r.fault_times[core].windows(2).all(|x| x[0] < x[1]),
            "{name}: fault times strictly increase per core"
        );
    }
}

#[test]
fn all_strategies_satisfy_model_invariants() {
    for (wname, w, cfg) in workload_zoo() {
        let p = w.num_cores();
        let part = Partition::equal(cfg.cache_size, p);
        let runs: Vec<(String, SimResult)> = vec![
            ("S_LRU".into(), simulate(&w, cfg, shared_lru()).unwrap()),
            (
                "S_FIFO".into(),
                simulate(&w, cfg, Shared::new(Fifo::new())).unwrap(),
            ),
            (
                "S_CLOCK".into(),
                simulate(&w, cfg, Shared::new(Clock::new())).unwrap(),
            ),
            (
                "S_LFU".into(),
                simulate(&w, cfg, Shared::new(Lfu::new())).unwrap(),
            ),
            (
                "S_MRU".into(),
                simulate(&w, cfg, Shared::new(Mru::new())).unwrap(),
            ),
            (
                "S_RAND".into(),
                simulate(&w, cfg, Shared::new(RandomEvict::new(9))).unwrap(),
            ),
            (
                "S_MARK".into(),
                simulate(&w, cfg, Shared::new(Marking::new(MarkingTie::Lru))).unwrap(),
            ),
            (
                "S_MARK_RAND".into(),
                simulate(&w, cfg, Shared::new(Marking::new(MarkingTie::Random(4)))).unwrap(),
            ),
            (
                "S_FITF".into(),
                simulate(&w, cfg, SharedFitf::new()).unwrap(),
            ),
            (
                "sP_LRU".into(),
                simulate(&w, cfg, static_partition_lru(part.clone())).unwrap(),
            ),
            (
                "sP_OPT".into(),
                simulate(&w, cfg, static_partition_belady(part.clone())).unwrap(),
            ),
            (
                "dP_mimic".into(),
                simulate(&w, cfg, LruMimicPartition::new()).unwrap(),
            ),
            (
                "S_OFF".into(),
                simulate(&w, cfg, SacrificeOffline::new(p - 1)).unwrap(),
            ),
        ];
        for (sname, r) in &runs {
            check_invariants(&format!("{wname}/{sname}"), &w, r);
        }
    }
}

#[test]
fn strategies_are_deterministic() {
    let (_, w, cfg) = workload_zoo().remove(0);
    let a = simulate(&w, cfg, shared_lru()).unwrap();
    let b = simulate(&w, cfg, shared_lru()).unwrap();
    assert_eq!(a, b);
    // Randomized policies are deterministic per seed.
    let a = simulate(&w, cfg, Shared::new(RandomEvict::new(5))).unwrap();
    let b = simulate(&w, cfg, Shared::new(RandomEvict::new(5))).unwrap();
    assert_eq!(a, b);
}

#[test]
fn marking_respects_lemma1_phase_bound_per_part() {
    // sP^B_MARK faults at most k_j per phase of each core's sequence
    // (Lemma 1's upper-bound skeleton), checked against the phase count.
    use multicore_paging::offline::phase_starts;
    let w = zipf(2, 400, 10, 0.8, 7);
    let k = 4;
    let part = Partition::equal(k, 2);
    let r = simulate(
        &w,
        SimConfig::new(k, 1),
        multicore_paging::StaticPartition::uniform(part.clone(), || Marking::new(MarkingTie::Lru)),
    )
    .unwrap();
    for core in 0..2 {
        let phases = phase_starts(w.sequence(core), part.size(core)).len() as u64;
        assert!(
            r.faults[core] <= part.size(core) as u64 * phases,
            "core {core}: {} faults > k*phases = {}",
            r.faults[core],
            part.size(core) as u64 * phases
        );
    }
}

/// CLOCK and LRU-K under τ > 0 on workloads with simultaneous requests
/// for shared pages (guaranteed shared-fetch misses): both the optimized
/// engine and the naive reference engine must agree exactly, and the
/// fault counts are pinned so silent behaviour drift fails loudly.
#[test]
fn clock_and_lruk_agree_with_reference_under_shared_fetch_misses() {
    use multicore_paging::oracle::reference_simulate;
    use multicore_paging::policies::LruK;
    use multicore_paging::workloads::shared_hotset;

    // Both cores open on the same absent page: at t = 1 core 0 faults and
    // starts the fetch, core 1 takes a shared-fetch miss against the
    // in-flight cell. The tail keeps contending on pages 0 and 3.
    let collide = Workload::from_u32([vec![0, 1, 0, 3, 0], vec![0, 3, 0, 1, 3]]).unwrap();
    // A larger mixed private/shared instance (non-disjoint by design).
    let hotset = shared_hotset(3, 40, 6, 3, 0.5, 11);

    let mut pinned: Vec<u64> = Vec::new();
    for (w, cfg) in [
        (collide.clone(), SimConfig::new(3, 2)),
        (collide, SimConfig::new(2, 4)),
        (hotset.clone(), SimConfig::new(6, 1)),
        (hotset, SimConfig::new(4, 3)),
    ] {
        let clock_fast = simulate(&w, cfg, Shared::new(Clock::new())).unwrap();
        let clock_slow = reference_simulate(&w, cfg, Shared::new(Clock::new())).unwrap();
        assert_eq!(
            clock_fast, clock_slow,
            "CLOCK diverged K={}",
            cfg.cache_size
        );
        let lruk_fast = simulate(&w, cfg, Shared::new(LruK::new(2))).unwrap();
        let lruk_slow = reference_simulate(&w, cfg, Shared::new(LruK::new(2))).unwrap();
        assert_eq!(lruk_fast, lruk_slow, "LRU-2 diverged K={}", cfg.cache_size);
        pinned.push(clock_fast.total_faults());
        pinned.push(lruk_fast.total_faults());
    }
    // First pair: 3 distinct pages but 4 faults — the extra one is the
    // shared-fetch miss both engines must charge to core 1 at t = 1.
    assert_eq!(
        pinned,
        vec![4, 4, 9, 9, 55, 49, 82, 80],
        "pinned fault counts drifted"
    );
}
