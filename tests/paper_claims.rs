//! End-to-end: every experiment in the registry must confirm its paper
//! claim at quick scale. This is the repository's headline test — if the
//! reproduction drifts from the paper, it fails here.

use multicore_paging::analysis::{registry, Scale, Verdict};

#[test]
fn every_paper_claim_confirms_at_quick_scale() {
    let mut failures = Vec::new();
    for experiment in registry() {
        let report = experiment.run(Scale::Quick);
        if !matches!(report.verdict, Verdict::Confirmed) {
            failures.push(format!("{}: {:?}", report.id, report.verdict));
        }
    }
    assert!(
        failures.is_empty(),
        "unconfirmed claims:\n{}",
        failures.join("\n")
    );
}

#[test]
fn registry_is_complete_and_well_formed() {
    let experiments = registry();
    assert_eq!(experiments.len(), 21, "E01..E15 plus X01..X06");
    let mut ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
    let sorted = {
        let mut s = ids.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(ids, sorted, "registry must be in id order");
    ids.dedup();
    assert_eq!(ids.len(), 21, "ids must be unique");
    for e in &experiments {
        assert!(!e.title().is_empty());
        assert!(!e.claim().is_empty());
    }
}
