//! Regression tests for the `next_voluntary_time` boundary contract and
//! for fetch-completion ordering under fast-forward.
//!
//! The contract (documented on `CacheStrategy::next_voluntary_time`) has
//! four boundary cases — stale, quiet, coincident, post-final — and both
//! engines must implement all four identically. Each test drives the
//! event engine ([`Simulator`]) and the scan engine ([`TickSimulator`])
//! and asserts full `StepReport`-level trace equality in addition to the
//! behavior being pinned.

use multicore_paging::{
    simulate, simulate_tick, Cache, CacheStrategy, Outcome, PageId, SimConfig, SimResult,
    Simulator, StepReport, TickSimulator, Time, Workload,
};
use std::collections::BTreeMap;

/// First-fit placement plus a script of voluntary evictions: at each
/// scheduled time, evict the scheduled pages (skipping any that are not
/// resident). Declares the earliest unconsumed time via
/// `next_voluntary_time`, exactly like the offline `Replay` harness.
#[derive(Clone)]
struct Declare {
    voluntary: BTreeMap<Time, Vec<PageId>>,
}

impl Declare {
    fn none() -> Self {
        Declare {
            voluntary: BTreeMap::new(),
        }
    }

    fn at(entries: &[(Time, &[u32])]) -> Self {
        Declare {
            voluntary: entries
                .iter()
                .map(|&(t, pages)| (t, pages.iter().map(|&p| PageId(p)).collect()))
                .collect(),
        }
    }
}

impl CacheStrategy for Declare {
    fn name(&self) -> String {
        "Declare".into()
    }

    fn choose_cell(&mut self, _core: usize, _page: PageId, _t: Time, cache: &Cache) -> usize {
        cache
            .empty_cell()
            .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
            .expect("a victim always exists")
    }

    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        let rest = self.voluntary.split_off(&(time + 1));
        let due = std::mem::replace(&mut self.voluntary, rest);
        due.values()
            .flatten()
            .filter_map(|p| cache.cell_of(*p))
            .collect()
    }

    fn next_voluntary_time(&self) -> Option<Time> {
        self.voluntary.keys().next().copied()
    }
}

/// Declares the same fixed time forever and never actually evicts —
/// exercises the stale and post-final boundaries, where a sloppy engine
/// would either livelock (re-serving the same declared time) or pad the
/// run with empty trailing steps.
#[derive(Clone)]
struct ConstantDeclare(Time);

impl CacheStrategy for ConstantDeclare {
    fn name(&self) -> String {
        "ConstantDeclare".into()
    }

    fn choose_cell(&mut self, _core: usize, _page: PageId, _t: Time, cache: &Cache) -> usize {
        cache
            .empty_cell()
            .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
            .expect("a victim always exists")
    }

    fn next_voluntary_time(&self) -> Option<Time> {
        Some(self.0)
    }
}

fn w(seqs: &[&[u32]]) -> Workload {
    Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
}

/// Run both engines with traces and assert they agree exactly; returns the
/// (shared) result and trace.
fn both_engines<S: CacheStrategy + Clone>(
    wl: &Workload,
    cfg: SimConfig,
    strategy: S,
) -> (SimResult, Vec<StepReport>) {
    let (er, et) = Simulator::new(wl, cfg, strategy.clone())
        .unwrap()
        .run_with_trace()
        .unwrap();
    let (tr, tt) = TickSimulator::new(wl, cfg, strategy)
        .unwrap()
        .run_with_trace()
        .unwrap();
    assert_eq!(er, tr, "engines disagree on the aggregate result");
    assert_eq!(et, tt, "engines disagree on the step trace");
    (er, et)
}

#[test]
fn stale_declaration_is_ignored() {
    // vt = 0 is stale from the very start (last_time starts at 0): the run
    // must be identical to one with no declaration at all, on both engines.
    let wl = w(&[&[1, 2, 1], &[3, 1]]);
    let cfg = SimConfig::new(3, 2);
    let baseline = both_engines(&wl, cfg, Declare::none());
    let declared = both_engines(&wl, cfg, Declare::at(&[(0, &[])]));
    assert_eq!(baseline, declared);

    // A declaration that *becomes* stale mid-run: Declare consumes its
    // t = 1 entry at the first step; a constant declarer never stops
    // declaring t = 1, so after the first served step the value is stale
    // forever. The run must terminate with the same result.
    let constant = both_engines(&wl, cfg, ConstantDeclare(1));
    // ConstantDeclare(1) never evicts, so its observable behavior matches
    // the no-declaration baseline too (t = 1 is the first request time, so
    // even the coincident consultation is a no-op).
    assert_eq!(baseline.0, constant.0);
    assert_eq!(baseline.1, constant.1);
}

#[test]
fn quiet_declaration_gets_voluntary_only_step() {
    // Single core, τ = 1, K = 2: requests land at t = 1 (fault on 1,
    // ready 3), t = 3 (hit), t = 4 (fault on 2, ready 6). Declaring
    // vt = 5 — strictly between the last served step (4) and the next
    // request (none: the sequence is finished)… is the post-final case.
    // To get a *quiet* step we need a later request: sequence [1, 1, 2, 2]
    // serves t = 1, 3, 4, 6. Declare vt = 5 ∈ (4, 6): a voluntary-only
    // step at t = 5 evicting page 1 (resident since t = 3).
    let wl = w(&[&[1, 1, 2, 2]]);
    let cfg = SimConfig::new(2, 1);
    let (result, trace) = both_engines(&wl, cfg, Declare::at(&[(5, &[1])]));

    let times: Vec<Time> = trace.iter().map(|s| s.time).collect();
    assert_eq!(times, vec![1, 3, 4, 5, 6]);
    let quiet = &trace[3];
    assert_eq!(quiet.time, 5);
    assert!(quiet.served.is_empty(), "quiet step serves no requests");
    assert_eq!(quiet.voluntary.len(), 1);
    assert_eq!(quiet.voluntary[0].1, PageId(1));
    // The voluntary-only step changes neither fault accounting nor the
    // makespan (makespan tracks request service, not evictions).
    let baseline = simulate(&wl, cfg, Declare::none()).unwrap();
    assert_eq!(result.fault_times, baseline.fault_times);
    assert_eq!(result.makespan, baseline.makespan);
}

#[test]
fn coincident_declaration_folds_into_request_step() {
    // Same workload; declare vt = 4, which IS the third request's time.
    // No separate voluntary-only step may appear: the eviction of page 1
    // happens inside the t = 4 step, after pinning that step's request
    // (page 2, so page 1 is evictable).
    let wl = w(&[&[1, 1, 2, 2]]);
    let cfg = SimConfig::new(2, 1);
    let (_, trace) = both_engines(&wl, cfg, Declare::at(&[(4, &[1])]));

    let times: Vec<Time> = trace.iter().map(|s| s.time).collect();
    assert_eq!(times, vec![1, 3, 4, 6], "no extra step for a coincident vt");
    let folded = &trace[2];
    assert_eq!(folded.voluntary, vec![(0, PageId(1))]);
    assert_eq!(folded.served.len(), 1);
    assert_eq!(folded.served[0].page, PageId(2));
    assert!(matches!(folded.served[0].outcome, Outcome::Fault { .. }));
}

#[test]
fn coincident_declaration_cannot_evict_pinned_page() {
    // Coincident with a request *for the declared victim*: page 1 is
    // requested at t = 3 and pinned before voluntary evictions run, so the
    // eviction silently fails (cell_of still finds it, but the cache
    // refuses… Declare filters by residency only, so the engine's pin is
    // what must protect it). Pinning happens before voluntary evictions on
    // both engines; a strategy returning a pinned cell is an error, so
    // Declare would panic the run if pins were not applied first. Here we
    // avoid the error path and just pin down that the request is a hit.
    let wl = w(&[&[1, 1, 1]]);
    let cfg = SimConfig::new(2, 1);
    // Declare an eviction of page 9 (never resident) at t = 3: consulted
    // coincidentally, evicts nothing, request proceeds as a hit.
    let (result, trace) = both_engines(&wl, cfg, Declare::at(&[(3, &[9])]));
    assert_eq!(result.total_faults(), 1);
    let step = trace.iter().find(|s| s.time == 3).unwrap();
    assert!(step.voluntary.is_empty());
    assert!(matches!(step.served[0].outcome, Outcome::Hit));
}

#[test]
fn post_final_declaration_is_silently_dropped() {
    // Declarations after the final request must not extend the run: no
    // trailing steps, no makespan change, identical traces to an
    // undeclared run — on both engines.
    let wl = w(&[&[1, 2], &[3]]);
    let cfg = SimConfig::new(3, 2);
    let baseline = both_engines(&wl, cfg, Declare::none());
    let declared = both_engines(&wl, cfg, Declare::at(&[(100, &[1])]));
    assert_eq!(baseline, declared);
    // Same via a strategy that never stops declaring a future time.
    let constant = both_engines(&wl, cfg, ConstantDeclare(1_000_000));
    assert_eq!(baseline.0, constant.0);
    assert_eq!(baseline.1, constant.1);
    // The run genuinely ended: last trace time is the last request time.
    let last = baseline.1.last().unwrap().time;
    assert_eq!(last, baseline.1.iter().map(|s| s.time).max().unwrap());
    assert!(last <= baseline.0.makespan);
}

#[test]
fn completion_ordering_under_fast_forward() {
    // Overlapping fetches on a non-disjoint workload. At t = 1: core 0
    // faults on page 1 (starts the fetch), core 1 shared-fetch-misses on
    // the same page (charged a fault, no new cell), core 2 faults on
    // page 3. All three fetch completions land at exactly t = 5, which is
    // also the next request time after the fast-forward over t = 2..4 —
    // promotions must be applied before pinning and serving, so core 1's
    // re-request of page 1 and core 2's request of page 1 are *hits*.
    let wl = w(&[&[1, 2], &[1, 1], &[3, 1]]);
    let cfg = SimConfig::new(3, 3);
    let (result, trace) = both_engines(&wl, cfg, Declare::none());

    assert_eq!(trace.len(), 2, "two parallel steps: t = 1 and t = 5");
    let first = &trace[0];
    assert_eq!(first.time, 1);
    let outcomes: Vec<&Outcome> = first.served.iter().map(|s| &s.outcome).collect();
    assert!(matches!(outcomes[0], Outcome::Fault { .. }));
    assert!(matches!(outcomes[1], Outcome::SharedFetchMiss));
    assert!(matches!(outcomes[2], Outcome::Fault { .. }));
    // Cores are served in increasing core order within the step.
    let cores: Vec<usize> = first.served.iter().map(|s| s.core).collect();
    assert_eq!(cores, vec![0, 1, 2]);

    let second = &trace[1];
    assert_eq!(second.time, 5, "completions at ready_at = 5 promote at 5");
    assert!(matches!(second.served[0].outcome, Outcome::Fault { .. })); // core 0: page 2
    assert!(matches!(second.served[1].outcome, Outcome::Hit)); // core 1: page 1, just promoted
    assert!(matches!(second.served[2].outcome, Outcome::Hit)); // core 2: page 1

    assert_eq!(result.faults, vec![2, 1, 1]);
    assert_eq!(result.hits, vec![0, 1, 1]);
    assert_eq!(result.makespan, 8); // core 0's fault at 5 occupies [5, 5 + τ]
}

#[test]
fn completions_inside_skipped_gaps_are_drained() {
    // A fetch whose owner has finished completes inside a gap no step
    // lands on: core 0's only request starts a fetch ready at t = 5, but
    // the next served steps are hits of core 1 at t = 6..=8 (after its own
    // fault's τ window) — the event engine must drain the stale completion
    // event when fast-forwarding past it, keeping the cache (and any
    // strategy observing it) identical to the scan engine's lazy
    // promote_due. Core 1 then re-requests page 1 and must hit.
    let wl = w(&[&[1], &[2, 2, 2, 1]]);
    let cfg = SimConfig::new(3, 3);
    let (result, trace) = both_engines(&wl, cfg, Declare::none());
    // t = 1: both cores fault. t = 5, 6: core 1 hits page 2. t = 7:
    // core 1 hits page 1 — promoted long after its ready_at = 5.
    let times: Vec<Time> = trace.iter().map(|s| s.time).collect();
    assert_eq!(times, vec![1, 5, 6, 7]);
    assert!(matches!(trace[3].served[0].outcome, Outcome::Hit));
    assert_eq!(result.faults, vec![1, 1]);
    assert_eq!(result.hits, vec![0, 3]);

    // Larger battery: uneven lengths, shared pages, τ from 0 to large —
    // trace equality between the engines is the real assertion.
    for tau in [0u64, 1, 2, 7, 64, 1000] {
        for wl in [
            w(&[&[1, 2, 1, 2, 3], &[2, 3, 2], &[1]]),
            w(&[&[5, 5, 5, 5], &[5, 6, 5, 6], &[6, 5]]),
            w(&[&[1, 2, 3, 4, 1, 2, 3, 4], &[4, 3, 2, 1]]),
        ] {
            let cfg = SimConfig::new(4, tau);
            both_engines(&wl, cfg, Declare::none());
            let a = simulate(&wl, cfg, Declare::none()).unwrap();
            let b = simulate_tick(&wl, cfg, Declare::none()).unwrap();
            assert_eq!(a, b, "tau = {tau}");
        }
    }
}
