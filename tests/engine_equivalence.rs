//! Property test: the event engine and the scan-based tick engine are
//! bit-identical — full `SimResult` *and* step-trace equality — across
//! every registered strategy family, τ ∈ {0, 1, large}, and both disjoint
//! and non-disjoint workloads.
//!
//! This is the blanket guarantee behind replacing the hot loop: whatever a
//! policy does (voluntary evictions, randomized tie-breaks, per-core
//! partitions, offline sacrifice schedules), the discrete-event scheduler
//! must serve exactly the same timesteps in exactly the same within-step
//! order as the `O(p)`-scan engine it replaced.

use multicore_paging::oracle::{build_family, family_applicable, Instance, FAMILIES};
use multicore_paging::workloads::staggered_thrash;
use multicore_paging::{PageId, SimConfig, Simulator, TickSimulator, Workload};
use proptest::prelude::*;

/// Raw per-core sequences over a small shared universe, offset into
/// private per-core ranges when `disjoint` is demanded.
fn build_workload(raw: &[Vec<u32>], disjoint: bool) -> Workload {
    let offset = if disjoint { 100 } else { 0 };
    Workload::new(
        raw.iter()
            .enumerate()
            .map(|(core, s)| {
                s.iter()
                    .map(|&v| PageId(core as u32 * offset + v))
                    .collect()
            })
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn event_engine_is_bit_identical_to_tick_engine(
        raw in prop::collection::vec(prop::collection::vec(0u32..8, 0..14), 1..=3),
        family_idx in 0usize..FAMILIES.len(),
        extra_k in 0usize..3,
        tau_tier in 0u64..3,
        tau_large in 64u64..300,
        disjoint_sel in 0u32..2,
        seed in 0u64..1_000_000,
    ) {
        // τ tiers: dense (0), unit (1), and large (the skip regime).
        let tau = match tau_tier {
            0 => 0,
            1 => 1,
            _ => tau_large,
        };
        let disjoint = disjoint_sel == 1;
        let family = FAMILIES[family_idx];
        let cores = raw.len();
        let cfg = SimConfig::new(cores + extra_k, tau);
        let mut instance = Instance::new(build_workload(&raw, disjoint), cfg);
        if !family_applicable(family, &instance) {
            // The offline sacrifice construction assumes disjoint
            // sequences; test it on the disjoint variant instead of
            // discarding the case.
            instance = Instance::new(build_workload(&raw, true), cfg);
        }
        let mk = || build_family(family, &instance, seed).expect("registered family");

        let (event_result, event_trace) = Simulator::new(&instance.workload, cfg, mk())
            .unwrap()
            .run_with_trace()
            .unwrap();
        let (tick_result, tick_trace) = TickSimulator::new(&instance.workload, cfg, mk())
            .unwrap()
            .run_with_trace()
            .unwrap();

        prop_assert_eq!(&event_result, &tick_result, "family {}", family);
        prop_assert_eq!(&event_trace, &tick_trace, "family {}", family);

        // Trace sanity: every request is served exactly once, in step-time
        // order, with cores ascending within each step.
        let served: usize = event_trace.iter().map(|s| s.served.len()).sum();
        prop_assert_eq!(served, instance.workload.total_len());
        prop_assert!(event_trace.windows(2).all(|w| w[0].time < w[1].time));
        for step in &event_trace {
            prop_assert!(step.served.windows(2).all(|s| s[0].core < s[1].core));
        }
    }
}

/// The point of the event engine: on sparse large-τ workloads the number
/// of served steps is a small fraction of the makespan, and the engines
/// still agree exactly.
#[test]
fn skip_path_serves_few_steps_and_stays_identical() {
    let w = staggered_thrash(8, 50, 10, 8, 3);
    let cfg = SimConfig::new(2 * 8, 127);
    let mk = || build_family("lru", &Instance::new(w.clone(), cfg), 0).unwrap();
    let (event_result, event_trace) = Simulator::new(&w, cfg, mk())
        .unwrap()
        .run_with_trace()
        .unwrap();
    let (tick_result, tick_trace) = TickSimulator::new(&w, cfg, mk())
        .unwrap()
        .run_with_trace()
        .unwrap();
    assert_eq!(event_result, tick_result);
    assert_eq!(event_trace, tick_trace);
    assert!(
        (event_trace.len() as u64) * 10 < event_result.makespan,
        "{} steps over a makespan of {} — the workload is not sparse",
        event_trace.len(),
        event_result.makespan
    );
}
