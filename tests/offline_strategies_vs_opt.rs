//! Differential sanity: every *scripted* offline strategy (the proof
//! constructions) is a legal schedule, so its fault count can never beat
//! the exact DP optimum — and on its home workload it should be close.

use multicore_paging::hardness::{reduce_to_pif, GadgetStrategy, PartitionInstance};
use multicore_paging::offline::ftf_min_faults;
use multicore_paging::policies::SacrificeOffline;
use multicore_paging::workloads::lemma4_cyclic;
use multicore_paging::{simulate, SimConfig};

#[test]
fn sacrifice_offline_never_beats_the_dp() {
    for tau in [0u64, 1, 2, 3] {
        let w = lemma4_cyclic(2, 4, 8);
        let cfg = SimConfig::new(4, tau);
        let opt = ftf_min_faults(&w, cfg).unwrap();
        let off = simulate(&w, cfg, SacrificeOffline::new(1))
            .unwrap()
            .total_faults();
        assert!(
            off >= opt,
            "tau={tau}: scripted strategy {off} beat OPT {opt}"
        );
        // On its home workload the sacrifice heuristic should be within a
        // small factor of optimal.
        assert!(
            off <= 3 * opt,
            "tau={tau}: sacrifice strategy far from OPT ({off} vs {opt})"
        );
    }
}

#[test]
fn gadget_total_faults_respect_the_dp_bound() {
    // The Theorem 2 gadget meets per-sequence bounds exactly; its *total*
    // fault count is still a legal schedule's and must dominate the FTF
    // optimum on the same (truncated) instance.
    let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
    let red = reduce_to_pif(&inst, 1);
    let solution = inst.solve().unwrap();
    let strategy = GadgetStrategy::new(&red, &solution);
    let run = simulate(&red.workload, red.cfg, strategy).unwrap();
    let gadget_total = run.total_faults();
    let opt = ftf_min_faults(&red.workload, red.cfg).unwrap();
    assert!(gadget_total >= opt, "gadget {gadget_total} beat OPT {opt}");
    // The gadget trades total faults for per-sequence fairness: on this
    // instance it must be strictly above the unfair optimum.
    assert!(
        gadget_total > opt,
        "expected the fairness constraint to cost faults ({gadget_total} vs {opt})"
    );
}
