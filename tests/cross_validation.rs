//! Cross-crate validation: the offline DPs, the brute-force searches, and
//! the discrete-time engine must all tell one consistent story.

use multicore_paging::offline::{
    brute_force_min_faults, fitf_restricted_min_faults, ftf_dp, ftf_min_faults, pif_decide,
    FtfOptions, PifOptions,
};
use multicore_paging::policies::{Replay, Shared};
use multicore_paging::workloads::random_disjoint;
use multicore_paging::{shared_lru, simulate, SimConfig};

fn small_cases() -> Vec<(multicore_paging::Workload, SimConfig)> {
    let mut cases = Vec::new();
    for seed in 0..30u64 {
        let w = random_disjoint(seed, 2, 6, 3);
        let p = w.num_cores();
        for k in [p.max(2), p + 1] {
            for tau in [0u64, 1, 2] {
                cases.push((w.clone(), SimConfig::new(k, tau)));
            }
        }
    }
    cases
}

#[test]
fn dp_equals_brute_force_and_restricted_fitf() {
    for (w, cfg) in small_cases() {
        let dp = ftf_min_faults(&w, cfg).unwrap();
        let brute = brute_force_min_faults(&w, cfg, 50_000_000).unwrap();
        assert_eq!(dp, brute, "DP vs brute force on {w:?} {cfg:?}");
        let restricted = fitf_restricted_min_faults(&w, cfg, 50_000_000).unwrap();
        assert_eq!(dp, restricted, "Theorem 5 class on {w:?} {cfg:?}");
    }
}

#[test]
fn reconstructed_schedules_replay_exactly() {
    for (w, cfg) in small_cases().into_iter().step_by(3) {
        let r = ftf_dp(
            &w,
            cfg,
            FtfOptions {
                reconstruct: true,
                ..Default::default()
            },
        )
        .unwrap();
        let schedule = r.schedule.unwrap();
        let replay = Replay::new(schedule.decisions).with_voluntary(schedule.voluntary);
        let sim = simulate(&w, cfg, replay).unwrap();
        assert_eq!(
            sim.total_faults(),
            r.min_faults,
            "replay diverged on {w:?} {cfg:?}"
        );
    }
}

#[test]
fn online_strategies_never_beat_the_dp() {
    use multicore_paging::policies::{Clock, Fifo, Lfu, Mru};
    for (w, cfg) in small_cases().into_iter().step_by(2) {
        let opt = ftf_min_faults(&w, cfg).unwrap();
        let runs = [
            simulate(&w, cfg, shared_lru()).unwrap().total_faults(),
            simulate(&w, cfg, Shared::new(Fifo::new()))
                .unwrap()
                .total_faults(),
            simulate(&w, cfg, Shared::new(Clock::new()))
                .unwrap()
                .total_faults(),
            simulate(&w, cfg, Shared::new(Lfu::new()))
                .unwrap()
                .total_faults(),
            simulate(&w, cfg, Shared::new(Mru::new()))
                .unwrap()
                .total_faults(),
        ];
        for faults in runs {
            assert!(
                faults >= opt,
                "an online run beat OPT ({faults} < {opt}) on {w:?} {cfg:?}"
            );
        }
    }
}

#[test]
fn every_concrete_run_is_a_pif_witness() {
    // The fault vector of any real execution, at any checkpoint, must be
    // accepted by Algorithm 2.
    for seed in 0..10u64 {
        let w = random_disjoint(seed, 2, 6, 3);
        let cfg = SimConfig::new(w.num_cores().max(2), 1);
        let run = simulate(&w, cfg, shared_lru()).unwrap();
        for t in [1, run.makespan / 2, run.makespan] {
            let bounds = run.fault_vector_at(t);
            let feasible = pif_decide(&w, cfg, t, &bounds, PifOptions::default()).unwrap();
            assert!(feasible, "simulated witness rejected at t={t} on {w:?}");
        }
    }
}

#[test]
fn dp_total_faults_lower_bounds_pif_sums() {
    // If PIF accepts bounds b at a horizon past everyone's completion,
    // then Σ b_i >= FTF optimum.
    for seed in 0..8u64 {
        let w = random_disjoint(seed + 100, 2, 5, 2);
        let cfg = SimConfig::new(2, 1);
        let opt = ftf_min_faults(&w, cfg).unwrap();
        let horizon = (w.total_len() as u64 + 2) * (cfg.tau + 1) + 2;
        // A bound vector summing below OPT must be rejected.
        if opt >= 2 {
            let lo = (opt - 1) / 2;
            let hi = opt - 1 - lo;
            let feasible = pif_decide(&w, cfg, horizon, &[lo, hi], PifOptions::default()).unwrap();
            assert!(
                !feasible,
                "sum-below-OPT bounds accepted on {w:?} (opt={opt})"
            );
        }
    }
}
