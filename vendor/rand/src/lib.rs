//! Minimal offline stand-in for the parts of the `rand` crate this
//! workspace uses: a seedable [`StdRng`] plus the [`Rng`]/[`SeedableRng`]
//! traits with `gen_range`, `gen`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast, with
//! good statistical quality for simulation workloads. It is **not**
//! stream-compatible with upstream `rand`'s `StdRng` (ChaCha12); all
//! in-repo consumers only rely on determinism for a fixed seed, which
//! this crate provides.

use std::ops::{Range, RangeInclusive};

/// Types that can produce raw 64-bit random words.
pub trait RngCore {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly to yield `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled from the "standard" distribution
/// (`rng.gen::<T>()`). Only `f64` (uniform in `[0, 1)`) and `bool` are
/// needed in this workspace.
pub trait SampleStandard {
    /// Draw one standard-distribution sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Standard-distribution sample (`f64` in `[0, 1)`, fair `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's deterministic RNG: xoshiro256++ (Blackman & Vigna).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..10);
            assert!(x < 10);
            let y: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: u64 = rng.gen_range(100u64..=100);
            assert_eq!(z, 100);
            let s: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
