//! Minimal offline stand-in for the parts of the `criterion` API this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The runner calibrates an iteration count against a warm-up budget,
//! takes one measured batch, prints a per-benchmark summary line, and
//! writes a `BENCH_<binary>.json` baseline next to the working directory.
//!
//! CLI flags understood: `--bench` (ignored, passed by cargo), `--quick`
//! (short budgets for CI smoke runs), `--test` (run every benchmark for
//! exactly one iteration, no file output), and a positional substring
//! filter.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for deriving throughput rates.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier inside a group, e.g. `K = 512`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Clone, Debug)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    iters: u64,
    throughput: Option<(&'static str, f64)>,
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    test_mode: bool,
    results: Vec<BenchRecord>,
}

impl Criterion {
    /// Build a runner from the process arguments (see crate docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--quick" => c.quick = true,
                "--test" => c.test_mode = true,
                other if !other.starts_with('-') && c.filter.is_none() => {
                    c.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        if std::env::var_os("CRITERION_QUICK").is_some() {
            c.quick = true;
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_bench(id.into(), None, &mut f);
        self
    }

    fn run_bench(
        &mut self,
        id: String,
        throughput: Option<&Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        let (warmup, measure) = if self.quick {
            (Duration::from_millis(40), Duration::from_millis(120))
        } else {
            (Duration::from_millis(300), Duration::from_millis(1000))
        };

        // Calibration: grow the batch until the warm-up budget is spent.
        let mut iters: u64 = 1;
        let mut spent = Duration::ZERO;
        let ns_per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            spent += b.elapsed;
            if spent >= warmup || iters >= u64::MAX / 4 {
                let batch = b.elapsed.max(Duration::from_nanos(1));
                break (batch.as_nanos() as f64 / iters as f64).max(0.1);
            }
            iters = iters.saturating_mul(2);
        };
        let target_iters = ((measure.as_nanos() as f64 / ns_per_iter) as u64).max(1);

        let mut b = Bencher {
            iters: target_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / target_iters as f64;

        let throughput = throughput.map(|t| match t {
            Throughput::Elements(n) => ("elem/s", *n as f64 / (mean_ns / 1e9)),
            Throughput::Bytes(n) => ("B/s", *n as f64 / (mean_ns / 1e9)),
        });
        let mut line = format!(
            "{id:<48} {:>12}/iter ({target_iters} iters)",
            fmt_ns(mean_ns)
        );
        if let Some((unit, rate)) = throughput {
            let _ = write!(line, "  {:>12} {unit}", fmt_rate(rate));
        }
        println!("{line}");
        self.results.push(BenchRecord {
            id,
            mean_ns,
            iters: target_iters,
            throughput,
        });
    }

    /// Write the JSON baseline for every benchmark that ran.
    pub fn final_summary(&self) {
        if self.test_mode || self.results.is_empty() {
            return;
        }
        let binary = std::env::args()
            .next()
            .map(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "bench".to_string())
            })
            .unwrap_or_else(|| "bench".to_string());
        // Strip the `-<hash>` suffix cargo appends to target names.
        let stem = match binary.rfind('-') {
            Some(pos) if binary[pos + 1..].chars().all(|c| c.is_ascii_hexdigit()) => {
                binary[..pos].to_string()
            }
            _ => binary,
        };
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"binary\": \"{}\",", escape(&stem));
        json.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}",
                escape(&r.id),
                r.mean_ns,
                r.iters
            );
            if let Some((unit, rate)) = &r.throughput {
                let _ = write!(json, ", \"rate\": {rate:.1}, \"rate_unit\": \"{unit}\"");
            }
            json.push('}');
            if i + 1 < self.results.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("  ]\n}\n");
        let path = format!("BENCH_{stem}.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` under `<group>/<id>`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_bench(full, self.throughput.as_ref(), &mut f);
        self
    }

    /// Benchmark `f` with an explicit input value under `<group>/<id>`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_bench(full, self.throughput.as_ref(), &mut |b| f(b, input));
        self
    }

    /// End the group (drop; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut c = Criterion {
            quick: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("work", |b| b.iter(|| black_box(3u64).pow(7)));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/work");
        assert_eq!(c.results[1].id, "g/5");
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[0].throughput.unwrap().0, "elem/s");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            quick: true,
            filter: Some("nope".into()),
            ..Criterion::default()
        };
        c.bench_function("g/skipped", |b| b.iter(|| 1u32 + 1));
        assert!(c.results.is_empty());
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("K", 512).id, "K/512");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
