//! Minimal offline stand-in for the parts of the `proptest` API this
//! workspace uses: the [`proptest!`] macro, `prop_assert*!`, integer-range
//! and `prop::collection::vec` strategies, `prop_map`, tuple composition,
//! and [`ProptestConfig::with_cases`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name and the case index), so failures reproduce exactly across
//! runs. Unlike upstream proptest there is no shrinking: a failing case
//! panics with the case index so it can be replayed under a debugger.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: number of cases per property).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::*;

    /// Bounds on a generated collection's length.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Drive `body` through `config.cases` deterministic random cases.
///
/// Used by the [`proptest!`] macro; not intended to be called directly.
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    // FNV-1a over the test name keeps seeds stable across runs and
    // independent across properties.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(name_hash ^ (case as u64).wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

/// Assert a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            $crate::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                $(let $p = $crate::Strategy::gen_value(&($strat), __pt_rng);)+
                $body
            });
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
}

/// Declare property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0u32..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// The conventional proptest import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Namespace mirror so `prop::collection::vec(…)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        prop::collection::vec((0u32..5, 10u32..20), 1..=4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in 0u32..10,
            y in 5u64..=9,
            v in prop::collection::vec(0usize..3, 0..6),
        ) {
            prop_assert!(x < 10);
            prop_assert!((5..=9).contains(&y));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn mapped_and_tuple_strategies(pairs in arb_pairs()) {
            prop_assert!(!pairs.is_empty() && pairs.len() <= 4);
            for (a, b) in pairs {
                prop_assert!(a < 5, "a = {}", a);
                prop_assert!((10..20).contains(&b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            first.push((0u32..100).gen_value(rng));
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            second.push((0u32..100).gen_value(rng));
        });
        assert_eq!(first, second);
        assert!(first.iter().any(|&x| x != first[0]), "cases should vary");
    }
}
