//! Watch the *effective partition*: Lemma 3's insight is that a shared
//! cache under LRU **is** a dynamic partition — one cell migrates to the
//! faulting core on each fault. This example reconstructs that implicit
//! partition from the event trace while cores with phased working sets
//! expand and contract, and shows eviction pressure concentrating on the
//! scanning core's pages.
//!
//! ```text
//! cargo run --release --example effective_partition
//! ```

use multicore_paging::core::events::{evictions_by_page, occupancy_timeline, outcome_counts};
use multicore_paging::core::Simulator;
use multicore_paging::workloads::{multiprogrammed, CorePattern};
use multicore_paging::{shared_lru, SimConfig};

fn main() {
    // Three personalities: a loop (steady need), phased working sets
    // (bursty need), and a scan (infinite appetite, zero reuse).
    let patterns = [
        CorePattern::Loop { len: 5 },
        CorePattern::Phased {
            set_size: 14,
            phase_len: 120,
            shift: 10,
        },
        CorePattern::Scan { universe: 600 },
    ];
    let workload = multiprogrammed(&patterns, 600, 23);
    let (k, tau) = (24usize, 2u64);
    let cfg = SimConfig::new(k, tau);

    let sim = Simulator::new(&workload, cfg, shared_lru()).unwrap();
    let (result, trace) = sim.run_with_trace().unwrap();

    println!(
        "S_LRU on loop(5) + phased(14) + scan(600), K = {k}, tau = {tau}: {} faults\n",
        result.total_faults()
    );

    // Sample the implicit partition every ~60 steps and render it.
    let timeline = occupancy_timeline(&trace, workload.num_cores(), k);
    println!("effective partition over time (cells owned per core):");
    println!(
        "{:>6}  {:<26} bar (#=loop, +=phased, .=scan)",
        "t", "loop | phased | scan"
    );
    for (time, owned) in timeline.iter().step_by(timeline.len() / 14 + 1) {
        let bar: String = "#".repeat(owned[0]) + &"+".repeat(owned[1]) + &".".repeat(owned[2]);
        println!(
            "{:>6}  {:<26} {}",
            time,
            format!("{:>4} | {:>6} | {:>4}", owned[0], owned[1], owned[2]),
            bar
        );
    }

    // Eviction pressure: whose pages keep getting thrown out?
    let evictions = evictions_by_page(&trace);
    let mut per_core = [0u64; 3];
    for (page, count) in &evictions {
        // Pages are core-striped by the generator.
        let core = (page.0 >> 20) as usize;
        per_core[core] += count;
    }
    let counts = outcome_counts(&trace);
    println!(
        "\nevictions absorbed per core: loop {} | phased {} | scan {}",
        per_core[0], per_core[1], per_core[2]
    );
    println!("outcomes: {} hits, {} faults", counts.hits, counts.faults);
    println!(
        "\nThe loop's 5 cells never move; the phased core's share breathes with its \
         working set; the scan soaks up whatever is left and its pages absorb most \
         evictions — a dynamic partition nobody programmed, exactly as Lemma 3 predicts."
    );
}
