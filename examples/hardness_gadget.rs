//! Watch Theorem 2's NP-completeness gadget run: a 3-PARTITION instance
//! is reduced to PARTIAL-INDIVIDUAL-FAULTS, the proof's cell-rotation
//! schedule is executed step by step, and every sequence lands exactly on
//! its fault bound at the checkpoint.
//!
//! ```text
//! cargo run --release --example hardness_gadget
//! ```

use multicore_paging::core::Simulator;
use multicore_paging::hardness::{reduce_to_pif, GadgetStrategy, PartitionInstance};

fn main() {
    // S = {4, 4, 6, 5, 5, 4}, B = 14: two triples (4,4,6) and (5,5,4).
    let instance = PartitionInstance::new(vec![4, 4, 6, 5, 5, 4], 3, 14).unwrap();
    println!(
        "3-PARTITION instance: S = {:?}, B = {}",
        instance.items, instance.target
    );
    let solution = instance.solve().expect("a planted yes-instance");
    println!("solver grouping: {solution:?}\n");

    let tau = 1;
    let reduction = reduce_to_pif(&instance, tau);
    println!(
        "reduced PIF instance: p = {}, K = {}, tau = {}, |R_i| = {}, checkpoint t = {}",
        reduction.workload.num_cores(),
        reduction.cfg.cache_size,
        tau,
        reduction.workload.len(0),
        reduction.checkpoint
    );
    println!("fault bounds b_i = B - s_i + 4 = {:?}", reduction.bounds);
    println!(
        "hit quotas  h_i = s_i(tau+1) + 1 = {:?}\n",
        (0..6).map(|i| reduction.hit_quota(i)).collect::<Vec<_>>()
    );

    // Drive the gadget step by step, reporting cache occupancy per group.
    let strategy = GadgetStrategy::new(&reduction, &solution);
    let mut sim = Simulator::new(&reduction.workload, reduction.cfg, strategy).unwrap();
    let mut faults_by_core = vec![0u64; 6];
    let mut timeline = Vec::new();
    while let Some(report) = sim.step().unwrap() {
        for served in &report.served {
            if !matches!(served.outcome, multicore_paging::Outcome::Hit) {
                faults_by_core[served.core] += 1;
            }
        }
        if report.time <= reduction.checkpoint && report.time % 5 == 1 {
            let owned: Vec<usize> = (0..6).map(|c| sim.cache().owned_count(c)).collect();
            timeline.push((report.time, owned, faults_by_core.clone()));
        }
        if report.time >= reduction.checkpoint {
            break;
        }
    }

    println!("timeline (cells owned per sequence; two cells = currently privileged):");
    println!("{:>5}  {:<20} faults/core", "t", "cells/core");
    for (t, owned, faults) in timeline.iter().step_by(4) {
        println!("{:>5}  {:<20} {:?}", t, format!("{owned:?}"), faults);
    }

    println!("\nfaults at the checkpoint vs bounds:");
    let mut all_exact = true;
    for (core, &faults) in faults_by_core.iter().enumerate() {
        let ok = faults == reduction.bounds[core];
        all_exact &= ok;
        println!(
            "  R_{core}: {} / {}  {}",
            faults,
            reduction.bounds[core],
            if ok { "== bound, exact" } else { "MISMATCH" }
        );
    }
    assert!(
        all_exact,
        "the gadget schedule must meet every bound exactly"
    );
    println!(
        "\nEvery sequence saturates its bound exactly — the timing coincidences the \
         proof asserts (handoffs landing on request boundaries) all hold."
    );
}
