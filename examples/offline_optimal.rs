//! The offline optimum, exactly: run Algorithm 1 on a small instance,
//! reconstruct its eviction schedule, replay it on the simulator, and
//! compare against the online strategies.
//!
//! ```text
//! cargo run --release --example offline_optimal
//! ```

use multicore_paging::offline::{brute_force_min_faults, ftf_dp, FtfOptions};
use multicore_paging::policies::{Replay, SacrificeOffline};
use multicore_paging::{shared_fifo, shared_lru, simulate, SharedFitf, SimConfig, Workload};

fn main() {
    // Two cores, disjoint, with overlapping demand periods; K = 3, τ = 2.
    let workload = Workload::from_u32([
        vec![1, 2, 3, 1, 2, 3, 1, 2],
        vec![11, 12, 11, 12, 11, 12, 11, 12],
    ])
    .unwrap();
    let cfg = SimConfig::new(3, 2);

    println!(
        "instance: p = 2, K = {}, tau = {}, n = {}\n",
        cfg.cache_size,
        cfg.tau,
        workload.total_len()
    );

    let result = ftf_dp(
        &workload,
        cfg,
        FtfOptions {
            reconstruct: true,
            ..Default::default()
        },
    )
    .expect("small instance solves");
    println!(
        "Algorithm 1 (exact DP): OPT = {} faults ({} states)",
        result.min_faults, result.states
    );

    let brute = brute_force_min_faults(&workload, cfg, 100_000_000).unwrap();
    println!("honest brute force agrees: {brute}");
    assert_eq!(brute, result.min_faults);

    // Replay the reconstructed schedule through the real engine.
    let schedule = result.schedule.unwrap();
    println!(
        "\nreconstructed schedule ({} placement decisions):",
        schedule.decisions.len()
    );
    let mut decisions: Vec<_> = schedule.decisions.iter().collect();
    decisions.sort_by_key(|((core, idx), _)| (*core, *idx));
    for ((core, idx), decision) in decisions {
        println!("  core {core}, request #{idx}: {decision:?}");
    }
    let replay = Replay::new(schedule.decisions).with_voluntary(schedule.voluntary);
    let replayed = simulate(&workload, cfg, replay).unwrap();
    assert_eq!(replayed.total_faults(), result.min_faults);
    println!(
        "replayed on the simulator: {} faults (exact match)",
        replayed.total_faults()
    );

    println!("\nonline strategies on the same instance:");
    println!("{:<28} {:>7} {:>12}", "strategy", "faults", "vs OPT");
    for (name, faults) in [
        (
            "S_LRU",
            simulate(&workload, cfg, shared_lru())
                .unwrap()
                .total_faults(),
        ),
        (
            "S_FIFO",
            simulate(&workload, cfg, shared_fifo())
                .unwrap()
                .total_faults(),
        ),
        (
            "S_FITF (offline heuristic)",
            simulate(&workload, cfg, SharedFitf::new())
                .unwrap()
                .total_faults(),
        ),
        (
            "S_OFF (sacrifice core 1)",
            simulate(&workload, cfg, SacrificeOffline::new(1))
                .unwrap()
                .total_faults(),
        ),
    ] {
        println!(
            "{:<28} {:>7} {:>11.2}x",
            name,
            faults,
            faults as f64 / result.min_faults as f64
        );
    }
}
