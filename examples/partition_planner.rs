//! Partition planner: use per-core miss curves to choose the optimal
//! static cache partition for a multiprogrammed workload, then compare it
//! against an equal split and against sharing.
//!
//! This is the practical face of the paper's partition-vs-shared
//! dichotomy (Section 4): static partitions isolate cores (no thrashing
//! interference) but waste cells; shared caches adapt but let one core
//! pollute everyone.
//!
//! ```text
//! cargo run --release --example partition_planner
//! ```

use multicore_paging::offline::{lru_curve, opt_curve, optimal_static_partition, PartPolicy};
use multicore_paging::workloads::{multiprogrammed, CorePattern};
use multicore_paging::{shared_lru, simulate, static_partition_lru, Partition, SimConfig};

fn main() {
    let k = 24usize;
    let patterns = [
        CorePattern::Loop { len: 4 }, // tiny hot loop
        CorePattern::Zipf {
            universe: 40,
            alpha: 1.1,
        }, // skewed reuse
        CorePattern::Scan { universe: 500 }, // cache-hostile stream
        CorePattern::Phased {
            set_size: 10,
            phase_len: 150,
            shift: 6,
        },
    ];
    let names = ["loop(4)", "zipf(40)", "scan(500)", "phased(10)"];
    let workload = multiprogrammed(&patterns, 1_500, 11);
    let cfg = SimConfig::new(k, 3);

    println!("per-core miss curves (faults at cache sizes 1..8):\n");
    println!("{:<12} {:>7} k = 1  2  3  4  5  6  7  8", "core", "policy");
    for (core, name) in names.iter().enumerate() {
        let seq = workload.sequence(core);
        let lru: Vec<String> = lru_curve(seq, 8).iter().map(|f| f.to_string()).collect();
        let opt: Vec<String> = opt_curve(seq, 8).iter().map(|f| f.to_string()).collect();
        println!("{:<12} {:>7} {}", name, "LRU", lru.join("  "));
        println!("{:<12} {:>7} {}", "", "OPT", opt.join("  "));
    }

    let planned = optimal_static_partition(&workload, k, PartPolicy::Lru);
    println!(
        "\noptimal static partition (per-part LRU): {}",
        planned.partition
    );
    println!(
        "predicted faults: {} ({:?} per core)",
        planned.faults, planned.per_core
    );

    let equal = Partition::equal(k, workload.num_cores());
    let r_equal = simulate(&workload, cfg, static_partition_lru(equal.clone())).unwrap();
    let r_planned = simulate(
        &workload,
        cfg,
        static_partition_lru(planned.partition.clone()),
    )
    .unwrap();
    let r_shared = simulate(&workload, cfg, shared_lru()).unwrap();

    println!("\n{:<26} {:>8} {:>12}", "strategy", "faults", "vs planned");
    for (name, r) in [
        (format!("sP{}_LRU (equal)", equal), &r_equal),
        (format!("sP{}_LRU (planned)", planned.partition), &r_planned),
        ("S_LRU (shared)".to_string(), &r_shared),
    ] {
        println!(
            "{:<26} {:>8} {:>11.2}x",
            name,
            r.total_faults(),
            r.total_faults() as f64 / r_planned.total_faults() as f64
        );
    }
    assert_eq!(
        r_planned.total_faults(),
        planned.faults,
        "the miss-curve prediction is exact for disjoint workloads"
    );
    println!(
        "\nThe planner confines the scan to a single cell and gives the reusable \
         working sets what they need — and its miss-curve prediction matched the \
         simulation exactly."
    );
}
