//! Lemma 4 live: shared LRU loses a factor of `p(τ+1)` to an offline
//! strategy on per-core cyclic workloads.
//!
//! Each of `p` cores cycles `K/p + 1` private pages. LRU splits the cache
//! evenly and faults on *every* request forever. The offline strategy
//! sacrifices one core — giving every other core its entire working set —
//! and rations the sacrificed core to one fault per `τ+1` timesteps.
//!
//! ```text
//! cargo run --release --example adversarial_lru
//! ```

use multicore_paging::policies::SacrificeOffline;
use multicore_paging::workloads::lemma4_cyclic;
use multicore_paging::{shared_lru, simulate, SimConfig};

fn main() {
    println!("Lemma 4: S_LRU / S_OFF on per-core cycles (K = p^2, n = 20000/core)\n");
    println!(
        "{:>3} {:>4} {:>5} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "p", "K", "tau", "LRU", "OFF", "ratio", "p(tau+1)", "frac"
    );
    for p in [2usize, 3, 4] {
        let k = p * p;
        for tau in [0u64, 1, 3, 7, 15] {
            let workload = lemma4_cyclic(p, k, 20_000);
            let cfg = SimConfig::new(k, tau);
            let lru = simulate(&workload, cfg, shared_lru())
                .unwrap()
                .total_faults();
            let off = simulate(&workload, cfg, SacrificeOffline::new(p - 1))
                .unwrap()
                .total_faults();
            let ratio = lru as f64 / off as f64;
            let bound = (p as u64 * (tau + 1)) as f64;
            println!(
                "{:>3} {:>4} {:>5} {:>9} {:>9} {:>8.2} {:>9} {:>8.2}",
                p,
                k,
                tau,
                lru,
                off,
                ratio,
                bound as u64,
                ratio / bound
            );
        }
        println!();
    }
    println!(
        "The ratio tracks p(tau+1): LRU cannot be competitive once misses are slow \
         relative to hits — exactly Lemma 4's lower bound."
    );
}
