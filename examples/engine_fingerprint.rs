//! Engine fingerprint: run a fixed battery of workloads × strategies and
//! print per-run fault counts, a checksum of every fault time, and the
//! makespan. Diffing this output across engine changes proves (or
//! disproves) bit-identical behavior.
//!
//! Usage: `cargo run --release --example engine_fingerprint > fp.txt`

use multicore_paging::policies::{
    shared_fifo, shared_lru, static_partition_belady, static_partition_lru, Clock, Fwf, Lfu, LruK,
    LruMimicPartition, Marking, MarkingTie, Mru, Partition, RandomEvict, Shared, SharedFitf,
};
use multicore_paging::workloads::{random_disjoint, zipf};
use multicore_paging::{simulate, CacheStrategy, SimConfig, SimResult, Workload};

fn checksum(result: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (core, times) in result.fault_times.iter().enumerate() {
        mix(core as u64 + 1);
        for &t in times {
            mix(t);
        }
    }
    mix(result.makespan);
    h
}

fn report<S: CacheStrategy>(tag: &str, w: &Workload, cfg: SimConfig, strategy: S) {
    match simulate(w, cfg, strategy) {
        Ok(r) => println!(
            "{tag} faults={:?} hits={} mk={} sum={:016x}",
            r.faults,
            r.total_hits(),
            r.makespan,
            checksum(&r)
        ),
        Err(e) => println!("{tag} error={e}"),
    }
}

fn battery(label: &str, w: &Workload, cfg: SimConfig) {
    let p = w.num_cores();
    let k = cfg.cache_size;
    report(&format!("{label}/lru"), w, cfg, shared_lru());
    report(&format!("{label}/fifo"), w, cfg, shared_fifo());
    report(&format!("{label}/clock"), w, cfg, Shared::new(Clock::new()));
    report(&format!("{label}/lfu"), w, cfg, Shared::new(Lfu::new()));
    report(&format!("{label}/mru"), w, cfg, Shared::new(Mru::new()));
    report(
        &format!("{label}/random"),
        w,
        cfg,
        Shared::new(RandomEvict::new(7)),
    );
    report(
        &format!("{label}/marking_lru"),
        w,
        cfg,
        Shared::new(Marking::new(MarkingTie::Lru)),
    );
    report(
        &format!("{label}/marking_rand"),
        w,
        cfg,
        Shared::new(Marking::new(MarkingTie::Random(5))),
    );
    report(&format!("{label}/fwf"), w, cfg, Shared::new(Fwf::new()));
    report(&format!("{label}/lru2"), w, cfg, Shared::new(LruK::new(2)));
    report(&format!("{label}/fitf"), w, cfg, SharedFitf::new());
    if k >= p && p > 0 {
        report(
            &format!("{label}/sp_lru"),
            w,
            cfg,
            static_partition_lru(Partition::equal(k, p)),
        );
        report(
            &format!("{label}/sp_belady"),
            w,
            cfg,
            static_partition_belady(Partition::equal(k, p)),
        );
    }
    report(
        &format!("{label}/lru_mimic"),
        w,
        cfg,
        LruMimicPartition::new(),
    );
}

fn main() {
    for seed in 0..12u64 {
        let w = random_disjoint(seed, 3, 40, 6);
        for k in [3usize, 4, 8] {
            for tau in [0u64, 1, 3] {
                battery(&format!("rd{seed}/K{k}/t{tau}"), &w, SimConfig::new(k, tau));
            }
        }
    }
    for seed in [1u64, 2] {
        let w = zipf(4, 600, 64, 0.8, seed);
        for k in [8usize, 32, 96] {
            battery(&format!("zipf{seed}/K{k}/t2"), &w, SimConfig::new(k, 2));
        }
    }
    // Large-K shared-LRU spot check (the tentpole perf configuration).
    let w = zipf(4, 2_000, 512, 0.7, 3);
    battery("large/K1024/t2", &w, SimConfig::new(1024, 2));
}
