//! The fairness frontier: PARTIAL-INDIVIDUAL-FAULTS as a design tool.
//!
//! FTF minimizes *total* faults, but the paper shows a fair distribution
//! is strictly harder (PIF is NP-complete even with τ = 0). This example
//! maps, for a small two-core instance, exactly which per-core fault
//! budgets `(b_0, b_1)` are achievable at a checkpoint — the Pareto
//! frontier of fairness — using Algorithm 2, and contrasts it with what
//! S_LRU actually delivers and with the fairness metrics of each run.
//!
//! ```text
//! cargo run --release --example fairness_frontier
//! ```

use multicore_paging::analysis::fairness;
use multicore_paging::offline::{ftf_min_faults, pif_decide, PifOptions};
use multicore_paging::policies::SacrificeOffline;
use multicore_paging::{shared_lru, simulate, SimConfig, Workload};

fn main() {
    // Core 0 cycles three pages, core 1 cycles two; K = 3 forces a choice
    // about who gets to keep a working set.
    let workload = Workload::from_u32([
        vec![1, 2, 3, 1, 2, 3, 1, 2, 3],
        vec![11, 12, 11, 12, 11, 12, 11, 12, 11],
    ])
    .unwrap();
    let cfg = SimConfig::new(3, 1);
    let horizon = 24; // checkpoint time t

    let opt = ftf_min_faults(&workload, cfg).unwrap();
    println!("instance: p=2, K=3, tau=1, n=18; FTF optimum = {opt} faults\n");

    println!("feasible (b0, b1) at t = {horizon} per Algorithm 2  (■ feasible, · infeasible):\n");
    print!("      b1=");
    let max_b = 10u64;
    for b1 in 0..=max_b {
        print!("{b1:>2}");
    }
    println!();
    let opts = PifOptions::default();
    let mut frontier = Vec::new();
    for b0 in 0..=max_b {
        print!("  b0={b0:>2}  ");
        let mut first_feasible: Option<u64> = None;
        for b1 in 0..=max_b {
            let feasible = pif_decide(&workload, cfg, horizon, &[b0, b1], opts).unwrap();
            if feasible && first_feasible.is_none() {
                first_feasible = Some(b1);
            }
            print!("{}", if feasible { " ■" } else { " ·" });
        }
        println!();
        if let Some(b1) = first_feasible {
            frontier.push((b0, b1));
        }
    }

    println!("\nPareto frontier (minimal feasible b1 per b0): {frontier:?}");
    let min_sum = frontier.iter().map(|(a, b)| a + b).min().unwrap();
    println!("minimum feasible b0 + b1 on the frontier: {min_sum}");

    println!("\nwhat concrete strategies deliver at t = {horizon}:");
    for (name, result) in [
        ("S_LRU", simulate(&workload, cfg, shared_lru()).unwrap()),
        (
            "S_OFF(sacrifice 1)",
            simulate(&workload, cfg, SacrificeOffline::new(1)).unwrap(),
        ),
        (
            "S_OFF(sacrifice 0)",
            simulate(&workload, cfg, SacrificeOffline::new(0)).unwrap(),
        ),
    ] {
        let b = result.fault_vector_at(horizon);
        let summary = fairness::summarize(&result);
        println!(
            "  {:<20} faults@t = {:?}, slowdowns = [{:.2}, {:.2}], Jain = {:.3}",
            name, b, summary.slowdowns[0], summary.slowdowns[1], summary.jain_slowdown
        );
    }
    println!(
        "\nEvery strategy lands somewhere on or above the frontier; choosing *where* \
         is the fairness-vs-total-faults tradeoff the paper's conclusion calls out."
    );
}
