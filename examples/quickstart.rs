//! Quickstart: simulate a multiprogrammed workload under several cache
//! strategies and compare fault counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use multicore_paging::policies::{Clock, Fifo, Marking, MarkingTie, Shared};
use multicore_paging::workloads::{multiprogrammed, CorePattern};
use multicore_paging::{
    shared_lru, simulate, static_partition_lru, Partition, SharedFitf, SimConfig,
};

fn main() {
    // Four cores with different personalities sharing one cache: a
    // streaming scan, a tight loop, Zipf-skewed traffic, and phased
    // working sets.
    let patterns = [
        CorePattern::Scan { universe: 400 },
        CorePattern::Loop { len: 6 },
        CorePattern::Zipf {
            universe: 64,
            alpha: 1.0,
        },
        CorePattern::Phased {
            set_size: 12,
            phase_len: 200,
            shift: 8,
        },
    ];
    let workload = multiprogrammed(&patterns, 2_000, 7);
    let cfg = SimConfig::new(32, 4); // K = 32 pages, miss delay τ = 4

    println!("multicore paging quickstart");
    println!(
        "p = {} cores, n = {} requests, K = {}, tau = {}\n",
        workload.num_cores(),
        workload.total_len(),
        cfg.cache_size,
        cfg.tau
    );
    println!(
        "{:<22} {:>8} {:>10} {:>10}",
        "strategy", "faults", "fault rate", "makespan"
    );

    let run = |name: &str, result: multicore_paging::SimResult| {
        println!(
            "{:<22} {:>8} {:>9.1}% {:>10}",
            name,
            result.total_faults(),
            100.0 * result.total_faults() as f64 / workload.total_len() as f64,
            result.makespan
        );
    };

    run("S_LRU", simulate(&workload, cfg, shared_lru()).unwrap());
    run(
        "S_FIFO",
        simulate(&workload, cfg, Shared::new(Fifo::new())).unwrap(),
    );
    run(
        "S_CLOCK",
        simulate(&workload, cfg, Shared::new(Clock::new())).unwrap(),
    );
    run(
        "S_MARK(LRU)",
        simulate(&workload, cfg, Shared::new(Marking::new(MarkingTie::Lru))).unwrap(),
    );
    run(
        "sP[equal]_LRU",
        simulate(
            &workload,
            cfg,
            static_partition_lru(Partition::equal(32, 4)),
        )
        .unwrap(),
    );
    run(
        "S_FITF (offline)",
        simulate(&workload, cfg, SharedFitf::new()).unwrap(),
    );

    println!(
        "\nNote how the scan core pollutes the shared cache for everyone; compare \
         the partitioned run, which isolates it. See `partition_planner` for \
         choosing the partition optimally."
    );
}
