//! # multicore-paging
//!
//! A complete, executable reproduction of **López-Ortiz & Salinger,
//! "Paging for Multicore Processors"** (University of Waterloo TR
//! CS-2011-12; brief announcement at SPAA 2011): the multicore paging
//! model, every strategy and offline algorithm the paper defines, the
//! NP-hardness gadgets, and an experiment harness that regenerates every
//! bound the paper proves.
//!
//! This crate is a facade; the subsystems live in their own crates:
//!
//! * [`core`] (`mcp-core`) — the model: `p` request sequences served in
//!   parallel against a shared `K`-page cache, each fault delaying its
//!   core by `τ`; the discrete-time engine and the [`CacheStrategy`]
//!   trait.
//! * [`policies`] (`mcp-policies`) — eviction policies (LRU, FIFO, CLOCK,
//!   LFU, MRU, RAND, marking, per-sequence Belady) and the paper's
//!   strategy families: shared `S_A`, static partitions `sP^B_A`, dynamic
//!   partitions `dP^D_A` (including Lemma 3's LRU mimic), `S_FITF`, and
//!   the proof-scripted offline strategies.
//! * [`offline`] (`mcp-offline`) — Algorithm 1 (exact FINAL-TOTAL-FAULTS)
//!   and Algorithm 2 (PARTIAL-INDIVIDUAL-FAULTS decision), exhaustive
//!   cross-checks, miss curves and exact optimal static partitions.
//! * [`oracle`] (`mcp-oracle`) — the differential correctness oracle: a
//!   naive reference engine transcribed from the paper's model, tiny
//!   exhaustive offline oracles, and the `mcp fuzz` harness with
//!   auto-shrinking counterexamples.
//! * [`hardness`] (`mcp-hardness`) — 3-/4-PARTITION, the Theorem 2/3
//!   reductions, and the executable gadget schedule.
//! * [`workloads`] (`mcp-workloads`) — the proofs' adversarial sequences
//!   and synthetic multiprogrammed generators.
//! * [`analysis`] (`mcp-analysis`) — experiments E01–E15 and the `repro`
//!   binary.
//!
//! ## Quickstart
//!
//! ```
//! use multicore_paging::{simulate, shared_lru, SimConfig, Workload};
//!
//! // Two cores, disjoint pages, shared cache of 4, fault delay τ = 2.
//! let workload = Workload::from_u32([
//!     vec![1, 2, 3, 1, 2, 3],
//!     vec![10, 11, 10, 11, 10, 11],
//! ]).unwrap();
//! let result = simulate(&workload, SimConfig::new(4, 2), shared_lru()).unwrap();
//! println!("total faults: {}", result.total_faults());
//! assert!(result.total_faults() >= 5); // at least the cold misses
//! ```

pub use mcp_analysis as analysis;
pub use mcp_core as core;
pub use mcp_hardness as hardness;
pub use mcp_offline as offline;
pub use mcp_oracle as oracle;
pub use mcp_policies as policies;
pub use mcp_workloads as workloads;

// The most common entry points, flattened for convenience.
pub use mcp_core::{
    simulate, simulate_tick, simulate_with_capacity, Cache, CacheStrategy, CapacitySchedule,
    CellState, Lookup, ModelError, Outcome, PageId, Served, SimConfig, SimError, SimResult,
    Simulator, StepReport, TickSimulator, Time, Workload,
};
pub use mcp_offline::{ftf_dp, ftf_min_faults, max_pif, pif_decide, FtfOptions, PifOptions};
pub use mcp_policies::{
    shared_fifo, shared_lru, static_partition_belady, static_partition_lru, Partition, Shared,
    SharedFitf, StaticPartition,
};

/// README code blocks double as doctests: if the README's examples stop
/// compiling, the test suite fails.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
