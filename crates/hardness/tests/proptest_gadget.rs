//! Property tests of the hardness pipeline: planted instances always
//! solve and verify; the gadget schedule meets its bounds **exactly** on
//! arbitrary planted yes-instances across group sizes and τ.

use mcp_hardness::{planted_yes, reduce_to_pif, run_gadget, verify_grouping};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn planted_3partition_solves_and_verifies(
        groups in 1usize..5,
        target in 20u64..80,
        seed in 0u64..10_000,
    ) {
        let inst = planted_yes(3, groups, target, seed);
        prop_assert!(inst.validate().is_ok());
        let solution = inst.solve().expect("planted yes must solve");
        prop_assert!(verify_grouping(&inst, &solution));
    }

    #[test]
    fn planted_4partition_solves_and_verifies(
        groups in 1usize..4,
        target in 30u64..80,
        seed in 0u64..10_000,
    ) {
        let inst = planted_yes(4, groups, target, seed);
        prop_assert!(inst.validate().is_ok());
        let solution = inst.solve().expect("planted yes must solve");
        prop_assert!(verify_grouping(&inst, &solution));
    }

    #[test]
    fn gadget_is_exact_on_arbitrary_planted_instances(
        groups in 1usize..4,
        target in 20u64..50,
        tau in 1u64..4,
        seed in 0u64..10_000,
    ) {
        let inst = planted_yes(3, groups, target, seed);
        let red = reduce_to_pif(&inst, tau);
        let solution = inst.solve().unwrap();
        let faults = run_gadget(&red, &solution);
        prop_assert_eq!(&faults, &red.bounds,
            "gadget must saturate every bound exactly (items {:?}, tau {})",
            inst.items, tau);
    }

    #[test]
    fn gadget_is_exact_for_group_size_four(
        target in 30u64..60,
        tau in 1u64..3,
        seed in 0u64..10_000,
    ) {
        let inst = planted_yes(4, 2, target, seed);
        let red = reduce_to_pif(&inst, tau);
        let solution = inst.solve().unwrap();
        let faults = run_gadget(&red, &solution);
        prop_assert_eq!(&faults, &red.bounds);
    }

    #[test]
    fn reduction_parameters_match_the_paper(
        target in 20u64..60,
        tau in 1u64..5,
        seed in 0u64..10_000,
    ) {
        let inst = planted_yes(3, 2, target, seed);
        let red = reduce_to_pif(&inst, tau);
        // K = 4p/3, |R_i| = B(tau+1)+4tau+5, b_i = B - s_i + 4.
        prop_assert_eq!(red.cfg.cache_size, 4 * inst.len() / 3);
        let expected_len = (target * (tau + 1) + 4 * tau + 5) as usize;
        for core in 0..inst.len() {
            prop_assert_eq!(red.workload.len(core), expected_len);
            prop_assert_eq!(red.bounds[core], target - inst.items[core] + 4);
        }
        prop_assert_eq!(red.checkpoint, expected_len as u64);
    }
}
