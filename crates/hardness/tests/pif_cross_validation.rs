//! Machine-checks Theorem 2 in both directions at exhaustive-scale:
//! yes-instances of 3-PARTITION reduce to feasible PIF instances (with the
//! gadget and the DP agreeing), and the DP rejects bound vectors tighter
//! than the reduction's (the yes-instance saturates its bounds exactly).

use mcp_hardness::{reduce_to_pif, run_gadget, PartitionInstance};
use mcp_offline::{pif_decide, pif_witness, PifOptions};
use mcp_policies::Replay;

fn opts() -> PifOptions {
    PifOptions {
        full_transitions: true,
        max_expansions: 50_000_000,
        ..Default::default()
    }
}

#[test]
fn yes_instance_is_feasible_by_dp_and_gadget() {
    // n = 3, B = 6: the smallest well-formed 3-PARTITION instance.
    let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
    let red = reduce_to_pif(&inst, 1);

    // (⇒) constructive: the gadget schedule meets the bounds...
    let groups = inst.solve().unwrap();
    assert_eq!(run_gadget(&red, &groups), red.bounds);

    // ...and Algorithm 2 agrees the instance is feasible.
    let feasible = pif_decide(&red.workload, red.cfg, red.checkpoint, &red.bounds, opts()).unwrap();
    assert!(feasible, "reduced yes-instance must be PIF-feasible");

    // ...and the DP's own witness replays on the engine within bounds.
    let schedule = pif_witness(&red.workload, red.cfg, red.checkpoint, &red.bounds, opts())
        .unwrap()
        .expect("feasible instance has a witness");
    let run = mcp_core::simulate(
        &red.workload,
        red.cfg,
        Replay::new(schedule.decisions).with_voluntary(schedule.voluntary),
    )
    .unwrap();
    for (i, &b) in red.bounds.iter().enumerate() {
        assert!(
            run.faults_at(i, red.checkpoint) <= b,
            "witness violates bound {i}: {} > {b}",
            run.faults_at(i, red.checkpoint)
        );
    }
}

#[test]
fn tightened_bounds_become_infeasible() {
    // The gadget achieves each bound with equality, and the proof's
    // counting argument shows the bounds are tight: lowering any single
    // b_i by one must make the instance infeasible.
    let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
    let red = reduce_to_pif(&inst, 1);
    for i in 0..3 {
        let mut tightened = red.bounds.clone();
        tightened[i] -= 1;
        let feasible =
            pif_decide(&red.workload, red.cfg, red.checkpoint, &tightened, opts()).unwrap();
        assert!(!feasible, "tightening b_{i} must break feasibility");
    }
}

#[test]
fn mismatched_target_is_infeasible() {
    // Negative control: keep the same items (total 6) but build the PIF
    // instance as if B were 5 — the serving window shrinks faster than
    // the fault bounds relax, so the required hit volume no longer fits
    // and the DP must reject.
    let good = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
    let red_good = reduce_to_pif(&good, 1);
    let tau = 1u64;
    let b = 5u64;
    let len = (b * (tau + 1) + 4 * tau + 5) as usize;
    let sequences: Vec<Vec<mcp_core::PageId>> = (0..3)
        .map(|i| {
            (0..len)
                .map(|j| mcp_core::PageId(2 * i as u32 + (j % 2) as u32))
                .collect()
        })
        .collect();
    let workload = mcp_core::Workload::new(sequences).unwrap();
    let bounds: Vec<u64> = good.items.iter().map(|&s| b - s + 4).collect();
    let feasible = pif_decide(&workload, red_good.cfg, len as u64, &bounds, opts()).unwrap();
    assert!(
        !feasible,
        "deflated target leaves too little time for the required hits"
    );
}
