//! The executable schedule from the forward direction of Theorem 2's
//! proof: given a solution to the g-PARTITION instance, serve the reduced
//! PIF workload so that every sequence meets its fault bound **exactly**.
//!
//! Each solution group of `g` sequences shares `g+1` cells: one dedicated
//! cell per sequence plus one *extra* cell that rotates. The sequence
//! currently holding the extra cell (the group's *privileged* sequence)
//! keeps both of its pages resident and hits until it exhausts its quota
//! `h_i = s_i(τ+1)+1`; every other sequence thrashes its single dedicated
//! cell, faulting each request. When a quota completes, the next sequence
//! in the group steals a cell from the outgoing privileged sequence on its
//! very next fault — evicting precisely the page the outgoing sequence
//! will request next, so its fault cadence resumes immediately.
//!
//! Simulating this strategy on the reduction and checking
//! `faults_at(i, t) == b_i` machine-verifies the (⇒) direction of the
//! NP-completeness proof, including every timing coincidence the proof
//! asserts (handoffs landing exactly on request boundaries).

use crate::reduction::PifReduction;
use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};

#[derive(Clone, Debug)]
struct GroupState {
    /// Cores of the group, ascending (handoffs go left to right).
    order: Vec<usize>,
    /// Hit quotas `h_i` aligned with `order`.
    quotas: Vec<u64>,
    /// Index of the current privileged sequence in `order`.
    stage: usize,
    /// Hits the privileged sequence has accumulated this stage.
    hits: u64,
    /// Quota reached: the next fault of the successor steals a cell.
    armed: bool,
    /// All quotas served.
    done: bool,
}

/// The proof's cell-rotation schedule as a [`CacheStrategy`].
pub struct GadgetStrategy {
    /// `(group index, rank within group)` per core.
    membership: Vec<(usize, usize)>,
    groups: Vec<GroupState>,
    /// Requests served so far, per core.
    cursor: Vec<usize>,
    seqs: Vec<Vec<PageId>>,
}

impl GadgetStrategy {
    /// Build from a reduction and a solution grouping (core index sets).
    pub fn new(reduction: &PifReduction, solution_groups: &[Vec<usize>]) -> Self {
        let p = reduction.workload.num_cores();
        let mut membership = vec![(usize::MAX, usize::MAX); p];
        let mut groups = Vec::with_capacity(solution_groups.len());
        for (gi, group) in solution_groups.iter().enumerate() {
            let mut order = group.clone();
            order.sort_unstable();
            let quotas = order.iter().map(|&c| reduction.hit_quota(c)).collect();
            for (rank, &core) in order.iter().enumerate() {
                membership[core] = (gi, rank);
            }
            groups.push(GroupState {
                order,
                quotas,
                stage: 0,
                hits: 0,
                armed: false,
                done: false,
            });
        }
        assert!(
            membership.iter().all(|&(g, _)| g != usize::MAX),
            "every core must belong to a solution group"
        );
        GadgetStrategy {
            membership,
            groups,
            cursor: vec![0; p],
            seqs: Vec::new(),
        }
    }

    /// Whether `core` is its group's current privileged sequence.
    fn is_privileged(&self, core: usize) -> bool {
        let (g, rank) = self.membership[core];
        let state = &self.groups[g];
        !state.done && rank == state.stage
    }

    /// The page `core` will request next (its cursor points past every
    /// served request).
    fn next_request(&self, core: usize) -> PageId {
        self.seqs[core][self.cursor[core] % self.seqs[core].len()]
    }
}

impl CacheStrategy for GadgetStrategy {
    fn name(&self) -> String {
        "Gadget(3-PARTITION schedule)".into()
    }

    fn begin(&mut self, workload: &Workload, _cfg: &SimConfig) {
        self.seqs = workload.sequences().to_vec();
        self.cursor = vec![0; workload.num_cores()];
    }

    fn on_hit(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
        let (g, rank) = self.membership[core];
        let state = &mut self.groups[g];
        if !state.done && rank == state.stage {
            state.hits += 1;
            if state.hits >= state.quotas[state.stage] {
                if state.stage + 1 < state.order.len() {
                    state.armed = true;
                } else {
                    state.done = true;
                }
            }
        }
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        let (g, rank) = self.membership[core];
        // Handoff: the successor's first fault after the quota completes
        // steals the outgoing privileged sequence's next-requested page.
        if self.groups[g].armed && rank == self.groups[g].stage + 1 {
            let prev = self.groups[g].order[self.groups[g].stage];
            let victim = self.next_request(prev);
            let cell = cache
                .cell_of(victim)
                .expect("outgoing privileged page resident");
            let state = &mut self.groups[g];
            state.stage += 1;
            state.armed = false;
            state.hits = 0;
            return cell;
        }
        // Growing into an empty cell: the first request of every sequence
        // and the privileged sequence's second page.
        let target = if self.is_privileged(core) { 2 } else { 1 };
        if cache.owned_count(core) < target {
            return cache
                .empty_cell()
                .expect("the gadget accounts for every cell");
        }
        // Thrashing: evict our own (only) other page.
        let (cell, _) = cache
            .evictable_cells_of(core)
            .next()
            .expect("a thrashing sequence owns exactly one evictable page");
        cell
    }

    fn on_fault(&mut self, core: usize, _page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        self.cursor[core] += 1;
    }

    fn on_shared_fetch_miss(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
    }
}

/// Run the gadget schedule for `reduction` with `solution_groups` and
/// return the per-sequence fault counts at the checkpoint.
pub fn run_gadget(reduction: &PifReduction, solution_groups: &[Vec<usize>]) -> Vec<u64> {
    let strategy = GadgetStrategy::new(reduction, solution_groups);
    let result = mcp_core::simulate(&reduction.workload, reduction.cfg, strategy)
        .expect("gadget schedule is legal");
    (0..reduction.workload.num_cores())
        .map(|i| result.faults_at(i, reduction.checkpoint))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::{planted_yes, PartitionInstance};
    use crate::reduction::reduce_to_pif;

    #[test]
    fn gadget_meets_bounds_exactly_tiny() {
        // n = 3, B = 6, one group; tau = 1: bounds are b_i = 8 and the
        // proof's accounting says the gadget achieves them with equality.
        let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        let red = reduce_to_pif(&inst, 1);
        let groups = inst.solve().unwrap();
        let faults = run_gadget(&red, &groups);
        assert_eq!(faults, red.bounds, "gadget must meet each bound exactly");
    }

    #[test]
    fn gadget_meets_bounds_across_taus() {
        let inst = PartitionInstance::new(vec![3, 3, 4], 3, 10).unwrap();
        for tau in [1u64, 2, 3, 5] {
            let red = reduce_to_pif(&inst, tau);
            let groups = inst.solve().unwrap();
            let faults = run_gadget(&red, &groups);
            assert_eq!(faults, red.bounds, "tau = {tau}");
        }
    }

    #[test]
    fn gadget_meets_bounds_two_groups() {
        let inst = planted_yes(3, 2, 20, 11);
        let red = reduce_to_pif(&inst, 2);
        let groups = inst.solve().unwrap();
        let faults = run_gadget(&red, &groups);
        assert_eq!(faults, red.bounds);
    }

    #[test]
    fn gadget_meets_bounds_four_partition() {
        // Theorem 3's variant: groups of 4 sharing 5 cells.
        let inst = planted_yes(4, 2, 30, 3);
        let red = reduce_to_pif(&inst, 1);
        let groups = inst.solve().unwrap();
        let faults = run_gadget(&red, &groups);
        assert_eq!(faults, red.bounds);
    }

    #[test]
    fn gadget_with_wrong_grouping_violates_bounds() {
        // Items {5,5,6},{5,5,6} with B=16: the grouping below mixes items
        // so group sums are 5+5+5=15 and 6+5+6=17 — not a solution, so at
        // least one sequence must blow its bound.
        let inst = PartitionInstance::new(vec![5, 5, 6, 5, 5, 6], 3, 16).unwrap();
        assert!(inst.is_yes());
        let red = reduce_to_pif(&inst, 1);
        let bad_groups = vec![vec![0, 1, 3], vec![2, 4, 5]];
        let faults = run_gadget(&red, &bad_groups);
        assert!(
            faults.iter().zip(&red.bounds).any(|(f, b)| f > b),
            "a non-solution grouping cannot meet every bound: {faults:?} vs {:?}",
            red.bounds
        );
    }
}
