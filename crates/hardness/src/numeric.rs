//! 3-PARTITION and 4-PARTITION: instances, validation, exact solvers, and
//! planted generators. These are the NP-complete sources of the paper's
//! Theorem 2 (3-PARTITION → PIF) and Theorem 3 (4-PARTITION → MAX-PIF)
//! reductions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An instance of g-PARTITION (g = 3 or 4): partition `items` into groups
/// of exactly `g` elements, each summing to `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionInstance {
    /// The multiset `S` of positive integers.
    pub items: Vec<u64>,
    /// Elements per group (3 for 3-PARTITION, 4 for 4-PARTITION).
    pub group_size: usize,
    /// The per-group target `B`.
    pub target: u64,
}

/// Why an instance is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum InstanceError {
    /// `group_size` is not 3 or 4.
    BadGroupSize(usize),
    /// `|items|` is not a multiple of `group_size`.
    BadCount { items: usize, group_size: usize },
    /// `Σ items ≠ (n/g) · B`.
    BadTotal { total: u64, expected: u64 },
    /// An item violates the strict window `B/(g+1) < s < B/(g−1)`.
    ItemOutOfRange { index: usize, value: u64 },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::BadGroupSize(g) => write!(f, "group size {g} must be 3 or 4"),
            InstanceError::BadCount { items, group_size } => {
                write!(f, "{items} items is not a multiple of {group_size}")
            }
            InstanceError::BadTotal { total, expected } => {
                write!(f, "items total {total}, expected {expected}")
            }
            InstanceError::ItemOutOfRange { index, value } => {
                write!(f, "item {index} = {value} outside the strict size window")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl PartitionInstance {
    /// Build and validate an instance.
    pub fn new(items: Vec<u64>, group_size: usize, target: u64) -> Result<Self, InstanceError> {
        let inst = PartitionInstance {
            items,
            group_size,
            target,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Number of items `n`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items (never valid).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of groups `n / g`.
    pub fn num_groups(&self) -> usize {
        self.items.len() / self.group_size
    }

    /// Check well-formedness: count, total, and the strict size window
    /// `B/(g+1) < s_i < B/(g−1)` forcing every group to have exactly `g`
    /// elements.
    pub fn validate(&self) -> Result<(), InstanceError> {
        let g = self.group_size;
        if g != 3 && g != 4 {
            return Err(InstanceError::BadGroupSize(g));
        }
        if self.items.is_empty() || !self.items.len().is_multiple_of(g) {
            return Err(InstanceError::BadCount {
                items: self.items.len(),
                group_size: g,
            });
        }
        let total: u64 = self.items.iter().sum();
        let expected = (self.items.len() / g) as u64 * self.target;
        if total != expected {
            return Err(InstanceError::BadTotal { total, expected });
        }
        for (i, &s) in self.items.iter().enumerate() {
            // Strict: B < s·(g+1) and s·(g−1) < B.
            if s * (g as u64 + 1) <= self.target || s * (g as u64 - 1) >= self.target {
                return Err(InstanceError::ItemOutOfRange { index: i, value: s });
            }
        }
        Ok(())
    }

    /// Exact solver: a grouping into `n/g` groups each summing to `B`, or
    /// `None`. Backtracking over items sorted descending, anchoring each
    /// group at the largest unused item (WLOG) and skipping symmetric
    /// same-value branches. Exponential worst case but fast at the
    /// unary-small sizes the reduction uses.
    pub fn solve(&self) -> Option<Vec<Vec<usize>>> {
        let n = self.items.len();
        // Sort indices descending by value: large items constrain first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.items[i]));

        fn dfs(
            inst: &PartitionInstance,
            order: &[usize],
            used: &mut [bool],
            groups: &mut Vec<Vec<usize>>,
            current: &mut Vec<usize>,
            cur_sum: u64,
            start_pos: usize,
        ) -> bool {
            if current.len() == inst.group_size {
                if cur_sum != inst.target {
                    return false;
                }
                groups.push(std::mem::take(current));
                // Anchor the next group at the largest unused item.
                let ok = match order.iter().position(|&i| !used[i]) {
                    None => true,
                    Some(pos) => {
                        let i = order[pos];
                        used[i] = true;
                        *current = vec![i];
                        let ok = dfs(inst, order, used, groups, current, inst.items[i], pos + 1);
                        if !ok {
                            used[i] = false;
                        }
                        ok
                    }
                };
                if !ok {
                    *current = groups.pop().expect("pushed above");
                }
                return ok;
            }
            for pos in start_pos..order.len() {
                let i = order[pos];
                if used[i] {
                    continue;
                }
                let s = inst.items[i];
                if cur_sum + s > inst.target {
                    continue;
                }
                // Symmetry: if the previous same-valued item is unused, we
                // already explored (and failed) the equivalent branch.
                if pos > start_pos {
                    let prev = order[pos - 1];
                    if !used[prev] && inst.items[prev] == s {
                        continue;
                    }
                }
                used[i] = true;
                current.push(i);
                if dfs(inst, order, used, groups, current, cur_sum + s, pos + 1) {
                    return true;
                }
                current.pop();
                used[i] = false;
            }
            false
        }

        let mut used = vec![false; n];
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(self.num_groups());
        let anchor = order[0];
        used[anchor] = true;
        let mut current = vec![anchor];
        if dfs(
            self,
            &order,
            &mut used,
            &mut groups,
            &mut current,
            self.items[anchor],
            1,
        ) {
            Some(groups)
        } else {
            None
        }
    }

    /// Whether the instance is a yes-instance.
    pub fn is_yes(&self) -> bool {
        self.solve().is_some()
    }
}

/// Verify a claimed grouping.
pub fn verify_grouping(inst: &PartitionInstance, groups: &[Vec<usize>]) -> bool {
    let n = inst.items.len();
    if groups.len() != inst.num_groups() {
        return false;
    }
    let mut seen = vec![false; n];
    for group in groups {
        if group.len() != inst.group_size {
            return false;
        }
        let mut sum = 0;
        for &i in group {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
            sum += inst.items[i];
        }
        if sum != inst.target {
            return false;
        }
    }
    seen.into_iter().all(|s| s)
}

/// Generate a planted **yes** instance of g-PARTITION with `groups` groups
/// and per-group target `target`. Every item respects the strict window.
pub fn planted_yes(group_size: usize, groups: usize, target: u64, seed: u64) -> PartitionInstance {
    assert!(group_size == 3 || group_size == 4);
    let g = group_size as u64;
    assert!(
        target > g * (g + 1),
        "target {target} too small for the strict window with g = {g}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = target / (g + 1) + 1; // smallest s with s(g+1) > B
    let hi = (target - 1) / (g - 1); // largest s with s(g-1) < B
    let hi = if hi * (g - 1) >= target { hi - 1 } else { hi };
    assert!(lo <= hi, "empty window for target {target}, g {g}");

    let mut items = Vec::with_capacity(groups * group_size);
    for _ in 0..groups {
        // Rejection-sample a g-tuple in [lo, hi] summing to target.
        loop {
            let mut tuple: Vec<u64> = (0..group_size - 1)
                .map(|_| rng.gen_range(lo..=hi))
                .collect();
            let partial: u64 = tuple.iter().sum();
            if partial + lo <= target && target <= partial + hi {
                tuple.push(target - partial);
                items.extend(tuple);
                break;
            }
        }
    }
    PartitionInstance::new(items, group_size, target).expect("planted instance is valid")
}

/// A handcrafted **no** instance of 3-PARTITION: `{4,4,4,4,4,6}` with
/// `B = 13` — every item is in `(13/4, 13/2)`, the total is `2B`, but the
/// only triple sums available are 12 (`4+4+4`) and 14 (`4+4+6`).
pub fn known_no_3partition() -> PartitionInstance {
    PartitionInstance::new(vec![4, 4, 4, 4, 4, 6], 3, 13).expect("well-formed")
}

/// A handcrafted **no** instance of 4-PARTITION: `{6,6,6,4,4,4,4,4}` with
/// `B = 19` — every item lies in `(19/5, 19/3)` and the total is `2B`,
/// but all items are even, so no quadruple can sum to the odd target.
pub fn known_no_4partition() -> PartitionInstance {
    PartitionInstance::new(vec![6, 6, 6, 4, 4, 4, 4, 4], 4, 19).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_errors() {
        assert!(matches!(
            PartitionInstance::new(vec![2, 2, 2], 5, 6),
            Err(InstanceError::BadGroupSize(5))
        ));
        assert!(matches!(
            PartitionInstance::new(vec![2, 2], 3, 6),
            Err(InstanceError::BadCount { .. })
        ));
        assert!(matches!(
            PartitionInstance::new(vec![2, 2, 3], 3, 6),
            Err(InstanceError::BadTotal { .. })
        ));
        // 1 * 4 <= 6: below the window.
        assert!(matches!(
            PartitionInstance::new(vec![1, 2, 3], 3, 6),
            Err(InstanceError::ItemOutOfRange { .. })
        ));
        assert!(PartitionInstance::new(vec![2, 2, 2], 3, 6).is_ok());
    }

    #[test]
    fn trivial_yes() {
        let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        let groups = inst.solve().expect("solvable");
        assert!(verify_grouping(&inst, &groups));
    }

    #[test]
    fn known_no_instances_are_no() {
        let no3 = known_no_3partition();
        assert!(no3.validate().is_ok());
        assert!(!no3.is_yes());
        let no4 = known_no_4partition();
        assert!(no4.validate().is_ok());
        assert!(!no4.is_yes());
    }

    #[test]
    fn planted_instances_solve_and_verify() {
        for seed in 0..5 {
            let inst = planted_yes(3, 3, 40, seed);
            assert_eq!(inst.len(), 9);
            let groups = inst.solve().expect("planted yes must solve");
            assert!(verify_grouping(&inst, &groups));
        }
        for seed in 0..3 {
            let inst = planted_yes(4, 2, 50, seed);
            assert_eq!(inst.len(), 8);
            let groups = inst.solve().expect("planted yes must solve");
            assert!(verify_grouping(&inst, &groups));
        }
    }

    #[test]
    fn verify_rejects_bad_groupings() {
        let inst = PartitionInstance::new(vec![2, 2, 2, 2, 2, 2], 3, 6).unwrap();
        assert!(verify_grouping(&inst, &[vec![0, 1, 2], vec![3, 4, 5]]));
        assert!(!verify_grouping(&inst, &[vec![0, 1, 2], vec![3, 4, 4]])); // reuse
        assert!(!verify_grouping(&inst, &[vec![0, 1], vec![2, 3, 4]])); // sizes
        assert!(!verify_grouping(&inst, &[vec![0, 1, 2]])); // missing group
    }

    #[test]
    fn solver_handles_duplicates_efficiently() {
        // 30 identical items: trivially yes, must return quickly.
        let inst = PartitionInstance::new(vec![5; 30], 3, 15).unwrap();
        assert!(inst.is_yes());
    }
}
