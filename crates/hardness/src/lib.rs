//! # mcp-hardness — the NP-hardness gadgets of Theorems 2 and 3
//!
//! PARTIAL-INDIVIDUAL-FAULTS is NP-complete (Theorem 2, reduction from
//! 3-PARTITION) and MAX-PIF is APX-hard (Theorem 3, gap-preserving
//! reduction from MAX-4-PARTITION). This crate makes both reductions
//! executable:
//!
//! * [`numeric`] — 3-/4-PARTITION instances, exact solver, planted yes
//!   generators and handcrafted no-instances;
//! * [`reduction`] — the g-PARTITION → PIF instance builder with the
//!   paper's exact parameters;
//! * [`gadget`] — the proof's cell-rotation schedule as a runnable
//!   [`mcp_core::CacheStrategy`], which meets every fault bound exactly on
//!   yes-instances (machine-checking the forward direction of the proof).

#![warn(missing_docs)]

pub mod gadget;
pub mod numeric;
pub mod reduction;

pub use gadget::{run_gadget, GadgetStrategy};
pub use numeric::{
    known_no_3partition, known_no_4partition, planted_yes, verify_grouping, InstanceError,
    PartitionInstance,
};
pub use reduction::{reduce_to_pif, PifReduction};
