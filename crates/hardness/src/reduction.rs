//! The reductions of Theorems 2 and 3: g-PARTITION → PARTIAL-INDIVIDUAL-
//! FAULTS.
//!
//! Given a g-PARTITION instance (g = 3 for Theorem 2, g = 4 for Theorem 3)
//! with items `s_1..s_n` and target `B`, build a PIF instance with:
//!
//! * `p = n` disjoint sequences, `R_i = α_i β_i α_i β_i …` of length
//!   `B(τ+1) + (g+1)τ + (g+2)`;
//! * cache size `K = (g+1)·p/g` (each group of `g` sequences shares `g+1`
//!   cells);
//! * checkpoint `t = B(τ+1) + (g+1)τ + (g+2)` and per-sequence fault
//!   bounds `b_i = B − s_i + (g+1)`.
//!
//! For g = 3 these are exactly the paper's `|R_i| = B(τ+1)+4τ+5`,
//! `K = 4p/3`, `b_i = B−s_i+4`; for g = 4, `|R_i| = B(τ+1)+5τ+6`,
//! `K = 5p/4`, `b_i = B−s_i+5`.

use crate::numeric::PartitionInstance;
use mcp_core::{PageId, SimConfig, Time, Workload};

/// A PIF instance produced by the reduction, bundled with its source.
#[derive(Clone, Debug)]
pub struct PifReduction {
    /// The alternating two-page sequences.
    pub workload: Workload,
    /// Cache size `K = (g+1)p/g` and the chosen `τ ≥ 1`.
    pub cfg: SimConfig,
    /// The checkpoint time `t`.
    pub checkpoint: Time,
    /// The per-sequence fault bounds `b_i = B − s_i + (g+1)`.
    pub bounds: Vec<u64>,
    /// The source numeric instance.
    pub instance: PartitionInstance,
}

impl PifReduction {
    /// The two pages of sequence `i`: `(α_i, β_i)`.
    pub fn pages_of(&self, core: usize) -> (PageId, PageId) {
        (PageId(2 * core as u32), PageId(2 * core as u32 + 1))
    }

    /// Per-sequence hit quota `h_i = s_i(τ+1) + 1` from the proof.
    pub fn hit_quota(&self, core: usize) -> u64 {
        self.instance.items[core] * (self.cfg.tau + 1) + 1
    }
}

/// Build the PIF instance for a (validated) g-PARTITION instance.
///
/// `τ ≥ 1` is required (the proof's counting needs every cell handoff to
/// cost τ > 0 hitless timesteps).
///
/// ```
/// use mcp_hardness::{reduce_to_pif, run_gadget, PartitionInstance};
///
/// let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
/// let red = reduce_to_pif(&inst, 1);
/// assert_eq!(red.cfg.cache_size, 4);            // K = 4p/3
/// assert_eq!(red.bounds, vec![8, 8, 8]);        // b_i = B - s_i + 4
/// // The proof's schedule meets every bound exactly:
/// let faults = run_gadget(&red, &inst.solve().unwrap());
/// assert_eq!(faults, red.bounds);
/// ```
pub fn reduce_to_pif(instance: &PartitionInstance, tau: u64) -> PifReduction {
    instance
        .validate()
        .expect("reduction requires a well-formed instance");
    assert!(tau >= 1, "the reduction requires tau >= 1");
    let g = instance.group_size as u64;
    let p = instance.len();
    let b_target = instance.target;

    let len = (b_target * (tau + 1) + (g + 1) * tau + g + 2) as usize;
    let sequences: Vec<Vec<PageId>> = (0..p)
        .map(|i| {
            (0..len)
                .map(|j| PageId(2 * i as u32 + (j % 2) as u32))
                .collect()
        })
        .collect();
    let workload = Workload::new(sequences).expect("nonempty");

    let cache_size = (g as usize + 1) * p / instance.group_size;
    assert_eq!(
        cache_size * instance.group_size,
        (g as usize + 1) * p,
        "p must be a multiple of the group size"
    );

    let bounds: Vec<u64> = instance
        .items
        .iter()
        .map(|&s| b_target - s + g + 1)
        .collect();

    PifReduction {
        workload,
        cfg: SimConfig::new(cache_size, tau),
        checkpoint: len as Time,
        bounds,
        instance: instance.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::planted_yes;

    #[test]
    fn reduction_matches_paper_parameters_g3() {
        // 3-PARTITION, n = 3, B = 6, tau = 1.
        let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        let red = reduce_to_pif(&inst, 1);
        assert_eq!(red.workload.num_cores(), 3);
        assert_eq!(red.cfg.cache_size, 4); // (4/3) p
                                           // |R_i| = B(tau+1) + 4 tau + 5 = 12 + 4 + 5 = 21.
        assert_eq!(red.workload.len(0), 21);
        assert_eq!(red.checkpoint, 21);
        // b_i = B - s_i + 4 = 8.
        assert_eq!(red.bounds, vec![8, 8, 8]);
        // h_i = s_i (tau+1) + 1 = 5.
        assert_eq!(red.hit_quota(0), 5);
        assert!(red.workload.is_disjoint());
    }

    #[test]
    fn reduction_matches_paper_parameters_g4() {
        let inst = planted_yes(4, 1, 50, 7);
        let red = reduce_to_pif(&inst, 2);
        assert_eq!(red.workload.num_cores(), 4);
        assert_eq!(red.cfg.cache_size, 5); // (5/4) p
                                           // |R_i| = B(tau+1) + 5 tau + 6 = 150 + 16 = 166.
        assert_eq!(red.workload.len(0), 166);
        for (i, &s) in red.instance.items.iter().enumerate() {
            assert_eq!(red.bounds[i], 50 - s + 5);
        }
    }

    #[test]
    fn sequences_alternate_two_private_pages() {
        let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        let red = reduce_to_pif(&inst, 1);
        let (a, b) = red.pages_of(1);
        let seq = red.workload.sequence(1);
        assert_eq!(seq[0], a);
        assert_eq!(seq[1], b);
        assert_eq!(seq[2], a);
        assert_eq!(red.workload.core_universe(1), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "tau >= 1")]
    fn tau_zero_rejected() {
        let inst = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        reduce_to_pif(&inst, 0);
    }
}
