//! Metamorphic relations for dynamic capacity schedules, checked across
//! the whole strategy-family registry:
//!
//! 1. **Fixed-schedule identity** — running any family under
//!    `CapacitySchedule::fixed(K)` is bit-identical (result *and* full
//!    step trace) to the plain constant-`K` engine. The capacity plumbing
//!    must be invisible when the schedule never changes.
//! 2. **Post-final invisibility** — a schedule that equals `K` until after
//!    the last request is served behaves exactly like `fixed(K)`: changes
//!    the run never reaches cannot leak into results or traces.
//! 3. **Pointwise monotonicity for partitioned LRU** — on the sampled
//!    instances, giving `sP_LRU` pointwise-no-less capacity never costs
//!    faults. This is a *sampled* relation, not a theorem: the companion
//!    test pins a concrete instance where pointwise-more capacity yields
//!    strictly MORE faults for a shared policy, so the suite documents
//!    that monotonicity must not be assumed in general.

use mcp_core::{CapacitySchedule, SimConfig, SimResult, Simulator, StepReport, Workload};
use mcp_policies::{build_family, family_applicable, FAMILIES};

fn wl(seqs: &[&[u32]]) -> Workload {
    Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
}

/// Run `family` under `schedule`, returning the result and full trace.
fn run_traced(
    w: &Workload,
    cfg: SimConfig,
    schedule: CapacitySchedule,
    family: &str,
    seed: u64,
) -> (SimResult, Vec<StepReport>) {
    let strategy = build_family(family, w, cfg, seed).unwrap();
    Simulator::with_capacity(w, cfg, schedule, strategy)
        .unwrap()
        .run_with_trace()
        .unwrap()
}

fn workloads() -> Vec<Workload> {
    vec![
        // Disjoint, mixed reuse distances.
        wl(&[&[1, 2, 3, 1, 2, 4, 1, 3, 2], &[7, 8, 9, 7, 8, 7, 9, 8, 7]]),
        // Disjoint, one thrashing core, uneven lengths.
        wl(&[&[1, 2, 1, 2, 1, 2, 1, 2], &[5, 6, 7, 8, 5, 6]]),
        // Non-disjoint: cores share pages (exercises shared-fetch misses).
        wl(&[&[1, 2, 3, 1, 2], &[1, 3, 4, 1, 3]]),
    ]
}

#[test]
fn fixed_schedule_is_bit_identical_for_every_family() {
    for w in workloads() {
        for tau in [0u64, 2] {
            let cfg = SimConfig::new(4, tau);
            for family in FAMILIES {
                if !family_applicable(family, &w) {
                    continue;
                }
                let plain = {
                    let strategy = build_family(family, &w, cfg, 42).unwrap();
                    Simulator::new(&w, cfg, strategy)
                        .unwrap()
                        .run_with_trace()
                        .unwrap()
                };
                let fixed = run_traced(&w, cfg, CapacitySchedule::fixed(4), family, 42);
                assert_eq!(plain.0, fixed.0, "{family} tau={tau}: result diverged");
                assert_eq!(plain.1, fixed.1, "{family} tau={tau}: trace diverged");
            }
        }
    }
}

#[test]
fn post_final_changes_are_invisible_for_every_family() {
    // Every workload above finishes well before t = 10_000 at these τ.
    let late: CapacitySchedule = "4,2@10000,6@20000".parse().unwrap();
    for w in workloads() {
        for tau in [0u64, 2] {
            let cfg = SimConfig::new(4, tau);
            for family in FAMILIES {
                if !family_applicable(family, &w) {
                    continue;
                }
                let fixed = run_traced(&w, cfg, CapacitySchedule::fixed(4), family, 42);
                let suffixed = run_traced(&w, cfg, late.clone(), family, 42);
                assert_eq!(fixed.0, suffixed.0, "{family} tau={tau}: result diverged");
                assert_eq!(fixed.1, suffixed.1, "{family} tau={tau}: trace diverged");
            }
        }
    }
}

#[test]
fn pointwise_monotonicity_fails_in_general() {
    // Pinned counterexample: pointwise-more capacity with MORE faults.
    // Belady's anomaly under FIFO (the classic 12-request instance),
    // phrased as two capacity schedules with fixed(4)(t) ≥ fixed(3)(t)
    // for every t. This is why the monotonicity relation above is only
    // asserted for partitioned LRU (a per-part stack algorithm) and only
    // on sampled instances.
    let w = wl(&[&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]]);
    let small = run_traced(
        &w,
        SimConfig::new(3, 0),
        CapacitySchedule::fixed(3),
        "fifo",
        42,
    )
    .0;
    let large = run_traced(
        &w,
        SimConfig::new(4, 0),
        CapacitySchedule::fixed(4),
        "fifo",
        42,
    )
    .0;
    assert_eq!(small.total_faults(), 9);
    assert_eq!(large.total_faults(), 10);
    assert!(large.total_faults() > small.total_faults());
}

#[test]
fn partitioned_lru_is_pointwise_monotone_on_sampled_instances() {
    // Schedule pairs with s_more(t) ≥ s_less(t) for all t.
    let pairs: &[(&str, &str)] = &[
        ("4,2@4", "4"),
        ("4,2@4,4@9", "4"),
        ("4,2@3", "4,3@3"),
        ("4,2@5,3@9", "6,4@5"),
    ];
    for w in workloads() {
        for tau in [0u64, 2] {
            for (less, more) in pairs {
                let s_less: CapacitySchedule = less.parse().unwrap();
                let s_more: CapacitySchedule = more.parse().unwrap();
                let cfg_less = SimConfig::new(s_less.initial_k(), tau);
                let cfg_more = SimConfig::new(s_more.initial_k(), tau);
                let a = run_traced(&w, cfg_less, s_less, "partition", 42).0;
                let b = run_traced(&w, cfg_more, s_more, "partition", 42).0;
                assert!(
                    b.total_faults() <= a.total_faults(),
                    "sP_LRU lost monotonicity on {less} vs {more} tau={tau}: \
                     {} faults with more capacity, {} with less",
                    b.total_faults(),
                    a.total_faults()
                );
            }
        }
    }
}
