//! Property tests of the strategy layer: Lemma 3's exact equivalence,
//! static-partition isolation, and agreement with classic sequential
//! reference implementations at p = 1.

use mcp_core::{simulate, PageId, SimConfig, Workload};
use mcp_policies::{shared_fifo, shared_lru, static_partition_lru, LruMimicPartition, Partition};
use proptest::prelude::*;

fn arb_disjoint_workload(max_cores: usize) -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..5, 0..25), 1..=max_cores).prop_map(|seqs| {
        let shifted: Vec<Vec<PageId>> = seqs
            .into_iter()
            .enumerate()
            .map(|(core, s)| {
                s.into_iter()
                    .map(|v| PageId(core as u32 * 100 + v))
                    .collect()
            })
            .collect();
        Workload::new(shifted).unwrap()
    })
}

/// Classic sequential LRU on one sequence (reference implementation).
fn reference_lru(seq: &[PageId], k: usize) -> u64 {
    let mut stack: Vec<PageId> = Vec::new();
    let mut faults = 0;
    for &p in seq {
        match stack.iter().position(|&q| q == p) {
            Some(i) => {
                stack.remove(i);
            }
            None => {
                faults += 1;
                if stack.len() == k {
                    stack.pop();
                }
            }
        }
        stack.insert(0, p);
    }
    faults
}

/// Classic sequential FIFO (reference implementation).
fn reference_fifo(seq: &[PageId], k: usize) -> u64 {
    let mut queue: Vec<PageId> = Vec::new();
    let mut faults = 0;
    for &p in seq {
        if !queue.contains(&p) {
            faults += 1;
            if queue.len() == k {
                queue.remove(0);
            }
            queue.push(p);
        }
    }
    faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn lemma3_mimic_equals_shared_lru(
        w in arb_disjoint_workload(3),
        extra_k in 0usize..5,
        tau in 0u64..5,
    ) {
        let cfg = SimConfig::new(w.num_cores() + extra_k, tau);
        let shared = simulate(&w, cfg, shared_lru()).unwrap();
        let mimic = simulate(&w, cfg, LruMimicPartition::new()).unwrap();
        prop_assert_eq!(shared.faults, mimic.faults);
        prop_assert_eq!(shared.fault_times, mimic.fault_times);
        prop_assert_eq!(shared.makespan, mimic.makespan);
    }

    #[test]
    fn single_core_shared_lru_matches_reference(
        seq in prop::collection::vec(0u32..6, 0..40),
        k in 1usize..5,
        tau in 0u64..4,
    ) {
        // Delays never change a single core's own request order, so the
        // multicore engine must agree with the textbook simulation for
        // every tau.
        let pages: Vec<PageId> = seq.iter().map(|&v| PageId(v)).collect();
        let w = Workload::new(vec![pages.clone()]).unwrap();
        let r = simulate(&w, SimConfig::new(k, tau), shared_lru()).unwrap();
        prop_assert_eq!(r.total_faults(), reference_lru(&pages, k));
    }

    #[test]
    fn single_core_shared_fifo_matches_reference(
        seq in prop::collection::vec(0u32..6, 0..40),
        k in 1usize..5,
        tau in 0u64..3,
    ) {
        let pages: Vec<PageId> = seq.iter().map(|&v| PageId(v)).collect();
        let w = Workload::new(vec![pages.clone()]).unwrap();
        let r = simulate(&w, SimConfig::new(k, tau), shared_fifo()).unwrap();
        prop_assert_eq!(r.total_faults(), reference_fifo(&pages, k));
    }

    #[test]
    fn static_partition_isolates_cores(
        seq0 in prop::collection::vec(0u32..4, 1..25),
        seq1a in prop::collection::vec(100u32..104, 1..25),
        seq1b in prop::collection::vec(100u32..104, 1..25),
        k0 in 1usize..4,
        k1 in 1usize..4,
        tau in 0u64..4,
    ) {
        // Core 0's faults under a static partition must not depend on what
        // core 1 requests (disjoint sequences, fixed parts).
        let pages0: Vec<PageId> = seq0.iter().map(|&v| PageId(v)).collect();
        let wa = Workload::new(vec![
            pages0.clone(),
            seq1a.iter().map(|&v| PageId(v)).collect(),
        ]).unwrap();
        let wb = Workload::new(vec![
            pages0,
            seq1b.iter().map(|&v| PageId(v)).collect(),
        ]).unwrap();
        let cfg = SimConfig::new(k0 + k1, tau);
        let part = Partition::from_sizes(vec![k0, k1]);
        let ra = simulate(&wa, cfg, static_partition_lru(part.clone())).unwrap();
        let rb = simulate(&wb, cfg, static_partition_lru(part)).unwrap();
        prop_assert_eq!(ra.faults[0], rb.faults[0]);
        // Per-part behaviour equals the sequential reference with k0 cells.
        prop_assert_eq!(ra.faults[0], reference_lru(wa.sequence(0), k0));
    }

    #[test]
    fn shared_lru_never_beats_belady_partition_per_core_sum_without_sharing(
        w in arb_disjoint_workload(2),
        tau in 0u64..3,
    ) {
        // Theorem 1.2 direction sanity on random inputs: S_LRU is at most
        // K times the best partition (checked exactly in E05); here just
        // the weak sanity that both are within [universe, n].
        let k = w.num_cores() + 1;
        let cfg = SimConfig::new(k, tau);
        let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
        let n = w.total_len() as u64;
        prop_assert!(lru <= n);
        prop_assert!(n == 0 || lru >= w.universe_size() as u64);
    }
}

/// Regression: on non-disjoint workloads, simultaneous reads of a shared
/// page can pin a part's only owned page, and ownership borrowing can let
/// one part overfill while another is under quota with a full cache. Both
/// cases used to panic inside `StaticPartition::choose_cell`; now the
/// strategy must borrow an empty cell or evict like a full part. Found by
/// the `mcp-oracle` differential fuzz harness.
#[test]
fn static_partition_survives_overlapping_workloads() {
    use mcp_policies::static_partition_belady;
    let mut rng_seed = 0u64;
    for seqs in [
        // Both cores hammer one tiny shared universe.
        vec![vec![0u32, 1, 0, 2, 1, 0], vec![0, 0, 1, 2, 0, 1]],
        // Shared page 0 is read simultaneously while the cache is cold.
        vec![vec![0, 1, 2, 3, 0], vec![0, 3, 2, 1, 0]],
        // Three cores, heavy overlap, K = p.
        vec![vec![0, 1, 0], vec![1, 0, 1], vec![0, 1, 0]],
    ] {
        rng_seed += 1;
        let w = Workload::from_u32(seqs).unwrap();
        let p = w.num_cores();
        for k in p..p + 3 {
            for tau in [0, 1, 3] {
                let cfg = SimConfig::new(k, tau);
                let part = Partition::equal(k, p);
                let r = simulate(&w, cfg, static_partition_lru(part.clone())).unwrap();
                assert_eq!(
                    r.total_faults() + r.total_hits(),
                    w.total_len() as u64,
                    "seed {rng_seed} k {k} tau {tau}"
                );
                simulate(&w, cfg, static_partition_belady(part)).unwrap();
            }
        }
    }
}
