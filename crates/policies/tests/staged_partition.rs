//! Integration tests for the staged dynamic partition: equivalence with
//! static partitions in the single-stage case (proptest), and correct
//! shrink enforcement across stage boundaries.

use mcp_core::{simulate, PageId, SimConfig, Time, Workload};
use mcp_policies::{static_partition_lru, Lru, Partition, StagedPartition};
use proptest::prelude::*;

fn arb_disjoint_two_core() -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec(0u32..4, 1..30),
        prop::collection::vec(100u32..104, 1..30),
    )
        .prop_map(|(a, b)| {
            Workload::new(vec![
                a.into_iter().map(PageId).collect(),
                b.into_iter().map(PageId).collect(),
            ])
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn single_stage_equals_static_partition(
        w in arb_disjoint_two_core(),
        k0 in 1usize..4,
        k1 in 1usize..4,
        tau in 0u64..4,
    ) {
        let cfg = SimConfig::new(k0 + k1, tau);
        let part = Partition::from_sizes(vec![k0, k1]);
        let s = simulate(&w, cfg, static_partition_lru(part.clone())).unwrap();
        let d = simulate(
            &w,
            cfg,
            StagedPartition::uniform(vec![(1, part)], Lru::new),
        )
        .unwrap();
        prop_assert_eq!(s.faults, d.faults);
        prop_assert_eq!(s.fault_times, d.fault_times);
    }

    #[test]
    fn identical_stages_collapse_to_static(
        w in arb_disjoint_two_core(),
        tau in 0u64..3,
        stages in 2usize..6,
    ) {
        // Repeating the same partition across m stages must behave exactly
        // like the static partition (no spurious shrink evictions).
        let cfg = SimConfig::new(4, tau);
        let part = Partition::from_sizes(vec![2, 2]);
        let horizon = (w.total_len() as u64 + 1) * (tau + 1) + 1;
        let plan: Vec<(Time, Partition)> = (0..stages)
            .map(|s| (1 + s as u64 * (horizon / stages as u64).max(1), part.clone()))
            .collect();
        let s = simulate(&w, cfg, static_partition_lru(part.clone())).unwrap();
        let d = simulate(&w, cfg, StagedPartition::uniform(plan, Lru::new)).unwrap();
        prop_assert_eq!(s.faults, d.faults);
    }
}

#[test]
fn shrink_boundary_is_honoured_even_mid_fetch() {
    // Core 0's part shrinks from 3 to 1 at t = 8 while it may have a fetch
    // in flight; enforcement must catch up without evicting fetching cells.
    let w = Workload::from_u32([vec![1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3], vec![7; 12]]).unwrap();
    let stages = vec![
        (1, Partition::from_sizes(vec![3, 1])),
        (8, Partition::from_sizes(vec![1, 3])),
    ];
    let r = simulate(
        &w,
        SimConfig::new(4, 2),
        StagedPartition::uniform(stages, Lru::new),
    )
    .unwrap();
    // Core 0 must refault after the shrink; core 1 only cold-misses.
    assert!(
        r.faults[0] >= 4,
        "shrink must cost core 0 extra faults: {:?}",
        r.faults
    );
    assert_eq!(r.faults[1], 1);
    // Conservation still holds.
    assert_eq!(r.faults[0] + r.hits[0], 12);
}
