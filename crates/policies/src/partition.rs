//! Cache partitions: an assignment `k : P → {0..K}` with `Σ_j k_j = K`.

use std::fmt;

/// A (static) cache partition: `sizes[j]` cells are reserved for core `j`.
///
/// The paper requires every processor with active requests to hold at
/// least one cell; [`Partition::validate`] enforces `k_j ≥ 1` for all `j`
/// and `Σ_j k_j = K`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    sizes: Vec<usize>,
}

/// Errors in partition construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum PartitionError {
    /// Sizes do not sum to the cache size.
    WrongTotal { total: usize, cache_size: usize },
    /// A core was assigned zero cells.
    EmptyPart { core: usize },
    /// Number of parts does not match the number of cores.
    WrongCores { parts: usize, cores: usize },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WrongTotal { total, cache_size } => {
                write!(f, "partition sums to {total}, cache size is {cache_size}")
            }
            PartitionError::EmptyPart { core } => {
                write!(f, "core {core} was assigned an empty part")
            }
            PartitionError::WrongCores { parts, cores } => {
                write!(f, "partition has {parts} parts for {cores} cores")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Build from explicit part sizes (unvalidated until
    /// [`Partition::validate`]).
    pub fn from_sizes(sizes: Vec<usize>) -> Self {
        Partition { sizes }
    }

    /// An equal split of `cache_size` among `cores`, earlier cores taking
    /// the remainder.
    ///
    /// ```
    /// use mcp_policies::Partition;
    /// assert_eq!(Partition::equal(8, 3).sizes(), &[3, 3, 2]);
    /// ```
    pub fn equal(cache_size: usize, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let base = cache_size / cores;
        let extra = cache_size % cores;
        Partition {
            sizes: (0..cores).map(|j| base + usize::from(j < extra)).collect(),
        }
    }

    /// A split proportional to `weights` (each part at least one cell).
    /// The remainder after flooring goes to the largest-weight parts.
    pub fn proportional(cache_size: usize, weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(cache_size >= weights.len(), "need one cell per core");
        let total: f64 = weights.iter().sum();
        let spare = cache_size - weights.len();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| 1 + ((w / total) * spare as f64).floor() as usize)
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        // Distribute the flooring remainder to the heaviest parts.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap());
        let mut i = 0;
        while assigned < cache_size {
            sizes[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        Partition { sizes }
    }

    /// The part sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of core `j`'s part.
    pub fn size(&self, core: usize) -> usize {
        self.sizes[core]
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.sizes.len()
    }

    /// The largest part, `max_j k_j` (the quantity in Lemma 1's bound).
    pub fn max_part(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Rescale the partition to a new total of `new_total` cells,
    /// preserving the proportions of the current sizes by the largest-
    /// remainder method: every part keeps at least one cell (the paper's
    /// `k_j ≥ 1` invariant), the spare `new_total − p` cells are split
    /// proportionally to the current sizes, and flooring leftovers go to
    /// the parts with the largest fractional remainder (ties to the lower
    /// core index, so the result is deterministic). The result always sums
    /// to exactly `new_total`.
    ///
    /// This is the quota-rescaling rule partitioned strategies apply when
    /// the cache capacity `K(t)` changes mid-run.
    ///
    /// ```
    /// use mcp_policies::Partition;
    /// let p = Partition::from_sizes(vec![3, 3, 2]);
    /// assert_eq!(p.rescaled(4).sizes(), &[2, 1, 1]);
    /// assert_eq!(p.rescaled(8).sizes(), &[3, 3, 2]);
    /// assert_eq!(p.rescaled(16).sizes(), &[6, 6, 4]);
    /// ```
    ///
    /// # Panics
    ///
    /// If `new_total` is smaller than the number of parts (every core must
    /// keep a cell; the engine guarantees `K(t) ≥ p`).
    pub fn rescaled(&self, new_total: usize) -> Partition {
        let parts = self.sizes.len();
        assert!(
            new_total >= parts,
            "cannot rescale {parts} parts into {new_total} cells"
        );
        let old_total: usize = self.sizes.iter().sum();
        if old_total == new_total {
            return self.clone();
        }
        let spare = new_total - parts;
        let mut sizes = vec![1usize; parts];
        if spare > 0 && old_total > 0 {
            // Largest remainder over exact shares spare·k_j / old_total.
            let mut remainders: Vec<(usize, usize)> = Vec::with_capacity(parts);
            let mut assigned = 0usize;
            for (j, &k) in self.sizes.iter().enumerate() {
                let num = spare * k;
                sizes[j] += num / old_total;
                assigned += num / old_total;
                remainders.push((num % old_total, j));
            }
            // Larger remainder first; equal remainders resolve to the
            // lower core index.
            remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for &(_, j) in remainders.iter().take(spare - assigned) {
                sizes[j] += 1;
            }
        }
        Partition { sizes }
    }

    /// Check the partition against a cache size and core count.
    pub fn validate(&self, cache_size: usize, cores: usize) -> Result<(), PartitionError> {
        if self.sizes.len() != cores {
            return Err(PartitionError::WrongCores {
                parts: self.sizes.len(),
                cores,
            });
        }
        if let Some(core) = self.sizes.iter().position(|&k| k == 0) {
            return Err(PartitionError::EmptyPart { core });
        }
        let total: usize = self.sizes.iter().sum();
        if total != cache_size {
            return Err(PartitionError::WrongTotal { total, cache_size });
        }
        Ok(())
    }
}

impl fmt::Display for Partition {
    /// Writes `[k_1,k_2,...]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, k) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_distributes_remainder() {
        assert_eq!(Partition::equal(8, 3).sizes(), &[3, 3, 2]);
        assert_eq!(Partition::equal(9, 3).sizes(), &[3, 3, 3]);
    }

    #[test]
    fn proportional_split() {
        let p = Partition::proportional(10, &[1.0, 1.0, 2.0]);
        assert_eq!(p.sizes().iter().sum::<usize>(), 10);
        assert!(p.size(2) >= p.size(0));
        assert!(p.sizes().iter().all(|&k| k >= 1));
    }

    #[test]
    fn validation() {
        let p = Partition::from_sizes(vec![2, 2]);
        assert!(p.validate(4, 2).is_ok());
        assert_eq!(
            p.validate(5, 2).unwrap_err(),
            PartitionError::WrongTotal {
                total: 4,
                cache_size: 5
            }
        );
        assert_eq!(
            p.validate(4, 3).unwrap_err(),
            PartitionError::WrongCores { parts: 2, cores: 3 }
        );
        let z = Partition::from_sizes(vec![4, 0]);
        assert_eq!(
            z.validate(4, 2).unwrap_err(),
            PartitionError::EmptyPart { core: 1 }
        );
    }

    #[test]
    fn rescaled_preserves_proportions_and_total() {
        let p = Partition::from_sizes(vec![3, 3, 2]);
        assert_eq!(p.rescaled(4).sizes(), &[2, 1, 1]);
        assert_eq!(p.rescaled(8).sizes(), &[3, 3, 2]); // no-op round-trips
        assert_eq!(p.rescaled(16).sizes(), &[6, 6, 4]);
        // Every part keeps ≥ 1 cell even when squeezed to the minimum.
        assert_eq!(p.rescaled(3).sizes(), &[1, 1, 1]);
        // Sums are exact for awkward totals.
        for total in 3..=20 {
            let r = p.rescaled(total);
            assert_eq!(r.sizes().iter().sum::<usize>(), total, "total={total}");
            assert!(r.sizes().iter().all(|&k| k >= 1), "total={total}");
        }
        // Deterministic tie-break: equal parts, odd spare → lower index.
        let q = Partition::from_sizes(vec![2, 2]);
        assert_eq!(q.rescaled(3).sizes(), &[2, 1]);
        assert_eq!(q.rescaled(5).sizes(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot rescale")]
    fn rescaled_rejects_fewer_cells_than_parts() {
        Partition::from_sizes(vec![2, 2, 2]).rescaled(2);
    }

    #[test]
    fn display_and_max() {
        let p = Partition::from_sizes(vec![1, 3, 2]);
        assert_eq!(p.to_string(), "[1,3,2]");
        assert_eq!(p.max_part(), 3);
        assert_eq!(p.num_parts(), 3);
    }
}
