//! The strategy-family registry: every named strategy the CLI, fuzz
//! harness, batch engine, and tournament grid can instantiate.
//!
//! A *family* is a constructor keyed by the same identifier
//! `mcp simulate --strategy` accepts. The registry lives here (rather than
//! in `mcp-oracle`, where it started) so that both the differential oracle
//! and the batch engine can build strategies without depending on each
//! other. Randomized families (`rand`, `mark-rand`) are seeded per call,
//! so every comparison is reproducible.

use crate::{
    shared_fifo, shared_lru, static_partition_belady, static_partition_lru, Clock, Fwf, Lfu, LruK,
    LruMimicPartition, Marking, MarkingTie, Mru, Partition, RandomEvict, SacrificeOffline, Shared,
    SharedFitf,
};
use mcp_core::{CacheStrategy, SimConfig, Workload};

/// Every registered strategy family, in canonical order.
pub const FAMILIES: &[&str] = &[
    "lru",
    "fifo",
    "clock",
    "lfu",
    "mru",
    "fwf",
    "lru2",
    "rand",
    "mark",
    "mark-rand",
    "fitf",
    "mimic",
    "partition",
    "partition-opt",
    "sacrifice",
];

/// Build a fresh strategy of family `name` for `workload` under `cfg`
/// (each engine run needs its own instance — strategies are stateful).
/// Returns `None` for unknown names. `seed` drives the randomized
/// families only.
pub fn build_family(
    name: &str,
    workload: &Workload,
    cfg: SimConfig,
    seed: u64,
) -> Option<Box<dyn CacheStrategy>> {
    let p = workload.num_cores();
    let equal = || Partition::equal(cfg.cache_size, p);
    Some(match name {
        "lru" => Box::new(shared_lru()),
        "fifo" => Box::new(shared_fifo()),
        "clock" => Box::new(Shared::new(Clock::new())),
        "lfu" => Box::new(Shared::new(Lfu::new())),
        "mru" => Box::new(Shared::new(Mru::new())),
        "fwf" => Box::new(Shared::new(Fwf::new())),
        "lru2" => Box::new(Shared::new(LruK::new(2))),
        "rand" => Box::new(Shared::new(RandomEvict::new(seed))),
        "mark" => Box::new(Shared::new(Marking::new(MarkingTie::Lru))),
        "mark-rand" => Box::new(Shared::new(Marking::new(MarkingTie::Random(seed)))),
        "fitf" => Box::new(SharedFitf::new()),
        "mimic" => Box::new(LruMimicPartition::new()),
        "partition" => Box::new(static_partition_lru(equal())),
        "partition-opt" => Box::new(static_partition_belady(equal())),
        "sacrifice" => Box::new(SacrificeOffline::new(p - 1)),
        _ => return None,
    })
}

/// `true` iff `family` is defined on `workload` at all. The offline
/// sacrifice construction (Lemma 4) asserts disjoint per-core sequences;
/// every other family accepts any workload.
pub fn family_applicable(name: &str, workload: &Workload) -> bool {
    name != "sacrifice" || workload.is_disjoint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_and_runs() {
        let w = Workload::from_u32([vec![1, 2, 1], vec![7, 8, 7]]).unwrap();
        let cfg = SimConfig::new(4, 1);
        for family in FAMILIES {
            let strategy = build_family(family, &w, cfg, 42).unwrap();
            let r = mcp_core::simulate(&w, cfg, strategy).unwrap();
            assert_eq!(r.total_faults() + r.total_hits(), 6, "{family}");
        }
        assert!(build_family("nope", &w, cfg, 0).is_none());
    }

    #[test]
    fn sacrifice_requires_disjoint_workloads() {
        let disjoint = Workload::from_u32([vec![1, 2], vec![7, 8]]).unwrap();
        let shared = Workload::from_u32([vec![1, 2], vec![1, 8]]).unwrap();
        assert!(family_applicable("sacrifice", &disjoint));
        assert!(!family_applicable("sacrifice", &shared));
        assert!(family_applicable("lru", &shared));
    }
}
