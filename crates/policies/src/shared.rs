//! Shared-cache strategies `S_A`: the whole cache is one pool and any cell
//! may hold any core's page.

use crate::eviction::EvictionPolicy;
use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};

/// `S_A`: a shared cache managed by a single eviction policy `A`.
///
/// `Shared::new(Lru::new())` is the paper's `S_LRU`.
#[derive(Clone, Debug)]
pub struct Shared<P> {
    policy: P,
    stamp: u64,
}

impl<P: EvictionPolicy> Shared<P> {
    /// Wrap an eviction policy into a shared-cache strategy.
    pub fn new(policy: P) -> Self {
        Shared { policy, stamp: 0 }
    }

    /// Access the wrapped policy (e.g. to read marking phase counters).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl<P: EvictionPolicy> CacheStrategy for Shared<P> {
    fn name(&self) -> String {
        format!("S_{}", self.policy.name())
    }

    fn on_hit(&mut self, _core: usize, page: PageId, _time: Time, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.policy.on_access(page, stamp);
    }

    fn choose_cell(&mut self, _core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        if let Some(cell) = cache.empty_cell() {
            return cell;
        }
        // Stream the candidates: intrusive policies walk their own ordered
        // structure and only probe the eligibility test, so no per-fault
        // `Vec` of all evictable pages is materialised.
        let mut candidates = cache.evictable_cells().map(|(_, p, _)| p);
        let victim = self
            .policy
            .choose_victim_from(&mut candidates, &|p| cache.is_evictable_page(p));
        cache.cell_of(victim).expect("victim is resident")
    }

    fn on_fault(&mut self, _core: usize, page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.policy.on_insert(page, stamp);
    }

    fn on_shared_fetch_miss(&mut self, _core: usize, page: PageId, _time: Time, _cache: &Cache) {
        // The page is mid-fetch for another core but this request *is* an
        // access to it: refresh the policy's recency/frequency state, as a
        // hit would. (Only reachable on non-disjoint workloads.)
        let stamp = self.next_stamp();
        self.policy.on_access(page, stamp);
    }

    fn on_evict(&mut self, page: PageId, _cell: usize) {
        self.policy.on_remove(page);
    }

    fn shrink_victims(&mut self, need: usize, _time: Time, cache: &Cache) -> Vec<usize> {
        // A capacity drop needs `need` victims at once. Ask the wrapped
        // policy one victim at a time — the same `choose_victim_from`
        // streaming entry the fault path uses — masking out pages already
        // chosen this round, so the policy's own ordering decides the
        // whole batch (e.g. LRU sheds its `need` least-recent pages).
        let mut cells = Vec::with_capacity(need);
        let mut taken: Vec<PageId> = Vec::with_capacity(need);
        for _ in 0..need {
            let mask = &taken;
            let mut candidates = cache
                .evictable_cells()
                .map(|(_, p, _)| p)
                .filter(|p| !mask.contains(p));
            let Some(first) = candidates.next() else {
                break;
            };
            let mut candidates = std::iter::once(first).chain(candidates);
            let victim = self.policy.choose_victim_from(&mut candidates, &|p| {
                cache.is_evictable_page(p) && !mask.contains(&p)
            });
            cells.push(cache.cell_of(victim).expect("victim is resident"));
            taken.push(victim);
        }
        cells
    }
}

/// `S_FITF`: shared cache with the furthest-in-the-future heuristic
/// extended to multiple sequences.
///
/// For each resident page we estimate its next request time as the minimum
/// over cores of the number of that core's still-unserved requests before
/// the page's next occurrence (i.e. assuming no further delays); the page
/// with the largest estimate is evicted. For p = 1 this is exactly Belady.
/// The paper (end of Section 4) shows this strategy is *not* optimal in
/// the multicore setting once τ > K/p — experiment E09 reproduces that.
///
/// Distances are answered from precomputed next-occurrence arrays (the
/// standard Belady trick, cf. the offline `belady_seq` module): `begin`
/// assigns every page a dense index and backward-scans each sequence once,
/// and each served request updates one `upcoming` slot in O(1). A distance
/// query is then `p` array reads — no per-core hash probing or binary
/// search per resident page per fault.
#[derive(Clone, Debug, Default)]
pub struct SharedFitf {
    /// Dense index of every page occurring in the workload.
    page_index: std::collections::HashMap<PageId, u32>,
    /// seq_ids[core][pos] = dense page index of that core's request.
    seq_ids: Vec<Vec<u32>>,
    /// next_pos[core][pos] = next position of the same page strictly after
    /// `pos` in that core's sequence (`usize::MAX` if none).
    next_pos: Vec<Vec<usize>>,
    /// upcoming[core][page_idx] = first position `>= cursor[core]` at which
    /// the page occurs in that core's sequence (`usize::MAX` if none).
    upcoming: Vec<Vec<usize>>,
    /// Requests served so far, per core.
    cursor: Vec<usize>,
}

impl SharedFitf {
    /// New FITF strategy; sequences are captured in [`CacheStrategy::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    fn distance(&self, page: PageId) -> u64 {
        let Some(&pid) = self.page_index.get(&page) else {
            return u64::MAX; // never requested anywhere
        };
        let mut best = u64::MAX;
        for (core, upcoming) in self.upcoming.iter().enumerate() {
            let pos = upcoming[pid as usize];
            if pos != usize::MAX {
                best = best.min((pos - self.cursor[core]) as u64);
            }
        }
        best
    }

    /// Account the request at `cursor[core]` as served: its page's next
    /// occurrence advances, and the cursor moves on. O(1).
    fn advance(&mut self, core: usize) {
        let pos = self.cursor[core];
        let pid = self.seq_ids[core][pos] as usize;
        self.upcoming[core][pid] = self.next_pos[core][pos];
        self.cursor[core] = pos + 1;
    }
}

impl CacheStrategy for SharedFitf {
    fn name(&self) -> String {
        "S_FITF".into()
    }

    fn begin(&mut self, workload: &Workload, _cfg: &SimConfig) {
        self.page_index.clear();
        for seq in workload.sequences() {
            for &p in seq {
                let next = self.page_index.len() as u32;
                self.page_index.entry(p).or_insert(next);
            }
        }
        let num_pages = self.page_index.len();
        self.seq_ids = workload
            .sequences()
            .iter()
            .map(|seq| seq.iter().map(|p| self.page_index[p]).collect())
            .collect();
        // Backward scan: next occurrence of each position's page, and (once
        // the scan completes) each page's first occurrence overall.
        self.next_pos = Vec::with_capacity(self.seq_ids.len());
        self.upcoming = Vec::with_capacity(self.seq_ids.len());
        for ids in &self.seq_ids {
            let mut next = vec![usize::MAX; ids.len()];
            let mut first = vec![usize::MAX; num_pages];
            for (pos, &pid) in ids.iter().enumerate().rev() {
                next[pos] = first[pid as usize];
                first[pid as usize] = pos;
            }
            self.next_pos.push(next);
            self.upcoming.push(first);
        }
        self.cursor = vec![0; workload.num_cores()];
    }

    fn on_hit(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.advance(core);
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        // The faulting request is still unserved while we choose; count it
        // as served for distance queries so "next use" looks strictly
        // ahead. (The faulting page itself is absent, so only the cursor
        // offset matters — `upcoming` needs no adjustment.)
        self.cursor[core] += 1;
        let victim_cell = if let Some(cell) = cache.empty_cell() {
            cell
        } else {
            let (cell, _, _) = cache
                .evictable_cells()
                .max_by_key(|(cell, p, _)| (self.distance(*p), *cell))
                .expect("cache full implies a resident page");
            cell
        };
        self.cursor[core] -= 1;
        victim_cell
    }

    fn on_fault(&mut self, core: usize, _page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        self.advance(core);
    }

    fn on_shared_fetch_miss(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.advance(core);
    }

    fn shrink_victims(&mut self, need: usize, _time: Time, cache: &Cache) -> Vec<usize> {
        // Shed the pages whose next use is furthest in the future — the
        // FITF rule applied `need` times at once. Cell index breaks
        // distance ties, matching the fault path.
        let mut cells: Vec<(u64, usize)> = cache
            .evictable_cells()
            .map(|(cell, p, _)| (self.distance(p), cell))
            .collect();
        cells.sort_by(|a, b| b.cmp(a));
        cells.truncate(need);
        cells.into_iter().map(|(_, cell)| cell).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru::Lru;
    use mcp_core::{simulate, Workload};

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn shared_lru_names() {
        assert_eq!(Shared::new(Lru::new()).name(), "S_LRU");
    }

    #[test]
    fn shared_lru_sequential_classic() {
        // p=1, K=2, sequence 1 2 3 1 2 3: LRU faults on everything.
        let w = wl(&[&[1, 2, 3, 1, 2, 3]]);
        let r = simulate(&w, SimConfig::new(2, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.total_faults(), 6);
        // K=3: only 3 cold faults.
        let w3 = wl(&[&[1, 2, 3, 1, 2, 3], &[], &[]]);
        let r = simulate(&w3, SimConfig::new(3, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.total_faults(), 3);
    }

    #[test]
    fn shared_lru_cross_core_recency() {
        // K=3, tau=0. t=1: core0 faults on 1, core1 faults on 3. t=2:
        // core0 faults on 2, core1 hits 3 (refreshing it globally). t=3:
        // core0 requests 4 with the cache full {1,2,3}; the globally least
        // recently used page is 1, so it is evicted and core0's request of
        // 1 at t=4 faults again.
        let w = wl(&[&[1, 2, 4, 1], &[3, 3, 3, 3]]);
        let r = simulate(&w, SimConfig::new(3, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.faults[0], 4);
        assert_eq!(r.faults[1], 1);
    }

    #[test]
    fn shared_fetch_miss_refreshes_recency() {
        // Regression test: a request for a page mid-fetch by another core
        // is an access to that page and must reach the wrapped policy.
        // K=3, τ=2, three cores:
        //   t=1: core0 faults on 1 (LRU stamp 1), core1 faults on 2
        //        (stamp 2), core2 requests 1 mid-fetch → shared-fetch miss
        //        (stamp 3, with the forwarding in place).
        //   t=4: core0 faults on 3 into the last empty cell; core2 then
        //        faults on 5 with no cell free. With the shared-fetch
        //        access recorded, page 2 is least recent and is evicted,
        //        so core0's re-request of 1 at t=7 hits. Without the
        //        forwarding, 1 still carries stamp 1, gets evicted
        //        instead, and the re-request faults.
        let w = wl(&[&[1, 3, 1], &[2], &[1, 5]]);
        let r = simulate(&w, SimConfig::new(3, 2), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.faults, vec![2, 1, 2]);
        assert_eq!(r.hits, vec![1, 0, 0]);
    }

    #[test]
    fn fitf_matches_belady_on_single_core() {
        let w = wl(&[&[1, 2, 3, 1, 2, 1, 3, 2, 1]]);
        let fitf = simulate(&w, SimConfig::new(2, 0), SharedFitf::new()).unwrap();
        // Belady on 1 2 3 1 2 1 3 2 1 with K=2:
        // fault 1, fault 2, fault 3 (evict 2? next use of 1 is pos 3, of 2
        // is pos 4 -> evict 2), fault... simulate by hand is error-prone;
        // instead assert it does not exceed LRU and at least universe size.
        let lru = simulate(&w, SimConfig::new(2, 0), Shared::new(Lru::new())).unwrap();
        assert!(fitf.total_faults() >= 3);
        assert!(fitf.total_faults() <= lru.total_faults());
    }

    #[test]
    fn shrink_sheds_least_recent_pages_first() {
        use mcp_core::{CapacitySchedule, SimConfig, Simulator};
        // K=4, τ=0, single core 1 2 3 4 2 3 4 1; capacity halves at t=5.
        // At the drop the requested page 2 is pinned; LRU must shed the
        // two least-recent evictable pages, 1 then 3, via repeated
        // choose_victim_from.
        let w = wl(&[&[1, 2, 3, 4, 2, 3, 4, 1]]);
        let schedule: CapacitySchedule = "4,2@5".parse().unwrap();
        let (r, trace) =
            Simulator::with_capacity(&w, SimConfig::new(4, 0), schedule, Shared::new(Lru::new()))
                .unwrap()
                .run_with_trace()
                .unwrap();
        let drop_step = trace.iter().find(|s| s.time == 5).unwrap();
        let shed: Vec<PageId> = drop_step.voluntary.iter().map(|&(_, p)| p).collect();
        assert_eq!(shed, vec![PageId(1), PageId(3)]);
        assert_eq!(r.total_faults(), 7); // 4 cold + re-faults on 3, 4, 1
        assert_eq!(r.total_hits(), 1); // only the pinned 2 at the drop
    }

    #[test]
    fn fitf_prefers_never_used_again() {
        // K=2: 1 2 1 2, then 3 once, then 1 2 1 2 again. On the fault for
        // 3, both 1 and 2 recur, 3 never does. FITF evicts whichever of
        // 1/2 is furthest; after 3 is brought in, 3 is the best victim.
        let w = wl(&[&[1, 2, 3, 1, 2]]);
        let r = simulate(&w, SimConfig::new(2, 0), SharedFitf::new()).unwrap();
        // Belady: faults 1,2,3 and then one of {1,2} faults once: total 4.
        assert_eq!(r.total_faults(), 4);
    }
}
