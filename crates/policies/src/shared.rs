//! Shared-cache strategies `S_A`: the whole cache is one pool and any cell
//! may hold any core's page.

use crate::eviction::EvictionPolicy;
use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};

/// `S_A`: a shared cache managed by a single eviction policy `A`.
///
/// `Shared::new(Lru::new())` is the paper's `S_LRU`.
#[derive(Clone, Debug)]
pub struct Shared<P> {
    policy: P,
    stamp: u64,
}

impl<P: EvictionPolicy> Shared<P> {
    /// Wrap an eviction policy into a shared-cache strategy.
    pub fn new(policy: P) -> Self {
        Shared { policy, stamp: 0 }
    }

    /// Access the wrapped policy (e.g. to read marking phase counters).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl<P: EvictionPolicy> CacheStrategy for Shared<P> {
    fn name(&self) -> String {
        format!("S_{}", self.policy.name())
    }

    fn on_hit(&mut self, _core: usize, page: PageId, _time: Time, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.policy.on_access(page, stamp);
    }

    fn choose_cell(&mut self, _core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        if let Some(cell) = cache.empty_cell() {
            return cell;
        }
        let candidates: Vec<PageId> = cache.evictable_cells().map(|(_, p, _)| p).collect();
        let victim = self.policy.choose_victim(&candidates);
        cache.cell_of(victim).expect("victim is resident")
    }

    fn on_fault(&mut self, _core: usize, page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.policy.on_insert(page, stamp);
    }

    fn on_evict(&mut self, page: PageId, _cell: usize) {
        self.policy.on_remove(page);
    }
}

/// `S_FITF`: shared cache with the furthest-in-the-future heuristic
/// extended to multiple sequences.
///
/// For each resident page we estimate its next request time as the minimum
/// over cores of the number of that core's still-unserved requests before
/// the page's next occurrence (i.e. assuming no further delays); the page
/// with the largest estimate is evicted. For p = 1 this is exactly Belady.
/// The paper (end of Section 4) shows this strategy is *not* optimal in
/// the multicore setting once τ > K/p — experiment E09 reproduces that.
#[derive(Clone, Debug, Default)]
pub struct SharedFitf {
    /// occurrences[core][page] = ascending positions in that core's sequence.
    occurrences: Vec<std::collections::HashMap<PageId, Vec<usize>>>,
    /// Requests served so far, per core.
    cursor: Vec<usize>,
}

impl SharedFitf {
    /// New FITF strategy; sequences are captured in [`CacheStrategy::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    fn distance(&self, page: PageId) -> u64 {
        let mut best = u64::MAX;
        for (core, occ) in self.occurrences.iter().enumerate() {
            if let Some(positions) = occ.get(&page) {
                let cur = self.cursor[core];
                let i = positions.partition_point(|&pos| pos < cur);
                if let Some(&pos) = positions.get(i) {
                    best = best.min((pos - cur) as u64);
                }
            }
        }
        best
    }
}

impl CacheStrategy for SharedFitf {
    fn name(&self) -> String {
        "S_FITF".into()
    }

    fn begin(&mut self, workload: &Workload, _cfg: &SimConfig) {
        self.occurrences = workload
            .sequences()
            .iter()
            .map(|seq| {
                let mut occ: std::collections::HashMap<PageId, Vec<usize>> =
                    std::collections::HashMap::new();
                for (i, &p) in seq.iter().enumerate() {
                    occ.entry(p).or_default().push(i);
                }
                occ
            })
            .collect();
        self.cursor = vec![0; workload.num_cores()];
    }

    fn on_hit(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        // The faulting request is still unserved while we choose; count it
        // as served for distance queries so "next use" looks strictly ahead.
        self.cursor[core] += 1;
        let victim_cell = if let Some(cell) = cache.empty_cell() {
            cell
        } else {
            let (cell, _, _) = cache
                .evictable_cells()
                .max_by_key(|(cell, p, _)| (self.distance(*p), *cell))
                .expect("cache full implies a resident page");
            cell
        };
        self.cursor[core] -= 1;
        victim_cell
    }

    fn on_fault(&mut self, core: usize, _page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        self.cursor[core] += 1;
    }

    fn on_shared_fetch_miss(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru::Lru;
    use mcp_core::{simulate, Workload};

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn shared_lru_names() {
        assert_eq!(Shared::new(Lru::new()).name(), "S_LRU");
    }

    #[test]
    fn shared_lru_sequential_classic() {
        // p=1, K=2, sequence 1 2 3 1 2 3: LRU faults on everything.
        let w = wl(&[&[1, 2, 3, 1, 2, 3]]);
        let r = simulate(&w, SimConfig::new(2, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.total_faults(), 6);
        // K=3: only 3 cold faults.
        let w3 = wl(&[&[1, 2, 3, 1, 2, 3], &[], &[]]);
        let r = simulate(&w3, SimConfig::new(3, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.total_faults(), 3);
    }

    #[test]
    fn shared_lru_cross_core_recency() {
        // K=3, tau=0. t=1: core0 faults on 1, core1 faults on 3. t=2:
        // core0 faults on 2, core1 hits 3 (refreshing it globally). t=3:
        // core0 requests 4 with the cache full {1,2,3}; the globally least
        // recently used page is 1, so it is evicted and core0's request of
        // 1 at t=4 faults again.
        let w = wl(&[&[1, 2, 4, 1], &[3, 3, 3, 3]]);
        let r = simulate(&w, SimConfig::new(3, 0), Shared::new(Lru::new())).unwrap();
        assert_eq!(r.faults[0], 4);
        assert_eq!(r.faults[1], 1);
    }

    #[test]
    fn fitf_matches_belady_on_single_core() {
        let w = wl(&[&[1, 2, 3, 1, 2, 1, 3, 2, 1]]);
        let fitf = simulate(&w, SimConfig::new(2, 0), SharedFitf::new()).unwrap();
        // Belady on 1 2 3 1 2 1 3 2 1 with K=2:
        // fault 1, fault 2, fault 3 (evict 2? next use of 1 is pos 3, of 2
        // is pos 4 -> evict 2), fault... simulate by hand is error-prone;
        // instead assert it does not exceed LRU and at least universe size.
        let lru = simulate(&w, SimConfig::new(2, 0), Shared::new(Lru::new())).unwrap();
        assert!(fitf.total_faults() >= 3);
        assert!(fitf.total_faults() <= lru.total_faults());
    }

    #[test]
    fn fitf_prefers_never_used_again() {
        // K=2: 1 2 1 2, then 3 once, then 1 2 1 2 again. On the fault for
        // 3, both 1 and 2 recur, 3 never does. FITF evicts whichever of
        // 1/2 is furthest; after 3 is brought in, 3 is the best victim.
        let w = wl(&[&[1, 2, 3, 1, 2]]);
        let r = simulate(&w, SimConfig::new(2, 0), SharedFitf::new()).unwrap();
        // Belady: faults 1,2,3 and then one of {1,2} faults once: total 4.
        assert_eq!(r.total_faults(), 4);
    }
}
