//! # mcp-policies — eviction policies and cache-management strategies
//!
//! The paper classifies natural multicore cache strategies as *shared*
//! (`S_A`), *static partition* (`sP^B_A`) and *dynamic partition*
//! (`dP^D_A`), each parameterized by an eviction policy `A`. This crate
//! provides:
//!
//! * the [`EvictionPolicy`] trait and classic policies — [`Lru`], [`Fifo`],
//!   [`Clock`], [`Lfu`], [`Mru`], [`Fwf`], [`LruK`], [`RandomEvict`],
//!   [`Marking`], and the offline per-sequence [`Belady`];
//! * the strategy wrappers [`Shared`], [`StaticPartition`] and
//!   [`StagedPartition`], plus [`SharedFitf`] (the multicore FITF
//!   heuristic) and [`LruMimicPartition`] (Lemma 3's dynamic partition
//!   that exactly simulates `S_LRU`);
//! * the proof-scripted offline strategy [`SacrificeOffline`] (Lemma 4's
//!   `S_OFF`) and the [`Replay`] harness that executes precomputed
//!   schedules (used to validate the offline DPs).

#![warn(missing_docs)]

pub mod dynamic_partition;
pub mod eviction;
pub mod families;
pub mod partition;
pub mod policies;
pub mod scripted;
pub mod shared;
pub mod static_partition;

pub use dynamic_partition::{LruMimicPartition, StagedPartition};
pub use eviction::EvictionPolicy;
pub use families::{build_family, family_applicable, FAMILIES};
pub use partition::{Partition, PartitionError};
pub use policies::{
    Belady, Clock, Fifo, Fwf, Lfu, Lru, LruK, Marking, MarkingTie, Mru, RandomEvict,
};
pub use scripted::{Replay, ReplayDecision, SacrificeOffline};
pub use shared::{Shared, SharedFitf};
pub use static_partition::{PolicyFactory, StaticPartition};

use mcp_core::Workload;

/// Convenience: a `StaticPartition` running per-part Belady built from each
/// core's own sequence — the `sP^B_OPT` comparator of Lemma 1 (exactly
/// optimal per part on disjoint workloads, where a part's faults depend
/// only on its own subsequence).
pub fn static_partition_belady(partition: Partition) -> StaticPartition<Belady> {
    StaticPartition::with_factory(
        partition,
        Box::new(|core, w: &Workload, _| Belady::for_sequence(w.sequence(core))),
    )
}

/// Convenience: `sP^B_LRU`.
pub fn static_partition_lru(partition: Partition) -> StaticPartition<Lru> {
    StaticPartition::uniform(partition, Lru::new)
}

/// Convenience: `S_LRU`.
pub fn shared_lru() -> Shared<Lru> {
    Shared::new(Lru::new())
}

/// Convenience: `S_FIFO`.
pub fn shared_fifo() -> Shared<Fifo> {
    Shared::new(Fifo::new())
}
