//! The [`EvictionPolicy`] trait: a victim-selection rule over a managed set
//! of pages.
//!
//! An eviction policy is the per-part (or whole-cache) rule `A` in the
//! paper's strategy notation `S_A`, `sP^B_A`, `dP^D_A`. It is driven with
//! *stamps* — a strictly increasing event counter supplied by the strategy
//! wrapper in service order — so policies never read wall-clock simulation
//! time and remain deterministic under simultaneous requests.
//!
//! `choose_victim` receives an explicit candidate slice because the
//! strategy may only permit evictions from a subset of the managed pages
//! (e.g. the resident pages of one part, excluding in-flight fetches).

use mcp_core::PageId;

/// A victim-selection rule over a dynamically managed set of pages.
pub trait EvictionPolicy {
    /// Short name, e.g. `"LRU"`.
    fn name(&self) -> String;

    /// `page` entered the managed set (its fetch started), as event `stamp`.
    fn on_insert(&mut self, page: PageId, stamp: u64);

    /// `page` (already managed) was accessed, as event `stamp`.
    fn on_access(&mut self, page: PageId, stamp: u64);

    /// `page` left the managed set.
    fn on_remove(&mut self, page: PageId);

    /// Choose a victim among `candidates` (nonempty; each is managed).
    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId;
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_insert(&mut self, page: PageId, stamp: u64) {
        (**self).on_insert(page, stamp)
    }
    fn on_access(&mut self, page: PageId, stamp: u64) {
        (**self).on_access(page, stamp)
    }
    fn on_remove(&mut self, page: PageId) {
        (**self).on_remove(page)
    }
    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        (**self).choose_victim(candidates)
    }
}
