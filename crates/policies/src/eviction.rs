//! The [`EvictionPolicy`] trait: a victim-selection rule over a managed set
//! of pages.
//!
//! An eviction policy is the per-part (or whole-cache) rule `A` in the
//! paper's strategy notation `S_A`, `sP^B_A`, `dP^D_A`. It is driven with
//! *stamps* — a strictly increasing event counter supplied by the strategy
//! wrapper in service order — so policies never read wall-clock simulation
//! time and remain deterministic under simultaneous requests.
//!
//! `choose_victim` receives an explicit candidate slice because the
//! strategy may only permit evictions from a subset of the managed pages
//! (e.g. the resident pages of one part, excluding in-flight fetches).

use mcp_core::PageId;

/// A victim-selection rule over a dynamically managed set of pages.
pub trait EvictionPolicy {
    /// Short name, e.g. `"LRU"`.
    fn name(&self) -> String;

    /// `page` entered the managed set (its fetch started), as event `stamp`.
    fn on_insert(&mut self, page: PageId, stamp: u64);

    /// `page` (already managed) was accessed, as event `stamp`.
    fn on_access(&mut self, page: PageId, stamp: u64);

    /// `page` left the managed set.
    fn on_remove(&mut self, page: PageId);

    /// Choose a victim among `candidates` (nonempty; each is managed).
    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId;

    /// Choose a victim from a *streamed* candidate set: `candidates`
    /// yields every legal victim (nonempty; each is managed) and
    /// `eligible` answers membership for any managed page.
    ///
    /// Strategy wrappers on the fault hot path call this instead of
    /// [`EvictionPolicy::choose_victim`], so policies that maintain an
    /// intrusive ordered structure (LRU, FIFO, LFU, CLOCK) can walk it and
    /// probe `eligible`, selecting in O(log K)-or-better without anyone
    /// materialising a `Vec` of all candidates. The default collects the
    /// iterator and delegates, so the two entry points always agree.
    fn choose_victim_from(
        &mut self,
        candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        let _ = eligible;
        let collected: Vec<PageId> = candidates.collect();
        self.choose_victim(&collected)
    }
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_insert(&mut self, page: PageId, stamp: u64) {
        (**self).on_insert(page, stamp)
    }
    fn on_access(&mut self, page: PageId, stamp: u64) {
        (**self).on_access(page, stamp)
    }
    fn on_remove(&mut self, page: PageId) {
        (**self).on_remove(page)
    }
    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        (**self).choose_victim(candidates)
    }
    fn choose_victim_from(
        &mut self,
        candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        (**self).choose_victim_from(candidates, eligible)
    }
}
