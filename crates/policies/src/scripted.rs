//! Offline scripted strategies: the explicit constructions used inside the
//! paper's proofs, plus a deterministic replay harness for schedules
//! reconstructed by the offline dynamic programs.

use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};
use std::collections::{BTreeMap, HashMap};

/// The offline strategy from the proof of Lemma 4 (`S_OFF`).
///
/// One core is *sacrificed*: once the cache is full, every eviction takes a
/// page of the sacrificed core — on the sacrificed core's own faults, its
/// next-to-be-requested page ("SOFF evicts the next page to be requested in
/// R_p"), so it faults on every request while every other core retains its
/// full working set and never faults again. Once the other cores finish,
/// their dead pages are evicted instead and the sacrificed core's working
/// set is allowed to settle into the whole cache.
///
/// On the Lemma 4 workload (each core cycling `K/p + 1` disjoint pages)
/// this incurs `O(n/(p(τ+1)))` faults versus `S_LRU`'s `n`, exhibiting the
/// `Ω(p(τ+1))` competitive-ratio lower bound.
pub struct SacrificeOffline {
    victim_core: usize,
    /// occurrences[core][page] = ascending positions in that core's sequence.
    occurrences: Vec<HashMap<PageId, Vec<usize>>>,
    cursor: Vec<usize>,
    seq_len: Vec<usize>,
}

impl SacrificeOffline {
    /// Sacrifice `victim_core` (the proof uses the last core, `p − 1`).
    pub fn new(victim_core: usize) -> Self {
        SacrificeOffline {
            victim_core,
            occurrences: Vec::new(),
            cursor: Vec::new(),
            seq_len: Vec::new(),
        }
    }

    fn finished(&self, core: usize) -> bool {
        self.cursor[core] >= self.seq_len[core]
    }

    /// First use of `page` by `core` at or after its cursor.
    fn next_use(&self, core: usize, page: PageId) -> usize {
        match self.occurrences[core].get(&page) {
            None => usize::MAX,
            Some(positions) => {
                let i = positions.partition_point(|&pos| pos < self.cursor[core]);
                positions.get(i).copied().unwrap_or(usize::MAX)
            }
        }
    }
}

impl CacheStrategy for SacrificeOffline {
    fn name(&self) -> String {
        format!("S_OFF[sacrifice={}]", self.victim_core)
    }

    fn begin(&mut self, workload: &Workload, _cfg: &SimConfig) {
        assert!(
            self.victim_core < workload.num_cores(),
            "victim core out of range"
        );
        debug_assert!(
            workload.is_disjoint(),
            "SacrificeOffline assumes disjoint sequences"
        );
        self.occurrences = workload
            .sequences()
            .iter()
            .map(|seq| {
                let mut occ: HashMap<PageId, Vec<usize>> = HashMap::new();
                for (i, &p) in seq.iter().enumerate() {
                    occ.entry(p).or_default().push(i);
                }
                occ
            })
            .collect();
        self.cursor = vec![0; workload.num_cores()];
        self.seq_len = workload.sequences().iter().map(Vec::len).collect();
    }

    fn on_hit(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
    }

    fn choose_cell(&mut self, _core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        if let Some(cell) = cache.empty_cell() {
            return cell;
        }
        // 1. Dead pages of finished cores are free real estate.
        let dead = cache
            .evictable_cells()
            .find(|(_, _, owner)| owner.map(|o| self.finished(o)).unwrap_or(false));
        if let Some((cell, _, _)) = dead {
            return cell;
        }
        // 2. Evict the sacrificed core's next-to-be-requested page. While
        //    serving the sacrificed core's own fault its cursor still
        //    points at the (absent) faulting page, so `next_use` naturally
        //    looks past it.
        let sacrificial = cache
            .evictable_cells()
            .filter(|(_, _, owner)| *owner == Some(self.victim_core))
            .min_by_key(|(_, p, _)| self.next_use(self.victim_core, *p));
        if let Some((cell, _, _)) = sacrificial {
            return cell;
        }
        // 3. Fallback (does not arise on the Lemma 4 workload): globally
        //    furthest-in-the-future page of the faulting core's view.
        let (cell, _, _) = cache
            .evictable_cells()
            .max_by_key(|(_, p, owner)| owner.map(|o| self.next_use(o, *p)).unwrap_or(usize::MAX))
            .expect("full cache has a resident page");
        cell
    }

    fn on_fault(&mut self, core: usize, _page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        self.cursor[core] += 1;
    }

    fn on_shared_fetch_miss(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.cursor[core] += 1;
    }
}

/// One replayed placement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayDecision {
    /// Fetch into any empty cell.
    UseEmpty,
    /// Evict this (resident) page and fetch into its cell.
    Evict(PageId),
}

/// Deterministic replay of a precomputed schedule.
///
/// Placement decisions are keyed by `(core, request_index)`; voluntary
/// (dishonest) evictions by timestep. Used to validate schedules
/// reconstructed by the offline DPs against the simulator: replaying an
/// Algorithm-1 schedule must reproduce its fault count exactly.
///
/// Missing or inconsistent decisions panic — this is a verification
/// harness, and silent divergence would defeat its purpose.
pub struct Replay {
    decisions: HashMap<(usize, usize), ReplayDecision>,
    voluntary: BTreeMap<Time, Vec<PageId>>,
    pos: Vec<usize>,
}

impl Replay {
    /// Build from per-request placement decisions.
    pub fn new(decisions: HashMap<(usize, usize), ReplayDecision>) -> Self {
        Replay {
            decisions,
            voluntary: BTreeMap::new(),
            pos: Vec::new(),
        }
    }

    /// Add voluntary evictions: `page` is evicted at the start of `time`.
    pub fn with_voluntary(mut self, voluntary: BTreeMap<Time, Vec<PageId>>) -> Self {
        self.voluntary = voluntary;
        self
    }
}

impl CacheStrategy for Replay {
    fn name(&self) -> String {
        "Replay".into()
    }

    fn begin(&mut self, workload: &Workload, _cfg: &SimConfig) {
        self.pos = vec![0; workload.num_cores()];
    }

    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        // Consume every entry scheduled at or before `time`. The engine
        // steps at each scheduled time (see `next_voluntary_time`), so in
        // practice entries are consumed exactly on time; draining by `<=`
        // keeps the replay robust should a schedule start before t = 1.
        let rest = self.voluntary.split_off(&(time + 1));
        let due = std::mem::replace(&mut self.voluntary, rest);
        due.iter()
            .flat_map(|(at, pages)| pages.iter().map(move |p| (*at, p)))
            .map(|(at, p)| {
                cache
                    .cell_of(*p)
                    .unwrap_or_else(|| panic!("voluntary eviction of absent page {p} at t={at}"))
            })
            .collect()
    }

    fn next_voluntary_time(&self) -> Option<Time> {
        self.voluntary.keys().next().copied()
    }

    fn on_hit(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.pos[core] += 1;
    }

    fn choose_cell(&mut self, core: usize, page: PageId, time: Time, cache: &Cache) -> usize {
        let index = self.pos[core];
        match self.decisions.get(&(core, index)) {
            None => {
                panic!("no replay decision for core {core} request {index} (page {page}, t={time})")
            }
            Some(ReplayDecision::UseEmpty) => cache
                .empty_cell()
                .unwrap_or_else(|| panic!("replay expected an empty cell at t={time}")),
            Some(ReplayDecision::Evict(victim)) => cache
                .cell_of(*victim)
                .unwrap_or_else(|| panic!("replay victim {victim} absent at t={time}")),
        }
    }

    fn on_fault(&mut self, core: usize, _page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        self.pos[core] += 1;
    }

    fn on_shared_fetch_miss(&mut self, core: usize, _page: PageId, _time: Time, _cache: &Cache) {
        self.pos[core] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_core::simulate;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn replay_executes_explicit_schedule() {
        // K=2, one core: 1 2 3 2. Decisions: 1 -> empty, 2 -> empty,
        // 3 -> evict 1 (keeping 2 for the final hit).
        let w = wl(&[&[1, 2, 3, 2]]);
        let mut d = HashMap::new();
        d.insert((0, 0), ReplayDecision::UseEmpty);
        d.insert((0, 1), ReplayDecision::UseEmpty);
        d.insert((0, 2), ReplayDecision::Evict(PageId(1)));
        let r = simulate(&w, SimConfig::new(2, 0), Replay::new(d)).unwrap();
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.hits[0], 1);
    }

    #[test]
    #[should_panic(expected = "no replay decision")]
    fn replay_panics_on_missing_decision() {
        let w = wl(&[&[1]]);
        let _ = simulate(&w, SimConfig::new(1, 0), Replay::new(HashMap::new()));
    }

    #[test]
    fn replay_voluntary_evictions_force_faults() {
        // Evict page 1 at the start of t=2 (while page 2 is the request),
        // so the re-request of 1 at t=3 faults again.
        let w = wl(&[&[1, 2, 1]]);
        let mut d = HashMap::new();
        d.insert((0, 0), ReplayDecision::UseEmpty);
        d.insert((0, 1), ReplayDecision::UseEmpty);
        d.insert((0, 2), ReplayDecision::UseEmpty);
        let mut v = BTreeMap::new();
        v.insert(2u64, vec![PageId(1)]);
        let r = simulate(&w, SimConfig::new(2, 0), Replay::new(d).with_voluntary(v)).unwrap();
        assert_eq!(r.total_faults(), 3); // the forced eviction costs a refault
    }

    #[test]
    fn replay_voluntary_eviction_of_due_page_is_rejected() {
        // Page 1 is requested again at t=2; evicting it in that same step
        // violates R(x) ⊆ C' and must surface as EvictPinned.
        let w = wl(&[&[1, 1]]);
        let mut d = HashMap::new();
        d.insert((0, 0), ReplayDecision::UseEmpty);
        d.insert((0, 1), ReplayDecision::UseEmpty);
        let mut v = BTreeMap::new();
        v.insert(2u64, vec![PageId(1)]);
        let err = simulate(&w, SimConfig::new(2, 0), Replay::new(d).with_voluntary(v)).unwrap_err();
        assert_eq!(
            err,
            mcp_core::SimError::Cache(mcp_core::CacheError::EvictPinned { cell: 0 })
        );
    }

    #[test]
    fn sacrifice_offline_beats_lru_on_cyclic_workload() {
        use crate::policies::lru::Lru;
        use crate::shared::Shared;
        // p=2, K=4 (K >= p^2), each core cycles K/p+1 = 3 disjoint pages.
        let reps = 30;
        let c0: Vec<u32> = (0..reps).map(|i| i % 3).collect();
        let c1: Vec<u32> = (0..reps).map(|i| 10 + i % 3).collect();
        let w = wl(&[&c0, &c1]);
        let tau = 3;
        let lru = simulate(&w, SimConfig::new(4, tau), Shared::new(Lru::new())).unwrap();
        let off = simulate(&w, SimConfig::new(4, tau), SacrificeOffline::new(1)).unwrap();
        // LRU faults on every request; the offline strategy keeps core 0
        // fault-free after warmup and throttles core 1 to one fault per
        // tau+1 steps.
        assert_eq!(lru.total_faults(), 2 * reps as u64);
        assert!(
            off.total_faults() < lru.total_faults() / 2,
            "offline {} vs LRU {}",
            off.total_faults(),
            lru.total_faults()
        );
        assert_eq!(
            off.faults[0], 3,
            "non-sacrificed core faults only on cold misses"
        );
    }
}
