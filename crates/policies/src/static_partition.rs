//! Static-partition strategies `sP^B_A`: the cache is split once into `p`
//! fixed parts, each running its own instance of eviction policy `A`.

use crate::eviction::EvictionPolicy;
use crate::partition::Partition;
use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};
use std::collections::HashMap;

/// Builds a fresh per-part eviction policy for a core, given the workload
/// (so offline policies like per-part Belady can see their sequence).
pub type PolicyFactory<P> = Box<dyn Fn(usize, &Workload, &SimConfig) -> P + Send>;

/// `sP^B_A`: static partition `B` with per-part policy `A`.
///
/// Per-part policies are created in [`CacheStrategy::begin`] via the
/// factory, so offline per-part policies (Belady) receive their core's
/// sequence. Hits on a page are routed to the policy of the core that
/// *brought it in*, which for disjoint workloads is always the requesting
/// core.
pub struct StaticPartition<P> {
    partition: Partition,
    /// The partition as configured, before any capacity rescaling. Quota
    /// rescales always start from here so a capacity dip-and-recover
    /// restores the original quotas exactly instead of drifting through
    /// repeated roundings.
    base: Partition,
    factory: PolicyFactory<P>,
    policies: Vec<P>,
    /// Which core's part each cached page belongs to.
    page_part: HashMap<PageId, usize>,
    stamp: u64,
    label: String,
}

impl<P: EvictionPolicy> StaticPartition<P> {
    /// Build with an explicit per-core factory.
    pub fn with_factory(partition: Partition, factory: PolicyFactory<P>) -> Self {
        StaticPartition {
            base: partition.clone(),
            partition,
            factory,
            policies: Vec::new(),
            page_part: HashMap::new(),
            stamp: 0,
            label: String::new(),
        }
    }

    /// Build with one policy constructor used for every part (online
    /// policies that need no workload access).
    pub fn uniform(partition: Partition, make: impl Fn() -> P + Send + 'static) -> Self {
        Self::with_factory(partition, Box::new(move |_, _, _| make()))
    }

    /// The partition in force.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl<P: EvictionPolicy> CacheStrategy for StaticPartition<P> {
    fn name(&self) -> String {
        if self.label.is_empty() {
            format!("sP{}_?", self.partition)
        } else {
            self.label.clone()
        }
    }

    fn begin(&mut self, workload: &Workload, cfg: &SimConfig) {
        self.partition = self.base.clone();
        self.partition
            .validate(cfg.cache_size, workload.num_cores())
            .expect("static partition must match cache size and core count");
        self.policies = (0..workload.num_cores())
            .map(|j| (self.factory)(j, workload, cfg))
            .collect();
        self.label = format!("sP{}_{}", self.partition, self.policies[0].name());
        self.page_part.clear();
        self.stamp = 0;
    }

    fn on_hit(&mut self, core: usize, page: PageId, _time: Time, _cache: &Cache) {
        let stamp = self.next_stamp();
        // Route to the part that holds the page (== `core` when disjoint).
        let part = *self.page_part.get(&page).unwrap_or(&core);
        self.policies[part].on_access(page, stamp);
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        if cache.owned_count(core) < self.partition.size(core) {
            if let Some(cell) = cache.empty_cell() {
                return cell;
            }
            // Non-disjoint edge case: an earlier borrow (below) let some
            // part overfill, so the cache can be full while this core is
            // under quota. Fall through to evicting like a full part.
        }
        // Part is full: evict from our own part. Pinned pages (read in
        // parallel this step) are excluded; on disjoint workloads no other
        // core can pin our pages, so candidates are never empty here.
        let candidates: Vec<PageId> = cache.evictable_cells_of(core).map(|(_, p)| p).collect();
        if candidates.is_empty() {
            // Non-disjoint edge case: every own page is pinned by another
            // core's simultaneous read. Borrow any evictable cell — or an
            // empty one, when everything Present is pinned (the part can
            // be "full" by ownership while other parts are still empty).
            return cache
                .evictable_cells()
                .next()
                .map(|(cell, _, _)| cell)
                .or_else(|| cache.empty_cell())
                .expect("pin discipline guarantees a free or evictable cell");
        }
        let victim = self.policies[core].choose_victim(&candidates);
        cache.cell_of(victim).expect("victim is resident")
    }

    fn on_fault(&mut self, core: usize, page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.page_part.insert(page, core);
        self.policies[core].on_insert(page, stamp);
    }

    fn on_evict(&mut self, page: PageId, _cell: usize) {
        if let Some(part) = self.page_part.remove(&page) {
            self.policies[part].on_remove(page);
        }
    }

    fn on_capacity_change(&mut self, _time: Time, new_k: usize, _cache: &Cache) {
        // Rescale quotas from the *configured* partition so the same K
        // always yields the same quotas, however the schedule got there.
        self.partition = self.base.rescaled(new_k);
    }

    fn shrink_victims(&mut self, need: usize, _time: Time, cache: &Cache) -> Vec<usize> {
        // Shed each part's over-quota pages under that part's own policy;
        // parts within quota are untouched (the engine falls back to
        // lowest-index evictable cells only if pinned/in-flight pages
        // leave the quota sweep short).
        let mut cells = Vec::with_capacity(need);
        for core in 0..self.partition.num_parts() {
            if cells.len() == need {
                break;
            }
            let owned = cache.owned_count(core);
            let quota = self.partition.size(core);
            if owned <= quota {
                continue;
            }
            let mut excess = (owned - quota).min(need - cells.len());
            let mut candidates: Vec<PageId> =
                cache.evictable_cells_of(core).map(|(_, p)| p).collect();
            while excess > 0 && !candidates.is_empty() {
                let victim = self.policies[core].choose_victim(&candidates);
                candidates.retain(|&p| p != victim);
                cells.push(cache.cell_of(victim).expect("victim resident"));
                excess -= 1;
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::belady::Belady;
    use crate::policies::lru::Lru;
    use mcp_core::{simulate, Workload};

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    fn sp_lru(partition: Vec<usize>) -> StaticPartition<Lru> {
        StaticPartition::uniform(Partition::from_sizes(partition), Lru::new)
    }

    fn sp_belady(partition: Vec<usize>) -> StaticPartition<Belady> {
        StaticPartition::with_factory(
            Partition::from_sizes(partition),
            Box::new(|core, w, _| Belady::for_sequence(w.sequence(core))),
        )
    }

    #[test]
    fn parts_are_isolated() {
        // Core 1 thrashes its 1-cell part; core 0's 2-cell part must be
        // unaffected: its two pages stay resident after the cold misses.
        let w = wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]);
        let r = simulate(&w, SimConfig::new(3, 0), sp_lru(vec![2, 1])).unwrap();
        assert_eq!(r.faults[0], 2); // cold only
        assert_eq!(r.faults[1], 6); // every request thrashes
    }

    #[test]
    fn within_part_lru_order() {
        // K=3 split [3]: single core, classic LRU behaviour inside part.
        let w = wl(&[&[1, 2, 3, 4, 1]]);
        let r = simulate(&w, SimConfig::new(3, 0), sp_lru(vec![3])).unwrap();
        // 1,2,3 cold; 4 evicts 1; 1 faults again.
        assert_eq!(r.faults[0], 5);
    }

    #[test]
    fn per_part_belady_beats_lru_on_cycles() {
        let cycle: Vec<u32> = (0..30).map(|i| i % 3).collect();
        let w = wl(&[&cycle]);
        let lru = simulate(&w, SimConfig::new(2, 0), sp_lru(vec![2])).unwrap();
        let opt = simulate(&w, SimConfig::new(2, 0), sp_belady(vec![2])).unwrap();
        assert_eq!(lru.total_faults(), 30); // LRU thrashes a 3-cycle in 2 cells
        assert!(opt.total_faults() < lru.total_faults());
        // Belady faults every other request after warmup: 3 + (27-?)/2-ish.
        assert!(opt.total_faults() <= 16);
    }

    #[test]
    fn capacity_drop_rescales_quotas_and_sheds_per_part() {
        use mcp_core::{CapacitySchedule, PageId, Simulator};
        // K=4 split [2,2], τ=0; capacity halves at t=5 → quotas become
        // [1,1] and each part sheds its own LRU page. Both cores then
        // thrash their 1-cell parts.
        let w = wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]);
        let schedule: CapacitySchedule = "4,2@5".parse().unwrap();
        let (r, trace) =
            Simulator::with_capacity(&w, SimConfig::new(4, 0), schedule, sp_lru(vec![2, 2]))
                .unwrap()
                .run_with_trace()
                .unwrap();
        let drop_step = trace.iter().find(|s| s.time == 5).unwrap();
        let shed: Vec<PageId> = drop_step.voluntary.iter().map(|&(_, p)| p).collect();
        // The t=5 requests (1 and 7) are pinned before the shrink, so each
        // part sheds its only evictable page: 2 and 8.
        assert_eq!(shed, vec![PageId(2), PageId(8)]);
        // Cold faults t=1..2, hits t=3..5 (the drop step still hits its
        // pinned pages), then the shed pages re-fault at t=6.
        assert_eq!(r.faults, vec![3, 3]);
        assert_eq!(r.hits, vec![3, 3]);
    }

    #[test]
    fn rescale_restores_base_quotas_on_recovery() {
        use mcp_core::{CapacitySchedule, Simulator};
        // Drop 4→2 at t=4, recover 2→4 at t=8: after recovery the quotas
        // return to the configured [2,2], so both cores re-fill and finish
        // with hits, exactly as if the partition had never been touched.
        let w = wl(&[
            &[1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2],
            &[7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 7, 8],
        ]);
        let schedule: CapacitySchedule = "4,2@4,4@8".parse().unwrap();
        let r = Simulator::with_capacity(&w, SimConfig::new(4, 0), schedule, sp_lru(vec![2, 2]))
            .unwrap()
            .run()
            .unwrap();
        // t=1..2 cold, t=3 hit, t=4 drop (the pinned requests still hit),
        // t=5..7 thrash the 1-cell parts, t=8 recovery refills, t=9..12
        // all hit again — the restored [2,2] quotas hold both pages.
        assert_eq!(r.faults, vec![6, 6]);
        assert_eq!(r.hits, vec![6, 6]);
    }

    #[test]
    fn name_includes_partition_and_policy() {
        let w = wl(&[&[1], &[2]]);
        let mut s = sp_lru(vec![2, 2]);
        let cfg = SimConfig::new(4, 0);
        s.begin(&w, &cfg);
        assert_eq!(s.name(), "sP[2,2]_LRU");
    }

    #[test]
    #[should_panic(expected = "static partition must match")]
    fn begin_rejects_bad_partition() {
        let w = wl(&[&[1], &[2]]);
        let mut s = sp_lru(vec![3, 2]);
        s.begin(&w, &SimConfig::new(4, 0));
    }
}
