//! CLOCK (second-chance) eviction: a one-bit LRU approximation.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::HashMap;

/// Pages sit on a circular list; each carries a reference bit set on
/// access. The hand sweeps: a set bit is cleared (second chance), a clear
/// bit on a candidate means eviction.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    ring: Vec<PageId>,
    refbit: HashMap<PageId, bool>,
    hand: usize,
}

impl Clock {
    /// New, empty CLOCK state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hand sweep, parameterised over the candidate-membership test so
    /// the slice and streamed entry points behave identically. Returns
    /// `None` only in the (unreachable with a sequential driver) case that
    /// two sweeps find no clear-bit candidate.
    fn sweep(&mut self, is_candidate: &dyn Fn(PageId) -> bool) -> Option<PageId> {
        // Two full sweeps suffice: the first clears every set bit we pass,
        // so by the second every candidate we reach has a clear bit.
        for _ in 0..2 * self.ring.len().max(1) {
            let page = self.ring[self.hand];
            let bit = self.refbit.get_mut(&page).expect("ring page has a bit");
            if *bit {
                *bit = false;
                self.hand = (self.hand + 1) % self.ring.len();
            } else if is_candidate(page) {
                self.hand = (self.hand + 1) % self.ring.len();
                return Some(page);
            } else {
                self.hand = (self.hand + 1) % self.ring.len();
            }
        }
        None
    }
}

impl EvictionPolicy for Clock {
    fn name(&self) -> String {
        "CLOCK".into()
    }

    fn on_insert(&mut self, page: PageId, _stamp: u64) {
        self.ring.push(page);
        self.refbit.insert(page, true);
    }

    fn on_access(&mut self, page: PageId, _stamp: u64) {
        if let Some(bit) = self.refbit.get_mut(&page) {
            *bit = true;
        }
    }

    fn on_remove(&mut self, page: PageId) {
        if let Some(pos) = self.ring.iter().position(|&p| p == page) {
            self.ring.remove(pos);
            if self.hand > pos {
                self.hand -= 1;
            }
            if !self.ring.is_empty() {
                self.hand %= self.ring.len();
            } else {
                self.hand = 0;
            }
        }
        self.refbit.remove(&page);
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        debug_assert!(!candidates.is_empty());
        // All candidates keeping their bits would require accesses racing
        // the sweep — cannot happen with the sequential driver, but fall
        // back safely.
        self.sweep(&|p| candidates.contains(&p))
            .unwrap_or(candidates[0])
    }

    fn choose_victim_from(
        &mut self,
        candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        // The sweep probes `eligible` per ring entry — O(1) per step
        // instead of a scan of a collected candidate slice.
        match self.sweep(eligible) {
            Some(page) => page,
            None => candidates.next().expect("candidates nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn second_chance_protects_accessed_pages() {
        let mut c = Clock::new();
        c.on_insert(p(1), 1);
        c.on_insert(p(2), 2);
        c.on_insert(p(3), 3);
        // Clear insertion bits with one dummy sweep, then re-reference 1, 3.
        c.choose_victim(&[p(1), p(2), p(3)]); // evicts someone; reinsert it
        let all = [p(1), p(2), p(3)];
        // Rebuild a clean state for determinism.
        let mut c = Clock::new();
        for (i, pg) in all.iter().enumerate() {
            c.on_insert(*pg, i as u64);
        }
        c.on_access(p(1), 10);
        c.on_access(p(3), 11);
        // First sweep clears 1's bit, 2's bit, 3's bit, then second sweep
        // evicts the first clear candidate: p(1). CLOCK approximates, not
        // equals, LRU; the key property is that it terminates and returns
        // a candidate.
        let v = c.choose_victim(&all);
        assert!(all.contains(&v));
    }

    #[test]
    fn removal_keeps_ring_consistent() {
        let mut c = Clock::new();
        c.on_insert(p(1), 1);
        c.on_insert(p(2), 2);
        c.on_insert(p(3), 3);
        c.on_remove(p(2));
        let v = c.choose_victim(&[p(1), p(3)]);
        assert!(v == p(1) || v == p(3));
        c.on_remove(p(1));
        c.on_remove(p(3));
        assert!(c.ring.is_empty());
    }

    #[test]
    fn unreferenced_candidate_evicted_before_referenced() {
        let mut c = Clock::new();
        c.on_insert(p(1), 1);
        c.on_insert(p(2), 2);
        // Sweep once to clear both bits.
        let first = c.choose_victim(&[p(1), p(2)]);
        assert_eq!(first, p(1));
        // p(1) got evicted; reinsert and access p(2).
        c.on_remove(p(1));
        c.on_insert(p(1), 3);
        c.on_access(p(2), 4);
        // p(1) has a fresh bit, p(2) has a fresh bit; sweep clears both,
        // then evicts the first candidate past the hand.
        let v = c.choose_victim(&[p(1), p(2)]);
        assert!(v == p(1) || v == p(2));
    }
}
