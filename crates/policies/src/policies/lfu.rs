//! Least-Frequently-Used eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::{BTreeSet, HashMap};

/// Evicts the candidate with the fewest recorded uses; ties broken by the
/// older insertion.
///
/// An ordered `(count, insert stamp, page)` set backs the streamed entry
/// point: each access re-ranks one page in O(log K), and victim selection
/// walks from the frequency-minimal end instead of scanning candidates.
#[derive(Clone, Debug, Default)]
pub struct Lfu {
    uses: HashMap<PageId, (u64, u64)>, // (count, insert stamp)
    by_rank: BTreeSet<(u64, u64, PageId)>,
}

impl Lfu {
    /// New, empty LFU state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for Lfu {
    fn name(&self) -> String {
        "LFU".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        if let Some((count, old)) = self.uses.insert(page, (1, stamp)) {
            self.by_rank.remove(&(count, old, page));
        }
        self.by_rank.insert((1, stamp, page));
    }

    fn on_access(&mut self, page: PageId, _stamp: u64) {
        if let Some((count, inserted)) = self.uses.get_mut(&page) {
            self.by_rank.remove(&(*count, *inserted, page));
            *count += 1;
            self.by_rank.insert((*count, *inserted, page));
        }
    }

    fn on_remove(&mut self, page: PageId) {
        if let Some((count, stamp)) = self.uses.remove(&page) {
            self.by_rank.remove(&(count, stamp, page));
        }
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .min_by_key(|p| {
                self.uses
                    .get(p)
                    .copied()
                    .expect("candidate must be managed")
            })
            .expect("candidates nonempty")
    }

    fn choose_victim_from(
        &mut self,
        _candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        // `(count, insert stamp)` pairs are unique (stamps are), so the
        // first eligible entry in rank order matches `choose_victim`.
        self.by_rank
            .iter()
            .map(|&(_, _, page)| page)
            .find(|&page| eligible(page))
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        lfu.on_insert(p(1), 1);
        lfu.on_insert(p(2), 2);
        lfu.on_access(p(1), 3);
        lfu.on_access(p(1), 4);
        lfu.on_access(p(2), 5);
        assert_eq!(lfu.choose_victim(&[p(1), p(2)]), p(2));
    }

    #[test]
    fn ties_broken_by_age() {
        let mut lfu = Lfu::new();
        lfu.on_insert(p(1), 1);
        lfu.on_insert(p(2), 2);
        assert_eq!(lfu.choose_victim(&[p(1), p(2)]), p(1));
    }
}
