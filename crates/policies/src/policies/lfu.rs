//! Least-Frequently-Used eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::HashMap;

/// Evicts the candidate with the fewest recorded uses; ties broken by the
/// older insertion.
#[derive(Clone, Debug, Default)]
pub struct Lfu {
    uses: HashMap<PageId, (u64, u64)>, // (count, insert stamp)
}

impl Lfu {
    /// New, empty LFU state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for Lfu {
    fn name(&self) -> String {
        "LFU".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        self.uses.insert(page, (1, stamp));
    }

    fn on_access(&mut self, page: PageId, _stamp: u64) {
        if let Some((count, _)) = self.uses.get_mut(&page) {
            *count += 1;
        }
    }

    fn on_remove(&mut self, page: PageId) {
        self.uses.remove(&page);
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .min_by_key(|p| {
                self.uses
                    .get(p)
                    .copied()
                    .expect("candidate must be managed")
            })
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        lfu.on_insert(p(1), 1);
        lfu.on_insert(p(2), 2);
        lfu.on_access(p(1), 3);
        lfu.on_access(p(1), 4);
        lfu.on_access(p(2), 5);
        assert_eq!(lfu.choose_victim(&[p(1), p(2)]), p(2));
    }

    #[test]
    fn ties_broken_by_age() {
        let mut lfu = Lfu::new();
        lfu.on_insert(p(1), 1);
        lfu.on_insert(p(2), 2);
        assert_eq!(lfu.choose_victim(&[p(1), p(2)]), p(1));
    }
}
