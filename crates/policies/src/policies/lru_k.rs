//! LRU-K eviction (O'Neil et al.): evict the page whose K-th most recent
//! reference is oldest, falling back to classic LRU among pages with
//! fewer than K references. Captures reuse *frequency* as well as
//! recency; `K = 2` is the classic scan-resistant configuration.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::{HashMap, VecDeque};

/// LRU-K with per-page reference history.
#[derive(Clone, Debug)]
pub struct LruK {
    k: usize,
    history: HashMap<PageId, VecDeque<u64>>,
}

impl LruK {
    /// Build with history depth `k ≥ 1` (`k = 1` is classic LRU).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "history depth must be at least 1");
        LruK {
            k,
            history: HashMap::new(),
        }
    }

    fn record(&mut self, page: PageId, stamp: u64) {
        let h = self.history.entry(page).or_default();
        h.push_back(stamp);
        while h.len() > self.k {
            h.pop_front();
        }
    }

    /// The page's K-th most recent reference stamp, or `None` if it has
    /// fewer than K references.
    fn kth_recent(&self, page: PageId) -> Option<u64> {
        let h = self.history.get(&page)?;
        if h.len() < self.k {
            None
        } else {
            h.front().copied()
        }
    }

    fn last(&self, page: PageId) -> u64 {
        self.history
            .get(&page)
            .and_then(|h| h.back().copied())
            .unwrap_or(0)
    }
}

impl EvictionPolicy for LruK {
    fn name(&self) -> String {
        format!("LRU-{}", self.k)
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        self.record(page, stamp);
    }

    fn on_access(&mut self, page: PageId, stamp: u64) {
        self.record(page, stamp);
    }

    fn on_remove(&mut self, _page: PageId) {
        // Reference history is *retained* across evictions (the classic
        // LRU-K "retained information period"): a hot page that returns
        // keeps its frequency signal.
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        // Pages lacking K references (infinite backward K-distance) are
        // evicted first, oldest last-reference first; otherwise the page
        // with the oldest K-th reference goes.
        let mut infinite: Option<(u64, PageId)> = None;
        let mut finite: Option<(u64, PageId)> = None;
        for &p in candidates {
            match self.kth_recent(p) {
                None => {
                    let key = (self.last(p), p);
                    if infinite
                        .map(|(l, q)| (key.0, key.1) < (l, q))
                        .unwrap_or(true)
                    {
                        infinite = Some(key);
                    }
                }
                Some(kth) => {
                    let key = (kth, p);
                    if finite.map(|(l, q)| (key.0, key.1) < (l, q)).unwrap_or(true) {
                        finite = Some(key);
                    }
                }
            }
        }
        infinite.or(finite).expect("candidates nonempty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn k1_behaves_like_lru() {
        use crate::policies::lru::Lru;
        let mut lruk = LruK::new(1);
        let mut lru = Lru::new();
        let events: [(u32, u64); 6] = [(1, 1), (2, 2), (3, 3), (1, 4), (2, 5), (3, 6)];
        for (pg, stamp) in events {
            lruk.on_access(p(pg), stamp);
            lruk.on_insert(p(pg), stamp); // insert resets history; emulate via access below
            lru.on_insert(p(pg), stamp);
        }
        // Rebuild cleanly: insert once, then access.
        let mut lruk = LruK::new(1);
        let mut lru = Lru::new();
        for (i, pg) in [1u32, 2, 3].iter().enumerate() {
            lruk.on_insert(p(*pg), i as u64);
            lru.on_insert(p(*pg), i as u64);
        }
        lruk.on_access(p(1), 10);
        lru.on_access(p(1), 10);
        let cands = [p(1), p(2), p(3)];
        assert_eq!(lruk.choose_victim(&cands), lru.choose_victim(&cands));
    }

    #[test]
    fn prefers_single_use_pages_over_frequent_ones() {
        let mut l = LruK::new(2);
        l.on_insert(p(1), 1);
        l.on_access(p(1), 5); // two references: finite distance
        l.on_insert(p(2), 6); // one reference: infinite distance
                              // Even though p(2) is more recent, it lacks a second reference.
        assert_eq!(l.choose_victim(&[p(1), p(2)]), p(2));
    }

    #[test]
    fn among_frequent_pages_oldest_kth_reference_loses() {
        let mut l = LruK::new(2);
        l.on_insert(p(1), 1);
        l.on_access(p(1), 2); // kth (2nd) recent = 1
        l.on_insert(p(2), 3);
        l.on_access(p(2), 4); // kth recent = 3
        assert_eq!(l.choose_victim(&[p(1), p(2)]), p(1));
    }

    #[test]
    fn scan_resistance_end_to_end() {
        use crate::shared::Shared;
        use mcp_core::{simulate, SimConfig, Workload};
        // One hot pair plus a scan burst of two fresh pages per round,
        // K = 3: under LRU the burst pushes a hot page out every round;
        // LRU-2 evicts the single-reference scan pages first and keeps
        // the hot pair resident.
        let mut seq: Vec<u32> = Vec::new();
        for i in 0..40u32 {
            seq.push(1);
            seq.push(2);
            seq.push(100 + 2 * i); // scan pages, never reused
            seq.push(101 + 2 * i);
        }
        let w = Workload::from_u32([seq]).unwrap();
        let cfg = SimConfig::new(3, 0);
        let lru2 = simulate(&w, cfg, Shared::new(LruK::new(2)))
            .unwrap()
            .total_faults();
        let lru = simulate(&w, cfg, Shared::new(crate::policies::lru::Lru::new()))
            .unwrap()
            .total_faults();
        assert!(
            lru2 < lru,
            "LRU-2 ({lru2}) must beat LRU ({lru}) on scan pollution"
        );
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn zero_depth_rejected() {
        LruK::new(0);
    }
}
