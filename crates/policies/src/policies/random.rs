//! Uniform random eviction (seeded, reproducible).

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evicts a uniformly random candidate.
#[derive(Clone, Debug)]
pub struct RandomEvict {
    rng: StdRng,
}

impl RandomEvict {
    /// Seeded constructor for reproducible runs.
    pub fn new(seed: u64) -> Self {
        RandomEvict {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl EvictionPolicy for RandomEvict {
    fn name(&self) -> String {
        "RAND".into()
    }

    fn on_insert(&mut self, _page: PageId, _stamp: u64) {}

    fn on_access(&mut self, _page: PageId, _stamp: u64) {}

    fn on_remove(&mut self, _page: PageId) {}

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn is_deterministic_per_seed() {
        let pick = |seed| {
            let mut r = RandomEvict::new(seed);
            (0..20)
                .map(|_| r.choose_victim(&[p(1), p(2), p(3)]))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(7), pick(7));
    }

    #[test]
    fn eventually_picks_every_candidate() {
        let mut r = RandomEvict::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(r.choose_victim(&[p(1), p(2), p(3)]));
        }
        assert_eq!(seen.len(), 3);
    }
}
