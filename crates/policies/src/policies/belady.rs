//! Per-sequence Belady (Furthest-In-The-Future) eviction — the *offline*
//! policy that is optimal for sequential paging (p = 1) and optimal per
//! part under a fixed static partition on disjoint workloads (where a
//! part's fault count depends only on its own subsequence, delays
//! notwithstanding).

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::HashMap;

/// Furthest-in-the-future eviction over one core's request sequence.
///
/// The policy tracks how many of the core's requests it has witnessed
/// (every `on_insert`/`on_access` corresponds to one served request of the
/// owning core, in order) and resolves next-use positions against the full
/// sequence supplied at construction.
///
/// Only meaningful when the policy observes exactly the owning core's
/// requests in order — i.e. per-part use on disjoint workloads, or p = 1.
#[derive(Clone, Debug)]
pub struct Belady {
    /// occurrences[page] = ascending positions of `page` in the sequence.
    occurrences: HashMap<PageId, Vec<usize>>,
    /// Number of requests of the owning core served so far.
    cursor: usize,
}

impl Belady {
    /// Build from the owning core's full request sequence.
    pub fn for_sequence(seq: &[PageId]) -> Self {
        let mut occurrences: HashMap<PageId, Vec<usize>> = HashMap::new();
        for (i, &page) in seq.iter().enumerate() {
            occurrences.entry(page).or_default().push(i);
        }
        Belady {
            occurrences,
            cursor: 0,
        }
    }

    /// Position of the first use of `page` at or after the next unserved
    /// request; `usize::MAX` if never used again.
    pub fn next_use(&self, page: PageId) -> usize {
        match self.occurrences.get(&page) {
            None => usize::MAX,
            Some(positions) => {
                let i = positions.partition_point(|&pos| pos < self.cursor);
                positions.get(i).copied().unwrap_or(usize::MAX)
            }
        }
    }

    /// Requests of the owning core served so far.
    pub fn served(&self) -> usize {
        self.cursor
    }
}

impl EvictionPolicy for Belady {
    fn name(&self) -> String {
        "OPT".into()
    }

    fn on_insert(&mut self, _page: PageId, _stamp: u64) {
        self.cursor += 1;
    }

    fn on_access(&mut self, _page: PageId, _stamp: u64) {
        self.cursor += 1;
    }

    fn on_remove(&mut self, _page: PageId) {}

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        // Called while serving request `cursor` (a fault): a candidate's
        // next use is its first occurrence strictly after `cursor`; the
        // faulting page itself is never a candidate, so `> cursor` and
        // `>= cursor` coincide — we use the current cursor as the bound.
        *candidates
            .iter()
            .max_by_key(|p| (self.next_use(**p), p.0))
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    fn seq(vs: &[u32]) -> Vec<PageId> {
        vs.iter().copied().map(PageId).collect()
    }

    #[test]
    fn evicts_furthest_in_future() {
        // Sequence: 1 2 3 1 2. After serving 1, 2 (inserts), serving 3
        // must evict: next use of 1 is pos 3, of 2 is pos 4 -> evict 2.
        let s = seq(&[1, 2, 3, 1, 2]);
        let mut b = Belady::for_sequence(&s);
        b.on_insert(p(1), 1);
        b.on_insert(p(2), 2);
        // Now serving position 2 (page 3), a fault:
        assert_eq!(b.choose_victim(&[p(1), p(2)]), p(2));
    }

    #[test]
    fn never_used_again_is_perfect_victim() {
        let s = seq(&[1, 2, 3, 1]);
        let mut b = Belady::for_sequence(&s);
        b.on_insert(p(1), 1);
        b.on_insert(p(2), 2);
        // Serving position 2 (page 3): page 2 never recurs.
        assert_eq!(b.choose_victim(&[p(1), p(2)]), p(2));
    }

    #[test]
    fn next_use_tracks_cursor() {
        let s = seq(&[1, 2, 1, 2]);
        let mut b = Belady::for_sequence(&s);
        assert_eq!(b.next_use(p(1)), 0);
        b.on_insert(p(1), 1);
        assert_eq!(b.next_use(p(1)), 2);
        b.on_insert(p(2), 2);
        b.on_access(p(1), 3);
        assert_eq!(b.next_use(p(1)), usize::MAX);
        assert_eq!(b.next_use(p(2)), 3);
        assert_eq!(b.served(), 3);
    }
}
