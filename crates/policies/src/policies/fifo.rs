//! First-In-First-Out eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::{BTreeSet, HashMap};

/// Evicts the candidate that entered the managed set earliest.
///
/// FIFO is conservative (though not marking), so Lemma 1's static-partition
/// upper bound applies to it as well.
///
/// An ordered `(insert stamp, page)` set backs the streamed entry point:
/// the queue-front eligible page is found in O(log K) plus a short walk,
/// with no per-fault candidate collection.
#[derive(Clone, Debug, Default)]
pub struct Fifo {
    inserted: HashMap<PageId, u64>,
    by_stamp: BTreeSet<(u64, PageId)>,
}

impl Fifo {
    /// New, empty FIFO state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for Fifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        if let Some(old) = self.inserted.insert(page, stamp) {
            self.by_stamp.remove(&(old, page));
        }
        self.by_stamp.insert((stamp, page));
    }

    fn on_access(&mut self, _page: PageId, _stamp: u64) {
        // FIFO ignores accesses.
    }

    fn on_remove(&mut self, page: PageId) {
        if let Some(old) = self.inserted.remove(&page) {
            self.by_stamp.remove(&(old, page));
        }
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .min_by_key(|p| {
                self.inserted
                    .get(p)
                    .copied()
                    .expect("candidate must be managed")
            })
            .expect("candidates nonempty")
    }

    fn choose_victim_from(
        &mut self,
        _candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        // Insert stamps are unique: the first eligible entry in stamp
        // order is the minimum `choose_victim` would report.
        self.by_stamp
            .iter()
            .map(|&(_, page)| page)
            .find(|&page| eligible(page))
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_oldest_insertion_ignoring_accesses() {
        let mut fifo = Fifo::new();
        fifo.on_insert(p(1), 1);
        fifo.on_insert(p(2), 2);
        fifo.on_access(p(1), 3); // must not refresh
        assert_eq!(fifo.choose_victim(&[p(1), p(2)]), p(1));
    }

    #[test]
    fn reinsertion_refreshes() {
        let mut fifo = Fifo::new();
        fifo.on_insert(p(1), 1);
        fifo.on_insert(p(2), 2);
        fifo.on_remove(p(1));
        fifo.on_insert(p(1), 3);
        assert_eq!(fifo.choose_victim(&[p(1), p(2)]), p(2));
    }
}
