//! Flush-When-Full: the simplest marking algorithm. When an eviction is
//! needed and every managed page has been touched since the last flush,
//! the whole (evictable) content is considered flushed.
//!
//! In the multicore engine a true bulk flush cannot happen mid-timestep
//! (evictions occur one per fault), so FWF is realized as: evict any
//! untouched-since-flush page; when none remains, declare a new epoch
//! (everything becomes untouched) and continue. This preserves FWF's
//! phase structure — and hence its `max_j k_j` Lemma 1 bound per part —
//! without needing bulk eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::HashMap;

/// Flush-When-Full, epoch-based.
#[derive(Clone, Debug, Default)]
pub struct Fwf {
    touched: HashMap<PageId, bool>,
    /// Completed epochs (flushes), observable for phase tests.
    pub flushes: u64,
}

impl Fwf {
    /// New, empty FWF state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for Fwf {
    fn name(&self) -> String {
        "FWF".into()
    }

    fn on_insert(&mut self, page: PageId, _stamp: u64) {
        self.touched.insert(page, true);
    }

    fn on_access(&mut self, page: PageId, _stamp: u64) {
        self.touched.insert(page, true);
    }

    fn on_remove(&mut self, page: PageId) {
        self.touched.remove(&page);
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        if let Some(&victim) = candidates
            .iter()
            .find(|p| !self.touched.get(p).copied().unwrap_or(false))
        {
            return victim;
        }
        // Everything touched: flush (new epoch).
        self.flushes += 1;
        for bit in self.touched.values_mut() {
            *bit = false;
        }
        candidates[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn flushes_when_everything_touched() {
        let mut fwf = Fwf::new();
        fwf.on_insert(p(1), 1);
        fwf.on_insert(p(2), 2);
        assert_eq!(fwf.flushes, 0);
        let v = fwf.choose_victim(&[p(1), p(2)]);
        assert_eq!(fwf.flushes, 1);
        assert!(v == p(1) || v == p(2));
    }

    #[test]
    fn untouched_pages_evicted_first() {
        let mut fwf = Fwf::new();
        fwf.on_insert(p(1), 1);
        fwf.on_insert(p(2), 2);
        fwf.choose_victim(&[p(1), p(2)]); // flush: both untouched now
        fwf.on_access(p(2), 3);
        assert_eq!(fwf.choose_victim(&[p(1), p(2)]), p(1));
        assert_eq!(fwf.flushes, 1);
    }

    #[test]
    fn phase_count_matches_distinct_page_pressure() {
        use crate::shared::Shared;
        use mcp_core::{simulate, SimConfig, Workload};
        // Cycling K+1 = 3 pages through K = 2 cells: each full cycle of 3
        // distinct pages wraps one phase.
        let seq: Vec<u32> = (0..30).map(|i| i % 3).collect();
        let w = Workload::from_u32([seq]).unwrap();
        let r = simulate(&w, SimConfig::new(2, 0), Shared::new(Fwf::new())).unwrap();
        // FWF faults a lot but stays within the request count.
        assert!(r.total_faults() >= 15 && r.total_faults() <= 30);
    }
}
