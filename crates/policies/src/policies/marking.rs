//! Marking eviction: the phase-based family whose members are `K`-competitive
//! in sequential paging and, per Lemma 1, `max_j k_j`-competitive per part
//! under a fixed static partition.
//!
//! A page is marked when requested. When a fault finds every candidate
//! marked, the phase ends: all marks are cleared. Victims are drawn from
//! unmarked candidates, with a pluggable tie-break.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Rule used to pick among unmarked candidates.
#[derive(Clone, Debug)]
pub enum MarkingTie {
    /// Least recently used unmarked page (a deterministic marking
    /// algorithm equivalent in spirit to LRU).
    Lru,
    /// Uniformly random unmarked page (the classic randomized MARK).
    Random(u64),
}

/// Phase-based marking policy.
#[derive(Clone, Debug)]
pub struct Marking {
    marked: HashMap<PageId, bool>,
    last_use: HashMap<PageId, u64>,
    rng: Option<StdRng>,
    tie_name: &'static str,
    /// Completed phases, observable for phase-counting tests.
    pub phases: u64,
}

impl Marking {
    /// Build a marking policy with the given tie-break.
    pub fn new(tie: MarkingTie) -> Self {
        let (rng, tie_name) = match tie {
            MarkingTie::Lru => (None, "LRU"),
            MarkingTie::Random(seed) => (Some(StdRng::seed_from_u64(seed)), "RAND"),
        };
        Marking {
            marked: HashMap::new(),
            last_use: HashMap::new(),
            rng,
            tie_name,
            phases: 0,
        }
    }

    /// Whether `page` is currently marked.
    pub fn is_marked(&self, page: PageId) -> bool {
        self.marked.get(&page).copied().unwrap_or(false)
    }
}

impl EvictionPolicy for Marking {
    fn name(&self) -> String {
        format!("MARK({})", self.tie_name)
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        self.marked.insert(page, true);
        self.last_use.insert(page, stamp);
    }

    fn on_access(&mut self, page: PageId, stamp: u64) {
        self.marked.insert(page, true);
        self.last_use.insert(page, stamp);
    }

    fn on_remove(&mut self, page: PageId) {
        self.marked.remove(&page);
        self.last_use.remove(&page);
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        let mut unmarked: Vec<PageId> = candidates
            .iter()
            .copied()
            .filter(|p| !self.is_marked(*p))
            .collect();
        if unmarked.is_empty() {
            // Phase ends: clear every mark in the managed set.
            self.phases += 1;
            for bit in self.marked.values_mut() {
                *bit = false;
            }
            unmarked = candidates.to_vec();
        }
        match &mut self.rng {
            Some(rng) => unmarked[rng.gen_range(0..unmarked.len())],
            None => *unmarked
                .iter()
                .min_by_key(|p| self.last_use.get(p).copied().unwrap_or(0))
                .expect("unmarked nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn never_evicts_marked_while_unmarked_exists() {
        let mut m = Marking::new(MarkingTie::Lru);
        m.on_insert(p(1), 1);
        m.on_insert(p(2), 2);
        // New phase boundary clears marks; then re-mark only p(2).
        m.choose_victim(&[p(1), p(2)]); // triggers phase end internally
        m.on_access(p(2), 3);
        assert_eq!(m.choose_victim(&[p(1), p(2)]), p(1));
    }

    #[test]
    fn phase_counter_increments_when_all_marked() {
        let mut m = Marking::new(MarkingTie::Lru);
        m.on_insert(p(1), 1);
        m.on_insert(p(2), 2);
        assert_eq!(m.phases, 0);
        m.choose_victim(&[p(1), p(2)]);
        assert_eq!(m.phases, 1);
    }

    #[test]
    fn randomized_variant_is_seed_deterministic() {
        let run = |seed| {
            let mut m = Marking::new(MarkingTie::Random(seed));
            m.on_insert(p(1), 1);
            m.on_insert(p(2), 2);
            m.on_insert(p(3), 3);
            (0..10)
                .map(|_| m.choose_victim(&[p(1), p(2), p(3)]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn lru_tiebreak_prefers_older_unmarked() {
        let mut m = Marking::new(MarkingTie::Lru);
        m.on_insert(p(1), 1);
        m.on_insert(p(2), 2);
        m.on_insert(p(3), 3);
        m.choose_victim(&[p(1), p(2), p(3)]); // end phase, clear marks
        m.on_access(p(1), 4);
        // Unmarked: p(2) (stamp 2), p(3) (stamp 3) -> evict p(2).
        assert_eq!(m.choose_victim(&[p(1), p(2), p(3)]), p(2));
    }
}
