//! Concrete eviction policies.

pub mod belady;
pub mod clock;
pub mod fifo;
pub mod fwf;
pub mod lfu;
pub mod lru;
pub mod lru_k;
pub mod marking;
pub mod mru;
pub mod random;

pub use belady::Belady;
pub use clock::Clock;
pub use fifo::Fifo;
pub use fwf::Fwf;
pub use lfu::Lfu;
pub use lru::Lru;
pub use lru_k::LruK;
pub use marking::{Marking, MarkingTie};
pub use mru::Mru;
pub use random::RandomEvict;
