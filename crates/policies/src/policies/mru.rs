//! Most-Recently-Used eviction (a useful pathological baseline: optimal
//! for single-core cyclic scans, terrible for temporal locality).

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::HashMap;

/// Evicts the candidate whose last access is newest.
#[derive(Clone, Debug, Default)]
pub struct Mru {
    last_use: HashMap<PageId, u64>,
}

impl Mru {
    /// New, empty MRU state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for Mru {
    fn name(&self) -> String {
        "MRU".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        self.last_use.insert(page, stamp);
    }

    fn on_access(&mut self, page: PageId, stamp: u64) {
        self.last_use.insert(page, stamp);
    }

    fn on_remove(&mut self, page: PageId) {
        self.last_use.remove(&page);
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .max_by_key(|p| {
                self.last_use
                    .get(p)
                    .copied()
                    .expect("candidate must be managed")
            })
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_most_recent() {
        let mut mru = Mru::new();
        mru.on_insert(p(1), 1);
        mru.on_insert(p(2), 2);
        mru.on_access(p(1), 3);
        assert_eq!(mru.choose_victim(&[p(1), p(2)]), p(1));
    }
}
