//! Least-Recently-Used eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::PageId;
use std::collections::{BTreeSet, HashMap};

/// Evicts the candidate whose last access (or insertion) is oldest.
///
/// LRU is a *marking* and *conservative* algorithm, so Lemma 1's
/// `max_j k_j` upper bound applies to it under any fixed static partition.
///
/// Alongside the per-page stamp map, an ordered `(stamp, page)` set is
/// maintained so the streamed entry point finds the recency-minimal
/// eligible page in O(log K) plus a short walk over ineligible (pinned or
/// in-flight) prefix entries, instead of scanning all candidates.
#[derive(Clone, Debug, Default)]
pub struct Lru {
    last_use: HashMap<PageId, u64>,
    by_stamp: BTreeSet<(u64, PageId)>,
}

impl Lru {
    /// New, empty LRU state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stamp of `page`'s most recent use, if managed.
    pub fn last_use(&self, page: PageId) -> Option<u64> {
        self.last_use.get(&page).copied()
    }
}

impl EvictionPolicy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        if let Some(old) = self.last_use.insert(page, stamp) {
            self.by_stamp.remove(&(old, page));
        }
        self.by_stamp.insert((stamp, page));
    }

    fn on_access(&mut self, page: PageId, stamp: u64) {
        self.on_insert(page, stamp);
    }

    fn on_remove(&mut self, page: PageId) {
        if let Some(old) = self.last_use.remove(&page) {
            self.by_stamp.remove(&(old, page));
        }
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .min_by_key(|p| {
                self.last_use
                    .get(p)
                    .copied()
                    .expect("candidate must be managed")
            })
            .expect("candidates nonempty")
    }

    fn choose_victim_from(
        &mut self,
        _candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        // Stamps are unique, so the first eligible entry in stamp order is
        // exactly the minimum `choose_victim` would report.
        self.by_stamp
            .iter()
            .map(|&(_, page)| page)
            .find(|&page| eligible(page))
            .expect("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_insert(p(2), 2);
        lru.on_insert(p(3), 3);
        lru.on_access(p(1), 4);
        assert_eq!(lru.choose_victim(&[p(1), p(2), p(3)]), p(2));
    }

    #[test]
    fn respects_candidate_restriction() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_insert(p(2), 2);
        lru.on_insert(p(3), 3);
        // p(1) is globally oldest, but only p(2), p(3) are candidates.
        assert_eq!(lru.choose_victim(&[p(2), p(3)]), p(2));
    }

    #[test]
    fn removal_clears_state() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_remove(p(1));
        assert_eq!(lru.last_use(p(1)), None);
    }
}
