//! Least-Recently-Used eviction.

use crate::eviction::EvictionPolicy;
use mcp_core::{FxHashMap, PageId};

/// Sentinel node index for list ends.
const NIL: u32 = u32::MAX;

/// One page's slot in the intrusive recency list.
#[derive(Clone, Debug)]
struct Node {
    page: PageId,
    stamp: u64,
    /// Neighbor toward the most-recent end.
    newer: u32,
    /// Neighbor toward the least-recent end.
    older: u32,
}

/// Evicts the candidate whose last access (or insertion) is oldest.
///
/// LRU is a *marking* and *conservative* algorithm, so Lemma 1's
/// `max_j k_j` upper bound applies to it under any fixed static partition.
///
/// Recency is an intrusive doubly-linked list over a node slab: an access
/// unlinks the page's node and relinks it at the most-recent end — O(1),
/// allocation-free after warm-up — and the streamed entry point walks
/// from the least-recent end past ineligible (pinned or in-flight)
/// entries. Because stamps are strictly increasing in service order (the
/// [`EvictionPolicy`] contract), list order from that end *is* ascending
/// stamp order, so the walk finds exactly the recency-minimal eligible
/// page the stamp map would report.
#[derive(Clone, Debug)]
pub struct Lru {
    /// Managed page → its slab slot. Point lookups only (never iterated).
    index: FxHashMap<PageId, u32>,
    nodes: Vec<Node>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Most recently used node (`NIL` when empty).
    head: u32,
    /// Least recently used node (`NIL` when empty).
    tail: u32,
}

impl Default for Lru {
    fn default() -> Self {
        Lru {
            index: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl Lru {
    /// New, empty LRU state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stamp of `page`'s most recent use, if managed.
    pub fn last_use(&self, page: PageId) -> Option<u64> {
        self.index.get(&page).map(|&n| self.nodes[n as usize].stamp)
    }

    fn unlink(&mut self, n: u32) {
        let Node { newer, older, .. } = self.nodes[n as usize];
        match newer {
            NIL => self.head = older,
            _ => self.nodes[newer as usize].older = older,
        }
        match older {
            NIL => self.tail = newer,
            _ => self.nodes[older as usize].newer = newer,
        }
    }

    /// Link `n` as the most recently used node.
    fn link_front(&mut self, n: u32) {
        let old_head = self.head;
        {
            let node = &mut self.nodes[n as usize];
            node.newer = NIL;
            node.older = old_head;
        }
        match old_head {
            NIL => self.tail = n,
            _ => self.nodes[old_head as usize].newer = n,
        }
        self.head = n;
    }
}

impl EvictionPolicy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn on_insert(&mut self, page: PageId, stamp: u64) {
        if let Some(&n) = self.index.get(&page) {
            self.nodes[n as usize].stamp = stamp;
            self.unlink(n);
            self.link_front(n);
            return;
        }
        let n = match self.free.pop() {
            Some(n) => {
                self.nodes[n as usize] = Node {
                    page,
                    stamp,
                    newer: NIL,
                    older: NIL,
                };
                n
            }
            None => {
                self.nodes.push(Node {
                    page,
                    stamp,
                    newer: NIL,
                    older: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(page, n);
        self.link_front(n);
    }

    fn on_access(&mut self, page: PageId, stamp: u64) {
        self.on_insert(page, stamp);
    }

    fn on_remove(&mut self, page: PageId) {
        if let Some(n) = self.index.remove(&page) {
            self.unlink(n);
            self.free.push(n);
        }
    }

    fn choose_victim(&mut self, candidates: &[PageId]) -> PageId {
        *candidates
            .iter()
            .min_by_key(|p| self.last_use(**p).expect("candidate must be managed"))
            .expect("candidates nonempty")
    }

    fn choose_victim_from(
        &mut self,
        _candidates: &mut dyn Iterator<Item = PageId>,
        eligible: &dyn Fn(PageId) -> bool,
    ) -> PageId {
        // Stamps are unique and increasing, so the first eligible entry
        // from the least-recent end is exactly the minimum
        // `choose_victim` would report.
        let mut n = self.tail;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if eligible(node.page) {
                return node.page;
            }
            n = node.newer;
        }
        panic!("candidates nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> PageId {
        PageId(v)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_insert(p(2), 2);
        lru.on_insert(p(3), 3);
        lru.on_access(p(1), 4);
        assert_eq!(lru.choose_victim(&[p(1), p(2), p(3)]), p(2));
    }

    #[test]
    fn respects_candidate_restriction() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_insert(p(2), 2);
        lru.on_insert(p(3), 3);
        // p(1) is globally oldest, but only p(2), p(3) are candidates.
        assert_eq!(lru.choose_victim(&[p(2), p(3)]), p(2));
    }

    #[test]
    fn removal_clears_state() {
        let mut lru = Lru::new();
        lru.on_insert(p(1), 1);
        lru.on_remove(p(1));
        assert_eq!(lru.last_use(p(1)), None);
    }

    #[test]
    fn streamed_walk_agrees_with_slice_minimum() {
        // Interleave inserts, touches, and removals, then compare both
        // entry points over a restricted eligible set.
        let mut lru = Lru::new();
        let mut stamp = 0;
        for v in [5, 2, 9, 4, 7, 1] {
            stamp += 1;
            lru.on_insert(p(v), stamp);
        }
        for v in [9, 5, 4] {
            stamp += 1;
            lru.on_access(p(v), stamp);
        }
        lru.on_remove(p(2));
        let eligible = [p(5), p(9), p(7), p(1)];
        let from_slice = lru.choose_victim(&eligible);
        let from_walk =
            lru.choose_victim_from(&mut eligible.iter().copied(), &|q| eligible.contains(&q));
        assert_eq!(from_slice, from_walk);
        assert_eq!(from_slice, p(7)); // oldest untouched eligible page
    }

    #[test]
    fn slots_are_recycled() {
        let mut lru = Lru::new();
        for i in 0..100u32 {
            lru.on_insert(p(i), (i + 1) as u64);
            lru.on_remove(p(i));
        }
        assert!(lru.nodes.len() <= 2, "slab grew despite removals");
    }
}
