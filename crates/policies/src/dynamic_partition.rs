//! Dynamic-partition strategies `dP^D_A`: the part sizes `k(j, t)` may
//! change over time; shrinking a part evicts its excess pages under the
//! part's eviction policy (the model of Section 3).
//!
//! Two controllers from the paper are provided:
//!
//! * [`LruMimicPartition`] — Lemma 3's partition `D`, which re-assigns one
//!   cell on every fault (from the core owning the globally
//!   least-recently-used page to the faulting core) and is *exactly*
//!   equivalent to `S_LRU` on disjoint workloads;
//! * [`StagedPartition`] — a partition that changes only at prescribed
//!   times (the `o(n)`-stage strategies of Theorem 1.3).

use crate::eviction::EvictionPolicy;
use crate::partition::Partition;
use mcp_core::{Cache, CacheStrategy, PageId, SimConfig, Time, Workload};
use std::collections::HashMap;

/// Lemma 3's dynamic partition: start with an equal split; on each fault,
/// if the cache is full, shrink the part of the core owning the globally
/// least-recently-used page by one cell and grow the faulting core's part
/// into it, evicting that LRU page.
///
/// On disjoint workloads this serves every request exactly as `S_LRU`
/// does (Lemma 3) — the partition is pure bookkeeping. The experiment E07
/// and a property test assert bitwise-equal fault sequences.
#[derive(Clone, Debug, Default)]
pub struct LruMimicPartition {
    last_use: HashMap<PageId, u64>,
    stamp: u64,
    /// Number of times a cell moved between parts (partition changes).
    pub reassignments: u64,
}

impl LruMimicPartition {
    /// New mimic strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current part sizes (cells owned per core), read from the cache.
    pub fn part_sizes(cache: &Cache, cores: usize) -> Vec<usize> {
        (0..cores).map(|j| cache.owned_count(j)).collect()
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl CacheStrategy for LruMimicPartition {
    fn name(&self) -> String {
        "dP[LRU-mimic]_LRU".into()
    }

    fn on_hit(&mut self, _core: usize, page: PageId, _time: Time, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.last_use.insert(page, stamp);
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, _time: Time, cache: &Cache) -> usize {
        if let Some(cell) = cache.empty_cell() {
            return cell;
        }
        let (cell, _, owner) = cache
            .evictable_cells()
            .min_by_key(|(_, p, _)| {
                self.last_use
                    .get(p)
                    .copied()
                    .expect("resident page stamped")
            })
            .expect("full cache has a resident page");
        if owner != Some(core) {
            self.reassignments += 1;
        }
        cell
    }

    fn on_fault(&mut self, _core: usize, page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.last_use.insert(page, stamp);
    }

    fn on_evict(&mut self, page: PageId, _cell: usize) {
        self.last_use.remove(&page);
    }
}

/// A staged dynamic partition: the partition is a step function of time.
///
/// `stages` is a list of `(start_time, partition)` with strictly
/// increasing start times; the first stage must start at `t ≤ 1`. When a
/// stage boundary shrinks a part below its occupancy, excess pages are
/// evicted under the part's policy at the boundary (as the model
/// prescribes); in-flight fetches cannot be evicted, so enforcement
/// re-checks every timestep until occupancy matches.
pub struct StagedPartition<P> {
    stages: Vec<(Time, Partition)>,
    /// The stages as configured; capacity rescales always start from
    /// these, so a capacity dip-and-recover restores them exactly.
    base_stages: Vec<(Time, Partition)>,
    factory: crate::static_partition::PolicyFactory<P>,
    policies: Vec<P>,
    page_part: HashMap<PageId, usize>,
    stamp: u64,
    label: String,
}

impl<P: EvictionPolicy> StagedPartition<P> {
    /// Build with a uniform policy constructor.
    pub fn uniform(stages: Vec<(Time, Partition)>, make: impl Fn() -> P + Send + 'static) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert!(stages[0].0 <= 1, "first stage must cover t = 1");
        assert!(
            stages.windows(2).all(|w| w[0].0 < w[1].0),
            "stage start times must strictly increase"
        );
        StagedPartition {
            base_stages: stages.clone(),
            stages,
            factory: Box::new(move |_, _, _| make()),
            policies: Vec::new(),
            page_part: HashMap::new(),
            stamp: 0,
            label: String::new(),
        }
    }

    /// The partition in force at `time`.
    pub fn partition_at(&self, time: Time) -> &Partition {
        let idx = self.stages.partition_point(|(start, _)| *start <= time);
        &self.stages[idx.saturating_sub(1).min(self.stages.len() - 1)].1
    }

    /// Number of stages (Theorem 1.3 distinguishes `O(1)` vs `o(n)`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl<P: EvictionPolicy> CacheStrategy for StagedPartition<P> {
    fn name(&self) -> String {
        if self.label.is_empty() {
            format!("dP[{} stages]_?", self.stages.len())
        } else {
            self.label.clone()
        }
    }

    fn begin(&mut self, workload: &Workload, cfg: &SimConfig) {
        self.stages = self.base_stages.clone();
        for (_, partition) in &self.stages {
            partition
                .validate(cfg.cache_size, workload.num_cores())
                .expect("every stage partition must match cache size and core count");
        }
        self.policies = (0..workload.num_cores())
            .map(|j| (self.factory)(j, workload, cfg))
            .collect();
        self.label = format!(
            "dP[{} stages]_{}",
            self.stages.len(),
            self.policies[0].name()
        );
        self.page_part.clear();
        self.stamp = 0;
    }

    fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
        let target = self.partition_at(time).clone();
        let mut evictions = Vec::new();
        for core in 0..target.num_parts() {
            let owned = cache.owned_count(core);
            if owned <= target.size(core) {
                continue;
            }
            let mut excess = owned - target.size(core);
            let mut candidates: Vec<PageId> =
                cache.evictable_cells_of(core).map(|(_, p)| p).collect();
            while excess > 0 && !candidates.is_empty() {
                let victim = self.policies[core].choose_victim(&candidates);
                candidates.retain(|&p| p != victim);
                evictions.push(cache.cell_of(victim).expect("victim resident"));
                excess -= 1;
            }
            // Any remaining excess is held by in-flight fetches or pages
            // pinned by this step's requests; it will be collected on a
            // later timestep.
        }
        evictions
    }

    fn on_hit(&mut self, core: usize, page: PageId, _time: Time, _cache: &Cache) {
        let stamp = self.next_stamp();
        let part = *self.page_part.get(&page).unwrap_or(&core);
        self.policies[part].on_access(page, stamp);
    }

    fn choose_cell(&mut self, core: usize, _page: PageId, time: Time, cache: &Cache) -> usize {
        let target = self.partition_at(time);
        // Only fill an empty cell while below the current quota — taking
        // any empty cell unconditionally would let a part over-fill past
        // its stage's size, silently growing the partition.
        if cache.owned_count(core) < target.size(core) {
            if let Some(cell) = cache.empty_cell() {
                return cell;
            }
        }
        // Prefer reclaiming from a core that exceeds its current quota
        // (possible right after a shrink while its fetch was in flight).
        let over = (0..target.num_parts())
            .filter(|&j| j != core && cache.owned_count(j) > target.size(j))
            .max_by_key(|&j| cache.owned_count(j) - target.size(j));
        let part = over.unwrap_or(core);
        let mut candidates: Vec<PageId> = cache.evictable_cells_of(part).map(|(_, p)| p).collect();
        let part = if candidates.is_empty() && part != core {
            // The over-quota part is fully pinned or in flight: fall back
            // to the faulting core's own part.
            candidates = cache.evictable_cells_of(core).map(|(_, p)| p).collect();
            core
        } else {
            part
        };
        assert!(
            !candidates.is_empty(),
            "full part must have an evictable page"
        );
        let victim = self.policies[part].choose_victim(&candidates);
        cache.cell_of(victim).expect("victim resident")
    }

    fn on_fault(&mut self, core: usize, page: PageId, _time: Time, _cell: usize, _cache: &Cache) {
        let stamp = self.next_stamp();
        self.page_part.insert(page, core);
        self.policies[core].on_insert(page, stamp);
    }

    fn on_evict(&mut self, page: PageId, _cell: usize) {
        if let Some(part) = self.page_part.remove(&page) {
            self.policies[part].on_remove(page);
        }
    }

    fn on_capacity_change(&mut self, _time: Time, new_k: usize, _cache: &Cache) {
        // Every stage rescales from its configured sizes, so the schedule
        // of *proportions* is preserved under the new capacity and a later
        // recovery restores the configured stages exactly.
        self.stages = self
            .base_stages
            .iter()
            .map(|(start, partition)| (*start, partition.rescaled(new_k)))
            .collect();
    }

    fn shrink_victims(&mut self, need: usize, time: Time, cache: &Cache) -> Vec<usize> {
        // Same per-part sweep as the stage-boundary enforcement in
        // `voluntary_evictions`, but capped at `need`: shed each part's
        // over-quota pages under that part's own policy.
        let target = self.partition_at(time).clone();
        let mut cells = Vec::with_capacity(need);
        for core in 0..target.num_parts() {
            if cells.len() == need {
                break;
            }
            let owned = cache.owned_count(core);
            let quota = target.size(core);
            if owned <= quota {
                continue;
            }
            let mut excess = (owned - quota).min(need - cells.len());
            let mut candidates: Vec<PageId> =
                cache.evictable_cells_of(core).map(|(_, p)| p).collect();
            while excess > 0 && !candidates.is_empty() {
                let victim = self.policies[core].choose_victim(&candidates);
                candidates.retain(|&p| p != victim);
                cells.push(cache.cell_of(victim).expect("victim resident"));
                excess -= 1;
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru::Lru;
    use crate::shared::Shared;
    use mcp_core::{simulate, Workload};

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn lru_mimic_equals_shared_lru_small() {
        let w = wl(&[&[1, 2, 3, 1, 2, 3, 1], &[7, 8, 9, 7, 8, 9, 7]]);
        for tau in [0u64, 1, 3] {
            for k in [2usize, 3, 4, 5] {
                let a = simulate(&w, SimConfig::new(k, tau), Shared::new(Lru::new())).unwrap();
                let b = simulate(&w, SimConfig::new(k, tau), LruMimicPartition::new()).unwrap();
                assert_eq!(a.faults, b.faults, "K={k} tau={tau}");
                assert_eq!(a.fault_times, b.fault_times, "K={k} tau={tau}");
            }
        }
    }

    #[test]
    fn staged_single_stage_equals_static() {
        use crate::static_partition::StaticPartition;
        let w = wl(&[&[1, 2, 1, 2, 3, 1], &[7, 8, 7, 8, 7, 8]]);
        let part = Partition::from_sizes(vec![2, 2]);
        let s = simulate(
            &w,
            SimConfig::new(4, 1),
            StaticPartition::uniform(part.clone(), Lru::new),
        )
        .unwrap();
        let d = simulate(
            &w,
            SimConfig::new(4, 1),
            StagedPartition::uniform(vec![(1, part)], Lru::new),
        )
        .unwrap();
        assert_eq!(s.faults, d.faults);
    }

    #[test]
    fn shrink_evicts_excess_pages() {
        // Stage 1: [3,1]; stage 2 (from t=10): [1,3]. Core 0 holds 3 pages
        // by t=10; two must be evicted at the boundary, so its re-requests
        // fault again.
        let w = wl(&[&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3], &[7; 12]]);
        let stages = vec![
            (1, Partition::from_sizes(vec![3, 1])),
            (10, Partition::from_sizes(vec![1, 3])),
        ];
        let r = simulate(
            &w,
            SimConfig::new(4, 0),
            StagedPartition::uniform(stages, Lru::new),
        )
        .unwrap();
        // Before t=10: core 0 cold-faults 1,2,3 then hits. At t=10 its part
        // shrinks to 1: pages evicted, so requests at t=10.. fault anew.
        assert!(
            r.faults[0] > 3,
            "shrink must reintroduce faults, got {:?}",
            r.faults
        );
        assert_eq!(r.faults[1], 1);
    }

    #[test]
    fn partition_at_picks_correct_stage() {
        let s = StagedPartition::uniform(
            vec![
                (1, Partition::from_sizes(vec![2, 2])),
                (5, Partition::from_sizes(vec![3, 1])),
                (9, Partition::from_sizes(vec![1, 3])),
            ],
            Lru::new,
        );
        assert_eq!(s.partition_at(1).sizes(), &[2, 2]);
        assert_eq!(s.partition_at(4).sizes(), &[2, 2]);
        assert_eq!(s.partition_at(5).sizes(), &[3, 1]);
        assert_eq!(s.partition_at(8).sizes(), &[3, 1]);
        assert_eq!(s.partition_at(9).sizes(), &[1, 3]);
        assert_eq!(s.partition_at(100).sizes(), &[1, 3]);
        assert_eq!(s.num_stages(), 3);
    }
}
