//! # mcp-serve — the streaming online cache-management service
//!
//! `mcp serve` turns the repository's offline simulators into a
//! long-running service: clients stream `(core, page)` requests in over
//! TCP, Unix sockets, or in process; the service routes them through
//! per-core bounded queues, applies a registered strategy *live* on the
//! incremental engine ([`mcp_core::online::OnlineSimulator`]), and
//! streams fault / latency / fairness metrics out as periodic JSON
//! snapshots.
//!
//! * [`ring`] — bounded lock-free MPSC rings (Vyukov construction);
//!   `try_push` never blocks, a full ring is an observable drop.
//! * [`queue`] — the admission boundary: **cFCFS** (one shared queue)
//!   and **dFCFS** (one queue per core) disciplines with exact
//!   accounting (`offered == admitted + dropped`, always).
//! * [`transport`] — length-prefixed binary frames over any byte
//!   stream; malformed frames kill one connection, never the service.
//! * [`server`] — the single driver thread: batched dequeue, engine
//!   feed, snapshot cadence, chaos-tolerant drain, replay-log writing.
//! * [`metrics`] — one-line JSON snapshots with sketch-backed latency
//!   percentiles and Jain's fairness over live slowdowns.
//!
//! ## Determinism and the replay contract
//!
//! The engine commits timesteps under the safe-horizon rule (see
//! `mcp_core::online`), so the *admitted log* fully determines every
//! fault count, fault time, and the makespan. In seeded mode the CLI
//! uses one deterministic producer over [`QueueSet::offer_blocking`]
//! (lossless admission), making the log — and hence the replay file —
//! byte-identical across runs and `--jobs` settings; piping that file
//! through `mcp simulate -` reproduces the served fault counts exactly.

#![warn(missing_docs)]

pub mod metrics;
pub mod queue;
pub mod ring;
pub mod server;
pub mod transport;

pub use metrics::Snapshot;
pub use queue::{Consumer, Discipline, QueueSet, QueueTotals};
pub use ring::Msg;
pub use server::{serve_connection, BoxedStrategy, ServeConfig, ServeError, ServeReport, Server};
pub use transport::{read_frame, write_frame, Frame, KIND_CLOSE, KIND_REQS, MAX_FRAME_LEN};
