//! The serve driver: one thread that drains the admission queues in
//! batches, feeds the [`OnlineSimulator`], and emits periodic metrics
//! snapshots.
//!
//! Producers (socket decoder threads, in-process clients) hold a cloned
//! [`QueueSet`] and never touch the engine; the driver owns the unique
//! [`Consumer`] and the engine, so the simulation itself is single-
//! threaded and deterministic. With a deterministic producer (the seeded
//! `mcp serve` mode pushes via [`QueueSet::offer_blocking`], which never
//! drops), the admitted log — and therefore every fault count and fault
//! time — is bit-identical run to run and independent of `--jobs`,
//! drain batching, and snapshot cadence. The replay log the driver
//! writes on shutdown pipes straight into `mcp simulate -`.

use crate::metrics::Snapshot;
use crate::queue::{Consumer, Discipline, QueueSet, QueueTotals};
use crate::ring::Msg;
use crate::transport::{read_frame, Frame};
use mcp_analysis::fairness;
use mcp_analysis::stats::QuantileSketch;
use mcp_core::online::OnlineSimulator;
use mcp_core::{CacheStrategy, PageId, SimConfig, SimError, SimResult, Workload};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A boxed strategy as the CLI hands it to [`Server::new`].
pub type BoxedStrategy = Box<dyn CacheStrategy + Send>;

/// Errors from building or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying simulation rejected the configuration or a step.
    Sim(SimError),
    /// Writing the replay log failed.
    Io(io::Error),
    /// The serve configuration itself is unusable.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Io(e) => write!(f, "replay-log write failed: {e}"),
            ServeError::Config(msg) => write!(f, "bad serve configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Configuration for a serve run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of engine cores `p`.
    pub cores: usize,
    /// The paper-model parameters (cache size `K`, fault penalty `τ`).
    pub sim: SimConfig,
    /// Queue discipline ([`Discipline::Cfcfs`] or [`Discipline::Dfcfs`]).
    pub discipline: Discipline,
    /// Per-ring capacity (rounded up to a power of two).
    pub depth: usize,
    /// Maximum messages drained per driver iteration.
    pub batch: usize,
    /// Emit a snapshot at least this often (`None`: final snapshot only).
    pub snapshot_every: Option<Duration>,
    /// Where to write the admitted log on shutdown.
    pub replay_log: Option<PathBuf>,
    /// Dynamic cache capacity `K(t)` (`None`: fixed at `sim.cache_size`).
    /// The replay contract extends verbatim: the finished result is
    /// bit-identical to `mcp_core::sim::simulate_with_capacity` on the
    /// admitted log under the same schedule.
    pub capacity: Option<mcp_core::CapacitySchedule>,
}

impl ServeConfig {
    /// A config with serving defaults: dFCFS, depth 1024, batch 256,
    /// final snapshot only.
    pub fn new(cores: usize, sim: SimConfig) -> Self {
        ServeConfig {
            cores,
            sim,
            discipline: Discipline::Dfcfs,
            depth: 1024,
            batch: 256,
            snapshot_every: None,
            replay_log: None,
            capacity: None,
        }
    }
}

/// What a finished run hands back.
#[derive(Debug)]
pub struct ServeReport {
    /// The aggregate simulation result (bit-identical to
    /// `mcp_core::sim::simulate` on [`ServeReport::log`]).
    pub result: SimResult,
    /// The admitted log — the replay trace.
    pub log: Workload,
    /// Final admission counters (`offered == admitted + dropped`).
    pub totals: QueueTotals,
    /// Admitted requests the engine refused as arriving after close.
    pub rejected_late: u64,
    /// Requests served.
    pub served: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The final metrics snapshot (also passed to the emit callback).
    pub final_snapshot: Snapshot,
}

/// The serve driver. Build with [`Server::new`], hand producer handles
/// out via [`Server::client`], then [`Server::run`] on the thread that
/// should own the simulation.
pub struct Server<S: CacheStrategy> {
    cfg: ServeConfig,
    strategy_name: String,
    engine: OnlineSimulator<S>,
    queues: QueueSet,
    consumer: Consumer,
}

impl<S: CacheStrategy> Server<S> {
    /// Build a server. The strategy's `begin` sees `cores` empty
    /// sequences — offline strategies (FITF, per-part Belady, mimic,
    /// sacrifice) must be rejected by the caller before this point.
    pub fn new(cfg: ServeConfig, strategy: S) -> Result<Self, ServeError> {
        if cfg.cores == 0 {
            return Err(ServeError::Config("need at least one core".into()));
        }
        if cfg.batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let strategy_name = strategy.name();
        let schedule = cfg
            .capacity
            .clone()
            .unwrap_or_else(|| mcp_core::CapacitySchedule::fixed(cfg.sim.cache_size));
        let engine = OnlineSimulator::with_capacity(cfg.cores, cfg.sim, schedule, strategy)?;
        let (queues, consumer) = QueueSet::new(cfg.discipline, cfg.cores, cfg.depth);
        Ok(Server {
            cfg,
            strategy_name,
            engine,
            queues,
            consumer,
        })
    }

    /// A producer handle for clients (cloneable, thread-safe).
    pub fn client(&self) -> QueueSet {
        self.queues.clone()
    }

    /// Run the driver loop until the stream ends (every core closed and
    /// all admitted requests served) or cancellation is requested via
    /// `mcp_core::budget::request_cancel` (SIGINT under the CLI). Emits
    /// a snapshot every `snapshot_every` plus one final snapshot.
    pub fn run(self, mut emit: impl FnMut(&Snapshot)) -> Result<ServeReport, ServeError> {
        let Server {
            cfg,
            strategy_name,
            mut engine,
            queues,
            mut consumer,
        } = self;
        let cores = cfg.cores;
        let start = Instant::now();
        // Admission timestamps (ns since start) per engine core, popped in
        // service order to feed the latency sketch.
        let mut admit_ns: Vec<VecDeque<u64>> = vec![VecDeque::new(); cores];
        let mut latency = QuantileSketch::default_latency();
        // cFCFS dispatch state: requests assigned per core so far. The
        // argmin depends only on admission order, so seeded runs replay
        // bit-identically regardless of drain batching.
        let mut assigned = vec![0u64; cores];
        let mut last_pos = vec![0usize; cores];
        let mut rejected_late = 0u64;
        let mut seq = 0u64;
        let mut iter = 0u64;
        let mut last_snap = start;
        let mut closing = false;
        let mut idle_spins = 0u32;
        loop {
            chaos_drain_probe(iter);
            iter = iter.wrapping_add(1);
            let now_ns = start.elapsed().as_nanos() as u64;
            let drained = consumer.drain(cfg.batch, |msg| match msg {
                Msg::Req { core, page } => {
                    let target = match cfg.discipline {
                        Discipline::Dfcfs => core as usize,
                        Discipline::Cfcfs => (0..cores)
                            .filter(|&c| !engine.is_closed(c))
                            .min_by_key(|&c| (assigned[c], c))
                            .unwrap_or(0),
                    };
                    match engine.push(target, PageId(page)) {
                        Ok(()) => {
                            assigned[target] += 1;
                            admit_ns[target].push_back(now_ns);
                        }
                        Err(_) => rejected_late += 1,
                    }
                }
                Msg::Close { core } => {
                    if core == u32::MAX || cfg.discipline == Discipline::Cfcfs {
                        engine.close_all();
                    } else if (core as usize) < cores {
                        let _ = engine.close(core as usize);
                    }
                }
            });
            let served_now = engine.advance()?;
            if served_now > 0 {
                let done_ns = start.elapsed().as_nanos() as u64;
                for core in 0..cores {
                    let pos = engine.positions()[core];
                    for _ in last_pos[core]..pos {
                        if let Some(t0) = admit_ns[core].pop_front() {
                            latency.add(done_ns.saturating_sub(t0) as f64);
                        }
                    }
                    last_pos[core] = pos;
                }
            }
            if !closing && mcp_core::budget::cancel_requested() {
                closing = true;
                queues.gate_close_all();
            }
            if closing && consumer.is_empty() {
                // Producers are gated and the rings are drained: everything
                // that will ever be admitted is in the engine. End the
                // stream so the horizon releases the tail.
                engine.close_all();
            }
            if let Some(every) = cfg.snapshot_every {
                if last_snap.elapsed() >= every {
                    seq += 1;
                    emit(&make_snapshot(
                        seq,
                        &start,
                        &cfg,
                        &strategy_name,
                        &engine,
                        queues.totals(),
                        rejected_late,
                        &latency,
                    ));
                    last_snap = Instant::now();
                }
            }
            if engine.finished() && consumer.is_empty() {
                break;
            }
            if drained == 0 && served_now == 0 {
                idle_spins += 1;
                if idle_spins < 128 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            } else {
                idle_spins = 0;
            }
        }
        seq += 1;
        let final_snapshot = make_snapshot(
            seq,
            &start,
            &cfg,
            &strategy_name,
            &engine,
            queues.totals(),
            rejected_late,
            &latency,
        );
        emit(&final_snapshot);
        let elapsed = start.elapsed();
        let served: u64 = engine.positions().iter().map(|&p| p as u64).sum();
        let (result, log) = engine.finish();
        if let Some(path) = &cfg.replay_log {
            let totals = queues.totals();
            let mut text = String::new();
            text.push_str("# mcp serve replay log (pipe into `mcp simulate -`)\n");
            text.push_str(&format!(
                "# p={} k={} tau={} strategy={} discipline={}\n",
                cores, cfg.sim.cache_size, cfg.sim.tau, strategy_name, cfg.discipline
            ));
            text.push_str(&format!(
                "# offered={} admitted={} dropped={} rejected_late={} served={}\n",
                totals.offered, totals.admitted, totals.dropped, rejected_late, served
            ));
            text.push_str(&format!(
                "# total_faults={} makespan={}\n",
                result.total_faults(),
                result.makespan
            ));
            text.push_str(&log.to_string());
            mcp_chaos::io::atomic_write(path, text.as_bytes(), "serve.replay_log")?;
        }
        Ok(ServeReport {
            result,
            log,
            totals: queues.totals(),
            rejected_late,
            served,
            elapsed,
            final_snapshot,
        })
    }
}

/// Build a metrics snapshot from the live engine and counters.
#[allow(clippy::too_many_arguments)]
fn make_snapshot<S: CacheStrategy>(
    seq: u64,
    start: &Instant,
    cfg: &ServeConfig,
    strategy_name: &str,
    engine: &OnlineSimulator<S>,
    totals: QueueTotals,
    rejected_late: u64,
    latency: &QuantileSketch,
) -> Snapshot {
    let served: u64 = engine.positions().iter().map(|&p| p as u64).sum();
    // Jain's index over slowdowns needs only counts and τ, not fault
    // times — a minimal SimResult suffices mid-run.
    let live = SimResult {
        faults: engine.faults().to_vec(),
        hits: engine.hits().to_vec(),
        makespan: engine.makespan(),
        fault_times: vec![Vec::new(); cfg.cores],
        config: cfg.sim,
    };
    let jain = fairness::jain_index(&fairness::slowdowns(&live));
    Snapshot {
        seq,
        uptime_ms: start.elapsed().as_millis() as u64,
        discipline: cfg.discipline.to_string(),
        strategy: strategy_name.to_string(),
        offered: totals.offered,
        admitted: totals.admitted,
        dropped: totals.dropped,
        rejected_late,
        served,
        backlog: totals.admitted.saturating_sub(served + rejected_late),
        faults: engine.faults().to_vec(),
        total_faults: live.total_faults(),
        total_hits: engine.hits().iter().sum(),
        makespan: engine.makespan(),
        latency_ns: latency.p50_p90_p99(),
        jain_slowdown: jain,
    }
}

/// Chaos probe for the driver loop: `task_point("serve.drain", …)` can
/// inject a panic; the driver catches *injected* panics and retries with
/// an incremented attempt counter (the plan's `max_consecutive` bounds
/// the adversary), so the service self-heals. Genuine panics propagate.
fn chaos_drain_probe(iter: u64) {
    if !mcp_chaos::armed() {
        return;
    }
    let mut attempt = 0u32;
    loop {
        match std::panic::catch_unwind(|| mcp_chaos::task_point("serve.drain", iter, attempt)) {
            Ok(()) => return,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if mcp_chaos::is_injected_panic(msg) {
                    attempt += 1;
                    continue;
                }
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Decode frames from one connection into the queue set until clean EOF.
/// Malformed frames error out — the caller drops that connection; the
/// service keeps running.
pub fn serve_connection(stream: &mut impl Read, queues: &QueueSet) -> io::Result<()> {
    loop {
        match read_frame(stream)? {
            None => return Ok(()),
            Some(Frame::Reqs(batch)) => {
                for (core, page) in batch {
                    queues.offer(core, page);
                }
            }
            Some(Frame::Close(cores)) => {
                if cores.is_empty() {
                    queues.close(None);
                } else {
                    for core in cores {
                        queues.close(Some(core));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evict the lowest-indexed evictable cell (no external policy dep).
    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(
            &mut self,
            _c: usize,
            _p: PageId,
            _t: mcp_core::Time,
            cache: &mcp_core::Cache,
        ) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("victim exists when K >= p")
        }
    }

    fn cfg(cores: usize) -> ServeConfig {
        ServeConfig::new(cores, SimConfig::new(4, 2))
    }

    #[test]
    fn inprocess_roundtrip_dfcfs() {
        let server = Server::new(cfg(2), FirstFit).unwrap();
        let client = server.client();
        for i in 0..10u32 {
            assert!(client.offer(i % 2, i % 3));
        }
        client.close(None);
        let mut snaps = 0;
        let report = server.run(|_| snaps += 1).unwrap();
        assert_eq!(snaps, 1, "final snapshot only by default");
        assert_eq!(report.served, 10);
        assert_eq!(report.totals.offered, 10);
        assert_eq!(report.totals.admitted, 10);
        assert_eq!(report.rejected_late, 0);
        assert_eq!(report.final_snapshot.backlog, 0);
        assert_eq!(
            report.result.total_faults() + report.result.total_hits(),
            10
        );
        // The admitted log replays to the identical result.
        let replay = mcp_core::simulate(&report.log, report.result.config, FirstFit).unwrap();
        assert_eq!(replay, report.result);
    }

    #[test]
    fn cfcfs_balances_and_replays() {
        let mut c = cfg(2);
        c.discipline = Discipline::Cfcfs;
        let server = Server::new(c, FirstFit).unwrap();
        let client = server.client();
        for i in 0..8u32 {
            // cFCFS ignores the advisory core field for routing.
            assert!(client.offer(0, i));
        }
        client.close(None);
        let report = server.run(|_| {}).unwrap();
        assert_eq!(report.served, 8);
        // Least-assigned dispatch splits the stream 4/4.
        let lens: Vec<usize> = (0..2).map(|j| report.log.len(j)).collect();
        assert_eq!(lens, vec![4, 4]);
        let replay = mcp_core::simulate(&report.log, report.result.config, FirstFit).unwrap();
        assert_eq!(replay, report.result);
    }

    #[test]
    fn connection_frames_feed_queues() {
        let server = Server::new(cfg(2), FirstFit).unwrap();
        let client = server.client();
        let mut wire = Vec::new();
        crate::transport::write_frame(&mut wire, &Frame::Reqs(vec![(0, 1), (1, 2), (0, 1)]))
            .unwrap();
        crate::transport::write_frame(&mut wire, &Frame::Close(vec![])).unwrap();
        serve_connection(&mut io::Cursor::new(wire), &client).unwrap();
        let report = server.run(|_| {}).unwrap();
        assert_eq!(report.served, 3);
        assert_eq!(report.totals.offered, 3);
    }

    #[test]
    fn bad_config_is_rejected() {
        assert!(matches!(
            Server::new(cfg(0), FirstFit),
            Err(ServeError::Config(_))
        ));
        let mut c = cfg(2);
        c.batch = 0;
        assert!(matches!(
            Server::new(c, FirstFit),
            Err(ServeError::Config(_))
        ));
        // K < p fails through the simulation validator.
        let c = ServeConfig::new(8, SimConfig::new(4, 1));
        assert!(matches!(Server::new(c, FirstFit), Err(ServeError::Sim(_))));
    }

    #[test]
    fn late_offers_after_close_are_dropped_not_lost() {
        let server = Server::new(cfg(2), FirstFit).unwrap();
        let client = server.client();
        assert!(client.offer(0, 1));
        client.close(Some(0));
        assert!(!client.offer(0, 2), "gate drops immediately");
        client.close(Some(1));
        let report = server.run(|_| {}).unwrap();
        let t = &report.totals;
        assert_eq!(t.offered, 2);
        assert_eq!(t.admitted + t.dropped, t.offered);
        assert_eq!(report.served, 1);
    }
}
