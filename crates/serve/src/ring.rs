//! A bounded lock-free multi-producer / single-consumer ring buffer
//! (the Vyukov bounded-queue construction) carrying the serve layer's
//! admission messages.
//!
//! Producers are connection decoder threads and in-process clients;
//! the single consumer is the driver thread. `try_push` never blocks —
//! a full ring reports failure so the caller can account an explicit
//! *drop* (backpressure is observable, never silent). Slots carry
//! per-slot sequence numbers, so producers and the consumer synchronize
//! per cell rather than through a shared lock; with a single producer
//! the queue degenerates to a plain SPSC ring with no contended CAS.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One admission message: a page request attributed to a core, or the
/// core's end-of-stream marker. Close markers travel through the same
/// ring as requests so a core's close cannot overtake its queued
/// requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Msg {
    /// A request for `page` issued by (or routed to) `core`.
    Req {
        /// Issuing core (dFCFS routing key; advisory under cFCFS).
        core: u32,
        /// Requested page.
        page: u32,
    },
    /// Core `core` has no further requests (`u32::MAX` = every core).
    Close {
        /// The closing core, or `u32::MAX` for all.
        core: u32,
    },
}

#[repr(align(64))]
struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<Msg>,
}

/// The bounded MPSC ring. Capacity is rounded up to a power of two.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    /// Producer cursor (next slot to claim).
    tail: AtomicUsize,
    /// Consumer cursor (next slot to read). Single consumer only.
    head: AtomicUsize,
}

// SAFETY: slots are only written by the producer that claimed them via
// the tail CAS and only read by the single consumer after observing the
// slot's published sequence number (acquire/release pairs below).
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// A ring holding at least `capacity` messages (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(Msg::Close { core: u32::MAX }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// The ring's (rounded) capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Push without blocking. `Err(msg)` means the ring is full — the
    /// caller decides whether that is a drop or a retry.
    pub fn try_push(&self, msg: Msg) -> Result<(), Msg> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - tail as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this producer exclusive
                        // ownership of the slot until the seq store below.
                        unsafe { *slot.value.get() = msg };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                return Err(msg); // full: consumer has not freed this slot
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop one message. **Single-consumer**: callers must guarantee only
    /// one thread ever pops (the [`crate::queue::Consumer`] token does).
    pub(crate) fn pop(&self) -> Option<Msg> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if (seq as isize) - (head.wrapping_add(1) as isize) < 0 {
            return None; // empty (or the producer has not published yet)
        }
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
        // SAFETY: the acquire load above observed the producer's release
        // store, so the slot value is fully written and now exclusively
        // ours until the seq store republishes the slot.
        let msg = unsafe { *slot.value.get() };
        slot.seq.store(
            head.wrapping_add(self.mask).wrapping_add(1),
            Ordering::Release,
        );
        Some(msg)
    }

    /// Messages currently buffered (approximate under concurrency; exact
    /// when producers are quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// `true` when no messages are buffered (same caveat as [`Ring::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(core: u32, page: u32) -> Msg {
        Msg::Req { core, page }
    }

    #[test]
    fn fifo_and_wraparound() {
        let ring = Ring::new(4);
        assert_eq!(ring.capacity(), 4);
        for round in 0..10u32 {
            for i in 0..4 {
                ring.try_push(req(0, round * 4 + i)).unwrap();
            }
            assert!(ring.try_push(req(0, 999)).is_err(), "full ring must refuse");
            for i in 0..4 {
                assert_eq!(ring.pop(), Some(req(0, round * 4 + i)));
            }
            assert_eq!(ring.pop(), None);
        }
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0).capacity(), 2);
        assert_eq!(Ring::new(3).capacity(), 4);
        assert_eq!(Ring::new(1024).capacity(), 1024);
    }

    #[test]
    fn close_markers_keep_order() {
        let ring = Ring::new(8);
        ring.try_push(req(1, 7)).unwrap();
        ring.try_push(Msg::Close { core: 1 }).unwrap();
        assert_eq!(ring.pop(), Some(req(1, 7)));
        assert_eq!(ring.pop(), Some(Msg::Close { core: 1 }));
    }

    #[test]
    fn multi_producer_preserves_every_message() {
        let ring = Arc::new(Ring::new(64));
        let producers = 4;
        let per = 5_000u32;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut msg = req(p, i);
                        loop {
                            match ring.try_push(msg) {
                                Ok(()) => break,
                                Err(back) => {
                                    msg = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut seen: Vec<Vec<u32>> = vec![Vec::new(); producers as usize];
        let mut total = 0u64;
        while total < (producers as u64) * per as u64 {
            if let Some(Msg::Req { core, page }) = ring.pop() {
                seen[core as usize].push(page);
                total += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.pop(), None);
        // Per-producer FIFO: each producer's stream arrives in order.
        for (p, pages) in seen.iter().enumerate() {
            let want: Vec<u32> = (0..per).collect();
            assert_eq!(pages, &want, "producer {p} reordered");
        }
    }
}
