//! Queue disciplines and admission accounting.
//!
//! A [`QueueSet`] is the admission boundary between transport threads
//! and the driver: **cFCFS** funnels every request through one shared
//! ring, **dFCFS** keeps one ring per core keyed by the request's
//! issuing core (the two disciplines of the `carvalhof/sim` exemplar,
//! mapped onto the paper's per-core sequences). Admission is strictly
//! accounted: every [`QueueSet::offer`] either *admits* into a ring or
//! *drops* (ring full, or unroutable core), and
//! `offered == admitted + dropped` holds exactly at all times — the
//! backpressure contract the serve tests pin.

use crate::ring::{Msg, Ring};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How requests map onto the engine's cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// One shared FCFS queue; the driver assigns each popped request to
    /// the open engine core with the fewest requests assigned so far
    /// (ties to the lowest core id). The assignment depends only on the
    /// admission order, never on drain batching or timing, so seeded
    /// runs replay bit-identically.
    Cfcfs,
    /// One queue per core; a request is routed by its own `core` field.
    Dfcfs,
}

impl Discipline {
    /// The canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Cfcfs => "cfcfs",
            Discipline::Dfcfs => "dfcfs",
        }
    }
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Discipline {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cfcfs" => Ok(Discipline::Cfcfs),
            "dfcfs" => Ok(Discipline::Dfcfs),
            other => Err(format!("unknown discipline {other:?}; try cfcfs or dfcfs")),
        }
    }
}

struct Shared {
    discipline: Discipline,
    cores: usize,
    rings: Vec<Ring>,
    offered: AtomicU64,
    admitted: AtomicU64,
    dropped: AtomicU64,
    /// Drops attributed per ring (queue-full only; unroutable cores have
    /// no ring).
    ring_dropped: Vec<AtomicU64>,
    /// Producer-side close hints: set the moment a close is *enqueued*,
    /// so later offers for that core drop at the gate instead of dying
    /// inside the engine.
    closed: Vec<AtomicBool>,
    all_closed: AtomicBool,
}

/// Cloneable producer handle: transport threads and in-process clients
/// offer requests and closes through this.
#[derive(Clone)]
pub struct QueueSet {
    inner: Arc<Shared>,
}

/// The unique consumer token — popping is single-consumer by
/// construction because `Consumer` is not `Clone`.
pub struct Consumer {
    inner: Arc<Shared>,
    /// Round-robin pointer for dFCFS draining.
    next_ring: usize,
}

/// A point-in-time copy of the admission counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueTotals {
    /// Requests presented to [`QueueSet::offer`].
    pub offered: u64,
    /// Requests that entered a ring.
    pub admitted: u64,
    /// Requests refused (full ring or unroutable core).
    pub dropped: u64,
    /// Queue-full drops per ring.
    pub ring_dropped: Vec<u64>,
}

impl QueueSet {
    /// Build the queue set and its unique consumer. `depth` is the
    /// per-ring capacity (rounded up to a power of two).
    pub fn new(discipline: Discipline, cores: usize, depth: usize) -> (QueueSet, Consumer) {
        let nrings = match discipline {
            Discipline::Cfcfs => 1,
            Discipline::Dfcfs => cores,
        };
        let inner = Arc::new(Shared {
            discipline,
            cores,
            rings: (0..nrings).map(|_| Ring::new(depth)).collect(),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring_dropped: (0..nrings).map(|_| AtomicU64::new(0)).collect(),
            closed: (0..cores).map(|_| AtomicBool::new(false)).collect(),
            all_closed: AtomicBool::new(false),
        });
        (
            QueueSet {
                inner: Arc::clone(&inner),
            },
            Consumer {
                inner,
                next_ring: 0,
            },
        )
    }

    /// The discipline in force.
    pub fn discipline(&self) -> Discipline {
        self.inner.discipline
    }

    /// Number of engine cores.
    pub fn cores(&self) -> usize {
        self.inner.cores
    }

    fn ring_of(&self, core: u32) -> Option<usize> {
        match self.inner.discipline {
            Discipline::Cfcfs => Some(0),
            Discipline::Dfcfs => {
                if (core as usize) < self.inner.cores {
                    Some(core as usize)
                } else {
                    None
                }
            }
        }
    }

    /// Offer one request. Returns `true` when admitted, `false` when
    /// dropped (full queue, unroutable core, or core already closed).
    pub fn offer(&self, core: u32, page: u32) -> bool {
        let s = &*self.inner;
        s.offered.fetch_add(1, Ordering::Relaxed);
        let Some(ring) = self.ring_of(core) else {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let gate_closed = s.all_closed.load(Ordering::Acquire)
            || (s.discipline == Discipline::Dfcfs
                && s.closed[core as usize].load(Ordering::Acquire));
        if gate_closed {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match s.rings[ring].try_push(Msg::Req { core, page }) {
            Ok(()) => {
                s.admitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                s.dropped.fetch_add(1, Ordering::Relaxed);
                s.ring_dropped[ring].fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer, spinning until admitted — the lossless path for seeded
    /// deterministic producers. Gives up (returning `false`) once `stop`
    /// reads `true` or the stream is closed.
    pub fn offer_blocking(&self, core: u32, page: u32, stop: &AtomicBool) -> bool {
        let s = &*self.inner;
        let Some(ring) = self.ring_of(core) else {
            s.offered.fetch_add(1, Ordering::Relaxed);
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        loop {
            if stop.load(Ordering::Acquire)
                || s.all_closed.load(Ordering::Acquire)
                || (s.discipline == Discipline::Dfcfs
                    && s.closed[core as usize].load(Ordering::Acquire))
            {
                s.offered.fetch_add(1, Ordering::Relaxed);
                s.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if s.rings[ring].try_push(Msg::Req { core, page }).is_ok() {
                s.offered.fetch_add(1, Ordering::Relaxed);
                s.admitted.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            std::hint::spin_loop();
        }
    }

    /// Enqueue a close for `core` (`None` = every core). Closes travel
    /// through the rings so they cannot overtake queued requests — under
    /// dFCFS a close-all therefore lands one marker in *every* ring, so
    /// no ring's queued requests can be orphaned behind another ring's
    /// close. The producer-side gates flip immediately so later offers
    /// drop. Spins until each marker is admitted (close is never lost).
    pub fn close(&self, core: Option<u32>) {
        let s = &*self.inner;
        match core {
            None => {
                s.all_closed.store(true, Ordering::Release);
                for gate in &s.closed {
                    gate.store(true, Ordering::Release);
                }
                match s.discipline {
                    Discipline::Cfcfs => self.push_marker(0, Msg::Close { core: u32::MAX }),
                    Discipline::Dfcfs => {
                        for ring in 0..s.rings.len() {
                            self.push_marker(ring, Msg::Close { core: ring as u32 });
                        }
                    }
                }
            }
            Some(c) => {
                let Some(ring) = self.ring_of(c) else {
                    return; // unroutable close: nothing to end
                };
                if s.discipline == Discipline::Dfcfs {
                    s.closed[c as usize].store(true, Ordering::Release);
                } else {
                    // cFCFS has one logical input stream: any close
                    // ends it (documented in DESIGN §14).
                    s.all_closed.store(true, Ordering::Release);
                }
                self.push_marker(ring, Msg::Close { core: c });
            }
        }
    }

    /// Spin a marker into `ring` (markers must never be dropped).
    fn push_marker(&self, ring: usize, marker: Msg) {
        let mut msg = marker;
        while let Err(back) = self.inner.rings[ring].try_push(msg) {
            msg = back;
            std::thread::yield_now();
        }
    }

    /// Flip every producer-side close gate *without* enqueuing markers —
    /// the driver's shutdown path. The driver closes the engine directly
    /// and must not push into rings only it drains (a full ring would
    /// deadlock it against itself); producers racing this gate have their
    /// offers dropped and accounted as usual.
    pub fn gate_close_all(&self) {
        let s = &*self.inner;
        s.all_closed.store(true, Ordering::Release);
        for gate in &s.closed {
            gate.store(true, Ordering::Release);
        }
    }

    /// Current counter values.
    pub fn totals(&self) -> QueueTotals {
        let s = &*self.inner;
        QueueTotals {
            offered: s.offered.load(Ordering::Relaxed),
            admitted: s.admitted.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            ring_dropped: s
                .ring_dropped
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Consumer {
    /// Drain up to `max` messages, round-robin across rings (a batched
    /// dequeue: one wake-up serves a whole batch). Returns the number
    /// delivered to `sink`.
    pub fn drain(&mut self, max: usize, mut sink: impl FnMut(Msg)) -> usize {
        let s = &*self.inner;
        let nrings = s.rings.len();
        let mut delivered = 0;
        let mut idle_rings = 0;
        while delivered < max && idle_rings < nrings {
            match s.rings[self.next_ring % nrings].pop() {
                Some(msg) => {
                    idle_rings = 0;
                    delivered += 1;
                    sink(msg);
                }
                None => {
                    idle_rings += 1;
                    self.next_ring = (self.next_ring + 1) % nrings;
                }
            }
        }
        delivered
    }

    /// `true` when every ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.rings.iter().all(Ring::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discipline_parsing() {
        assert_eq!("cfcfs".parse::<Discipline>().unwrap(), Discipline::Cfcfs);
        assert_eq!("dfcfs".parse::<Discipline>().unwrap(), Discipline::Dfcfs);
        assert!("fcfs".parse::<Discipline>().is_err());
        assert_eq!(Discipline::Cfcfs.to_string(), "cfcfs");
    }

    #[test]
    fn accounting_is_exact_under_overflow() {
        let (q, mut c) = QueueSet::new(Discipline::Dfcfs, 2, 4);
        let mut admitted = 0;
        for i in 0..50u32 {
            if q.offer(i % 2, i) {
                admitted += 1;
            }
        }
        let t = q.totals();
        assert_eq!(t.offered, 50);
        assert_eq!(t.admitted, admitted);
        assert_eq!(t.offered, t.admitted + t.dropped, "exact conservation");
        assert!(t.dropped > 0, "depth 4 must overflow");
        assert_eq!(t.ring_dropped.iter().sum::<u64>(), t.dropped);
        // Draining frees space for more admissions.
        let mut n = 0;
        c.drain(usize::MAX, |_| n += 1);
        assert_eq!(n as u64, t.admitted);
        assert!(q.offer(0, 1));
    }

    #[test]
    fn unroutable_cores_drop() {
        let (q, _c) = QueueSet::new(Discipline::Dfcfs, 2, 8);
        assert!(!q.offer(7, 1));
        let t = q.totals();
        assert_eq!((t.offered, t.admitted, t.dropped), (1, 0, 1));
        // cFCFS routes any core id through the shared ring.
        let (q, _c) = QueueSet::new(Discipline::Cfcfs, 2, 8);
        assert!(q.offer(7, 1));
    }

    #[test]
    fn close_gates_later_offers() {
        let (q, mut c) = QueueSet::new(Discipline::Dfcfs, 2, 8);
        assert!(q.offer(0, 1));
        q.close(Some(0));
        assert!(!q.offer(0, 2), "offers after close drop at the gate");
        assert!(q.offer(1, 3), "other cores unaffected");
        let mut msgs = Vec::new();
        c.drain(usize::MAX, |m| msgs.push(m));
        assert_eq!(
            msgs,
            vec![
                Msg::Req { core: 0, page: 1 },
                Msg::Close { core: 0 },
                Msg::Req { core: 1, page: 3 },
            ]
        );
        let t = q.totals();
        assert_eq!(t.offered, 3);
        assert_eq!(t.admitted + t.dropped, 3);
    }

    #[test]
    fn close_all_ends_the_cfcfs_stream() {
        let (q, mut c) = QueueSet::new(Discipline::Cfcfs, 4, 8);
        assert!(q.offer(3, 9));
        q.close(Some(1)); // any close ends the cFCFS stream
        assert!(!q.offer(0, 1));
        let mut msgs = Vec::new();
        c.drain(usize::MAX, |m| msgs.push(m));
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[1], Msg::Close { core: 1 });
    }

    #[test]
    fn drain_batches_round_robin() {
        let (q, mut c) = QueueSet::new(Discipline::Dfcfs, 3, 16);
        for core in 0..3u32 {
            for i in 0..4u32 {
                assert!(q.offer(core, core * 10 + i));
            }
        }
        let mut got = Vec::new();
        assert_eq!(c.drain(5, |m| got.push(m)), 5);
        assert_eq!(got.len(), 5);
        let mut rest = Vec::new();
        c.drain(usize::MAX, |m| rest.push(m));
        assert_eq!(got.len() + rest.len(), 12);
        assert!(c.is_empty());
    }
}
