//! Live metrics snapshots: one JSON object per line on the metrics
//! stream, cheap enough to emit every few hundred milliseconds at
//! millions of requests per second.
//!
//! Latency percentiles come from the α = 1% [`QuantileSketch`]
//! (`mcp_analysis::stats`) over nanoseconds between a request's
//! admission into a ring and its service by the engine; fairness is
//! Jain's index over the model's per-core slowdowns, reusing
//! `mcp_analysis::fairness` on the engine's live counters.

use mcp_analysis::stats::QuantileSketch;

/// A point-in-time metrics snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Monotonic snapshot counter (the final snapshot has the largest).
    pub seq: u64,
    /// Wall-clock milliseconds since the server started.
    pub uptime_ms: u64,
    /// Queue discipline name (`cfcfs` / `dfcfs`).
    pub discipline: String,
    /// Strategy name as reported by [`mcp_core::CacheStrategy::name`].
    pub strategy: String,
    /// Requests presented at the admission boundary.
    pub offered: u64,
    /// Requests admitted into a ring.
    pub admitted: u64,
    /// Requests dropped at the boundary (full queue, unroutable core,
    /// closed stream). `offered == admitted + dropped` always.
    pub dropped: u64,
    /// Admitted requests refused by the engine (arrived after their
    /// core's close marker — only possible with racing clients).
    pub rejected_late: u64,
    /// Requests served by the engine.
    pub served: u64,
    /// Admitted but not yet served (in rings or awaiting the commit
    /// horizon).
    pub backlog: u64,
    /// Per-core fault counts so far.
    pub faults: Vec<u64>,
    /// Total faults so far.
    pub total_faults: u64,
    /// Total hits so far.
    pub total_hits: u64,
    /// Model-time completion of the last served request.
    pub makespan: u64,
    /// Admission-to-service latency percentiles, nanoseconds.
    pub latency_ns: (f64, f64, f64),
    /// Jain's fairness index over per-core slowdowns (1 = perfectly
    /// fair).
    pub jain_slowdown: f64,
}

impl Snapshot {
    /// Render as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let faults = self
            .faults
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let (p50, p90, p99) = self.latency_ns;
        format!(
            "{{\"seq\":{},\"uptime_ms\":{},\"discipline\":\"{}\",\"strategy\":\"{}\",\
             \"offered\":{},\"admitted\":{},\"dropped\":{},\"rejected_late\":{},\
             \"served\":{},\"backlog\":{},\"faults\":[{}],\"total_faults\":{},\
             \"total_hits\":{},\"makespan\":{},\"latency_ns\":{{\"p50\":{:.0},\
             \"p90\":{:.0},\"p99\":{:.0}}},\"jain_slowdown\":{:.4}}}",
            self.seq,
            self.uptime_ms,
            self.discipline,
            json_escape(&self.strategy),
            self.offered,
            self.admitted,
            self.dropped,
            self.rejected_late,
            self.served,
            self.backlog,
            faults,
            self.total_faults,
            self.total_hits,
            self.makespan,
            p50,
            p90,
            p99,
            self.jain_slowdown,
        )
    }
}

/// Escape a string for embedding in a JSON literal (strategy names only
/// ever need the quote/backslash cases, but be complete for controls).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The standard latency triple from a sketch (zeros when empty).
pub fn latency_triple(sketch: &QuantileSketch) -> (f64, f64, f64) {
    sketch.p50_p90_p99()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_single_line_json() {
        let s = Snapshot {
            seq: 3,
            uptime_ms: 1500,
            discipline: "dfcfs".into(),
            strategy: "S_LRU".into(),
            offered: 100,
            admitted: 90,
            dropped: 10,
            rejected_late: 0,
            served: 80,
            backlog: 10,
            faults: vec![5, 7],
            total_faults: 12,
            total_hits: 68,
            makespan: 421,
            latency_ns: (1000.0, 2000.0, 9000.0),
            jain_slowdown: 0.98765,
        };
        let json = s.to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"offered\":100"));
        assert!(json.contains("\"faults\":[5,7]"));
        assert!(json.contains("\"p99\":9000"));
        assert!(json.contains("\"jain_slowdown\":0.9877"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn strategy_names_are_escaped() {
        assert_eq!(json_escape("sP[2,2]_LRU"), "sP[2,2]_LRU");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
