//! Wire framing for the serve layer: length-prefixed binary frames over
//! any byte stream (TCP, Unix sockets, or an in-memory pipe in tests).
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload: len-1 bytes]
//! ```
//!
//! * kind `0x01` (`REQS`): payload is a run of `(core: u32 LE,
//!   page: u32 LE)` pairs — a batch of requests.
//! * kind `0x02` (`CLOSE`): payload is a run of `core: u32 LE` ids to
//!   close; an **empty** payload closes every core (end of stream).
//!
//! Frames are bounded by [`MAX_FRAME_LEN`]; a malformed frame (bad kind,
//! ragged payload, oversized length) is an `InvalidData` error and the
//! server drops the offending connection — one bad client cannot wedge
//! the service.

use std::io::{self, Read, Write};

/// Frame kind: a batch of `(core, page)` request pairs.
pub const KIND_REQS: u8 = 0x01;
/// Frame kind: close the listed cores (empty list = all cores).
pub const KIND_CLOSE: u8 = 0x02;
/// Upper bound on `len` (kind byte + payload): 1 MiB.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A batch of `(core, page)` requests.
    Reqs(Vec<(u32, u32)>),
    /// Close the listed cores; empty means every core.
    Close(Vec<u32>),
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encode `frame` onto `w` (one `write_all` per frame: length, kind and
/// payload are staged into a single buffer).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(64);
    buf.extend_from_slice(&[0; 4]); // length placeholder
    match frame {
        Frame::Reqs(reqs) => {
            buf.push(KIND_REQS);
            for &(core, page) in reqs {
                buf.extend_from_slice(&core.to_le_bytes());
                buf.extend_from_slice(&page.to_le_bytes());
            }
        }
        Frame::Close(cores) => {
            buf.push(KIND_CLOSE);
            for &core in cores {
                buf.extend_from_slice(&core.to_le_bytes());
            }
        }
    }
    let len = (buf.len() - 4) as u32;
    if len > MAX_FRAME_LEN {
        return Err(bad(format!(
            "frame of {len} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    buf[..4].copy_from_slice(&len.to_le_bytes());
    w.write_all(&buf)
}

/// Decode one frame from `r`. `Ok(None)` is a clean end of stream (EOF
/// exactly on a frame boundary); EOF mid-frame and malformed frames are
/// errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(bad(format!(
            "frame length {len} outside 1..={MAX_FRAME_LEN}"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let payload = &body[1..];
    match body[0] {
        KIND_REQS => {
            if !payload.len().is_multiple_of(8) {
                return Err(bad(format!(
                    "REQS payload of {} bytes is not a run of 8-byte pairs",
                    payload.len()
                )));
            }
            Ok(Some(Frame::Reqs(
                payload
                    .chunks_exact(8)
                    .map(|c| {
                        (
                            u32::from_le_bytes(c[..4].try_into().unwrap()),
                            u32::from_le_bytes(c[4..].try_into().unwrap()),
                        )
                    })
                    .collect(),
            )))
        }
        KIND_CLOSE => {
            if !payload.len().is_multiple_of(4) {
                return Err(bad(format!(
                    "CLOSE payload of {} bytes is not a run of u32 ids",
                    payload.len()
                )));
            }
            Ok(Some(Frame::Close(
                payload
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )))
        }
        other => Err(bad(format!("unknown frame kind 0x{other:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF after");
        got
    }

    #[test]
    fn frames_roundtrip() {
        for frame in [
            Frame::Reqs(vec![]),
            Frame::Reqs(vec![(0, 7), (3, 1_000_000), (u32::MAX, u32::MAX)]),
            Frame::Close(vec![]),
            Frame::Close(vec![0, 1, 2]),
        ] {
            assert_eq!(roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn streams_of_frames_decode_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Reqs(vec![(0, 1)])).unwrap();
        write_frame(&mut buf, &Frame::Reqs(vec![(1, 2)])).unwrap();
        write_frame(&mut buf, &Frame::Close(vec![])).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some(Frame::Reqs(vec![(0, 1)]))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some(Frame::Reqs(vec![(1, 2)]))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Frame::Close(vec![])));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Ragged REQS payload (5 bytes after kind).
        let mut buf = 6u32.to_le_bytes().to_vec();
        buf.push(KIND_REQS);
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Unknown kind.
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7f);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Zero length.
        let buf = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Oversized length.
        let buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Truncated mid-frame.
        let mut buf = 9u32.to_le_bytes().to_vec();
        buf.push(KIND_REQS);
        buf.extend_from_slice(&[1, 2, 3]); // promised 8 payload bytes
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
        // Ragged CLOSE payload.
        let mut buf = 4u32.to_le_bytes().to_vec();
        buf.push(KIND_CLOSE);
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }
}
