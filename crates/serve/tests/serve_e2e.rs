//! End-to-end serve-layer tests at the library level: concurrent real
//! clients against real policies, the replay contract, backpressure
//! accounting, and chaos survival. The CLI binary gets its own e2e
//! coverage in `crates/cli/tests/`.

use mcp_core::{simulate, CacheStrategy, SimConfig};
use mcp_policies::{shared_fifo, shared_lru, Clock, Mru, Shared};
use mcp_serve::{Discipline, ServeConfig, ServeReport, Server};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pages for `core`: overlapping universes so shared-fetch misses fire.
fn page_stream(core: u64, len: usize, universe: u64) -> Vec<u32> {
    let mut rng = 0xD1CE_0000 + core;
    (0..len)
        .map(|_| {
            rng = splitmix64(rng);
            (rng % universe) as u32
        })
        .collect()
}

/// Run a dFCFS server with one lossless producer thread per core and
/// return the report.
fn run_threaded<S: CacheStrategy + Send + 'static>(
    strategy: S,
    cores: usize,
    per_core: usize,
    universe: u64,
    depth: usize,
) -> ServeReport {
    let mut cfg = ServeConfig::new(cores, SimConfig::new(8, 3));
    cfg.depth = depth;
    let server = Server::new(cfg, strategy).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let producers: Vec<_> = (0..cores)
        .map(|core| {
            let client = server.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for page in page_stream(core as u64, per_core, universe) {
                    assert!(client.offer_blocking(core as u32, page, &stop));
                }
                client.close(Some(core as u32));
            })
        })
        .collect();
    let report = server.run(|_| {}).unwrap();
    for p in producers {
        p.join().unwrap();
    }
    report
}

#[test]
fn threaded_clients_replay_identically_for_real_policies() {
    // One constructor pair per online-safe family exercised here: the
    // served run and the offline replay must be bit-identical.
    let report = run_threaded(shared_lru(), 4, 800, 16, 256);
    assert_eq!(report.served, 4 * 800);
    assert_eq!(report.rejected_late, 0);
    let replay = simulate(&report.log, report.result.config, shared_lru()).unwrap();
    assert_eq!(replay, report.result, "S_LRU replay diverged");

    let report = run_threaded(shared_fifo(), 3, 500, 10, 128);
    let replay = simulate(&report.log, report.result.config, shared_fifo()).unwrap();
    assert_eq!(replay, report.result, "S_FIFO replay diverged");

    let report = run_threaded(Shared::new(Clock::new()), 2, 400, 12, 64);
    let replay = simulate(&report.log, report.result.config, Shared::new(Clock::new())).unwrap();
    assert_eq!(replay, report.result, "S_CLOCK replay diverged");

    let report = run_threaded(Shared::new(Mru::new()), 2, 300, 9, 64);
    let replay = simulate(&report.log, report.result.config, Shared::new(Mru::new())).unwrap();
    assert_eq!(replay, report.result, "S_MRU replay diverged");
}

/// A single deterministic producer: round-robin over cores, seeded pages,
/// lossless admission. This is exactly what seeded `mcp serve` does.
fn run_seeded(discipline: Discipline, batch: usize, depth: usize) -> ServeReport {
    let cores = 3;
    let mut cfg = ServeConfig::new(cores, SimConfig::new(6, 2));
    cfg.discipline = discipline;
    cfg.batch = batch;
    cfg.depth = depth;
    let server = Server::new(cfg, shared_lru()).unwrap();
    let client = server.client();
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = 0xBEEF_u64;
            for i in 0..3000u32 {
                rng = splitmix64(rng);
                assert!(client.offer_blocking(i % cores as u32, (rng % 14) as u32, &stop));
            }
            client.close(None);
        })
    };
    let report = server.run(|_| {}).unwrap();
    producer.join().unwrap();
    report
}

#[test]
fn seeded_runs_are_invariant_to_batching_and_depth() {
    for discipline in [Discipline::Dfcfs, Discipline::Cfcfs] {
        let base = run_seeded(discipline, 256, 1024);
        for (batch, depth) in [(7, 16), (1, 2048), (256, 1024)] {
            let other = run_seeded(discipline, batch, depth);
            assert_eq!(
                other.log, base.log,
                "admitted log varied ({discipline}, batch {batch}, depth {depth})"
            );
            assert_eq!(other.result, base.result, "result varied ({discipline})");
        }
    }
}

#[test]
fn backpressure_accounting_is_exact() {
    let cores = 2;
    let mut cfg = ServeConfig::new(cores, SimConfig::new(4, 1));
    cfg.depth = 8; // tiny rings: drops guaranteed with no concurrent drain
    let server = Server::new(cfg, shared_lru()).unwrap();
    let offered_per = 5_000u64;
    let producers: Vec<_> = (0..4u32)
        .map(|t| {
            let client = server.client();
            std::thread::spawn(move || {
                for i in 0..offered_per {
                    client.offer(t % cores as u32, (i % 30) as u32);
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap(); // all offers land before the driver drains
    }
    // The rings are full, so the close markers only fit once the driver
    // starts draining — close from a side thread.
    let closer = {
        let client = server.client();
        std::thread::spawn(move || client.close(None))
    };
    let report = server.run(|_| {}).unwrap();
    closer.join().unwrap();
    let t = &report.totals;
    assert_eq!(t.offered, 4 * offered_per);
    assert_eq!(t.offered, t.admitted + t.dropped, "exact conservation");
    assert!(t.dropped > 0, "depth 8 must shed load");
    assert!(t.admitted >= 2, "rings hold something");
    assert_eq!(report.served + report.rejected_late, t.admitted);
    assert_eq!(report.final_snapshot.backlog, 0);
    assert_eq!(t.ring_dropped.iter().sum::<u64>(), t.dropped);
}

#[test]
fn replay_log_round_trips_through_text_trace() {
    let cores = 2;
    let path = std::env::temp_dir().join(format!(
        "mcp_serve_replay_{}_{}.trace",
        std::process::id(),
        0xA11CE_u32
    ));
    let mut cfg = ServeConfig::new(cores, SimConfig::new(5, 2));
    cfg.replay_log = Some(path.clone());
    let server = Server::new(cfg, shared_lru()).unwrap();
    let client = server.client();
    for i in 0..40u32 {
        assert!(client.offer(i % 2, i % 7));
    }
    client.close(None);
    let report = server.run(|_| {}).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(text.starts_with("# mcp serve replay log"));
    let parsed = mcp_workloads::trace::read_text(text.as_bytes()).unwrap();
    assert_eq!(parsed, report.log, "text round-trip must be lossless");
    let replay = simulate(&parsed, report.result.config, shared_lru()).unwrap();
    assert_eq!(replay, report.result);
}

#[test]
fn chaos_armed_run_survives_and_stays_exact() {
    // 10% injected panics at the drain probe, bounded bursts of 3. The
    // driver must retry through every one and still match offline.
    let plan = mcp_chaos::FaultPlan::parse("0xC0FFEE:0,0,100,3,0").unwrap();
    let _guard = mcp_chaos::arm_scoped(plan);
    let cores = 2;
    let cfg = ServeConfig::new(cores, SimConfig::new(4, 2));
    let server = Server::new(cfg, shared_lru()).unwrap();
    let client = server.client();
    for i in 0..500u32 {
        assert!(client.offer(i % 2, i % 9));
    }
    client.close(None);
    let report = server.run(|_| {}).unwrap();
    assert_eq!(report.served, 500);
    let replay = simulate(&report.log, report.result.config, shared_lru()).unwrap();
    assert_eq!(replay, report.result, "chaos must not corrupt the run");
}
