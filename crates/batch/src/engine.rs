//! The batch runner: fan a grid of cells over `mcp-exec` in deterministic
//! cell-index order, sharing materialized workloads and per-worker
//! arenas across cells.

use crate::dense::{dense_run, DensePolicy, DenseWorkload, Scratch};
use crate::spec::CellSpec;
use mcp_core::{simulate, simulate_with_capacity, SimError, SimResult, Workload};
use mcp_exec::{Pool, Quarantined};
use std::cell::RefCell;
use std::fmt;

/// Why a cell could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// `CellSpec::workload` is out of range for the workload table.
    BadWorkloadIndex {
        /// The offending index.
        index: usize,
        /// The table's length.
        len: usize,
    },
    /// The family name is not in [`mcp_policies::FAMILIES`].
    UnknownFamily(String),
    /// The family rejects this workload (e.g. `sacrifice` requires
    /// disjoint per-core sequences).
    Inapplicable(String),
    /// The simulation itself failed (malformed config, …).
    Sim(SimError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::BadWorkloadIndex { index, len } => {
                write!(f, "workload index {index} out of range (table has {len})")
            }
            BatchError::UnknownFamily(name) => write!(f, "unknown strategy family {name:?}"),
            BatchError::Inapplicable(name) => {
                write!(f, "family {name:?} is not applicable to this workload")
            }
            BatchError::Sim(e) => write!(f, "{e:?}"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<SimError> for BatchError {
    fn from(e: SimError) -> Self {
        BatchError::Sim(e)
    }
}

thread_local! {
    /// One arena set per worker thread, reused across every cell that
    /// worker runs (and across `run_cells` calls on the caller's thread).
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run every cell of a batch, returning results in cell-index order.
///
/// The cells are fanned over [`mcp_exec::Pool::global`] — output is
/// bit-identical for every worker count (the pool's ordered-slot
/// contract). Dense families (`lru`, `fifo`, `clock`, `lfu`, `mru`,
/// `fwf`) run through the structure-of-arrays fast path against a
/// [`DenseWorkload`] shared by all cells on the same workload; every
/// other family builds a fresh strategy via the
/// [`mcp_policies::families`] registry and runs the per-cell event
/// engine, so both paths produce exactly the per-run `SimResult`.
pub fn run_cells(workloads: &[Workload], cells: &[CellSpec]) -> Vec<Result<SimResult, BatchError>> {
    let pool = Pool::global();
    // Dense re-keying is shared by every cell on the same workload;
    // build the table up front (also in parallel — it is pure).
    let dense: Vec<DenseWorkload> = pool.par_map(workloads, |_, w| DenseWorkload::build(w));
    pool.par_map(cells, |_, cell| run_one(workloads, &dense, cell))
}

/// [`run_cells`] with recovery-as-policy (DESIGN §13): each cell gets up
/// to `max_attempts` tries — a panicking cell (injected fault or real
/// bug) is retried in deterministic input order, and only a cell that
/// fails every attempt comes back as [`Quarantined`] while the rest of
/// the grid completes. Fault-injection decisions key on the `"batch.cell"`
/// site and the cell index, so results are bit-identical for every
/// worker count, exactly like `run_cells`.
pub fn run_cells_quarantined(
    workloads: &[Workload],
    cells: &[CellSpec],
    max_attempts: u32,
) -> Vec<Result<Result<SimResult, BatchError>, Quarantined>> {
    let pool = Pool::global();
    let dense: Vec<DenseWorkload> = pool.par_map(workloads, |_, w| DenseWorkload::build(w));
    pool.par_try_map_retry("batch.cell", max_attempts, cells, |_, cell| {
        run_one(workloads, &dense, cell)
    })
}

fn run_one(
    workloads: &[Workload],
    dense: &[DenseWorkload],
    cell: &CellSpec,
) -> Result<SimResult, BatchError> {
    let w = workloads
        .get(cell.workload)
        .ok_or(BatchError::BadWorkloadIndex {
            index: cell.workload,
            len: workloads.len(),
        })?;
    if !mcp_policies::FAMILIES.contains(&cell.family.as_str()) {
        return Err(BatchError::UnknownFamily(cell.family.clone()));
    }
    if !mcp_policies::family_applicable(&cell.family, w) {
        return Err(BatchError::Inapplicable(cell.family.clone()));
    }
    let cfg = cell.config();
    if let Some(schedule) = cell.dynamic_capacity() {
        // Dynamic K(t): the dense SoA layout never frees a cell, which a
        // shrink eviction must do, so every family runs the per-cell
        // capacity-aware event engine here.
        let strategy = mcp_policies::build_family(&cell.family, w, cfg, cell.seed)
            .expect("family is registered");
        return Ok(simulate_with_capacity(w, cfg, schedule.clone(), strategy)?);
    }
    match DensePolicy::parse(&cell.family) {
        Some(policy) => {
            cfg.validate(w).map_err(SimError::from)?;
            Ok(
                SCRATCH
                    .with(|s| dense_run(&dense[cell.workload], cfg, policy, &mut s.borrow_mut())),
            )
        }
        None => {
            let strategy = mcp_policies::build_family(&cell.family, w, cfg, cell.seed)
                .expect("family is registered");
            Ok(simulate(w, cfg, strategy)?)
        }
    }
}

/// Run one cell the per-run way: a fresh `Simulator` and a fresh strategy,
/// no shared arenas — the reference the batch path is differentially
/// checked against (tournament sampling cross-check, tests, benches).
pub fn run_cell_reference(
    workloads: &[Workload],
    cell: &CellSpec,
) -> Result<SimResult, BatchError> {
    let w = workloads
        .get(cell.workload)
        .ok_or(BatchError::BadWorkloadIndex {
            index: cell.workload,
            len: workloads.len(),
        })?;
    if !mcp_policies::FAMILIES.contains(&cell.family.as_str()) {
        return Err(BatchError::UnknownFamily(cell.family.clone()));
    }
    if !mcp_policies::family_applicable(&cell.family, w) {
        return Err(BatchError::Inapplicable(cell.family.clone()));
    }
    let cfg = cell.config();
    let strategy =
        mcp_policies::build_family(&cell.family, w, cfg, cell.seed).expect("family is registered");
    match cell.dynamic_capacity() {
        Some(schedule) => Ok(simulate_with_capacity(w, cfg, schedule.clone(), strategy)?),
        None => Ok(simulate(w, cfg, strategy)?),
    }
}
