//! Declarative cell and workload specifications for batch grids.

use mcp_core::{CapacitySchedule, SimConfig, Workload};

/// The benchmark workload families a tournament grid can enumerate by
/// name. Each maps to one `mcp_workloads` generator with parameters
/// derived from the spec's `cores`/`len`/`universe` knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Per-core uniform traffic over disjoint universes.
    Uniform,
    /// Per-core Zipf(0.9) over disjoint universes.
    Zipf,
    /// All cores drawing Zipf(0.9) from one shared universe
    /// (Kamali & Xu-style benchmark distribution).
    ZipfShared,
    /// Disjoint phased working sets.
    Phased,
    /// A shared working-set window drifting across a common universe.
    Drift,
    /// Private Zipf traffic mixed with a shared hot region.
    SharedHotset,
    /// Staggered thrash (the sparse large-τ regime).
    Staggered,
    /// Dense hit-runs alternating with cold miss-bursts.
    Bursty,
}

impl WorkloadKind {
    /// Every kind, in canonical grid order.
    pub const ALL: &'static [WorkloadKind] = &[
        WorkloadKind::Uniform,
        WorkloadKind::Zipf,
        WorkloadKind::ZipfShared,
        WorkloadKind::Phased,
        WorkloadKind::Drift,
        WorkloadKind::SharedHotset,
        WorkloadKind::Staggered,
        WorkloadKind::Bursty,
    ];

    /// The grid identifier (`mcp tournament --workloads …`).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Zipf => "zipf",
            WorkloadKind::ZipfShared => "zipf-shared",
            WorkloadKind::Phased => "phased",
            WorkloadKind::Drift => "drift",
            WorkloadKind::SharedHotset => "shared-hotset",
            WorkloadKind::Staggered => "staggered",
            WorkloadKind::Bursty => "bursty",
        }
    }

    /// Inverse of [`WorkloadKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        WorkloadKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// A seeded, materializable workload description: the unit the tournament
/// grid and the bench harness enumerate. Two specs with equal fields
/// materialize equal workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Generator family.
    pub kind: WorkloadKind,
    /// Number of cores `p`.
    pub cores: usize,
    /// Requests per core.
    pub len: usize,
    /// Page-universe knob: the per-core universe for the disjoint kinds,
    /// the shared universe for the shared kinds.
    pub universe: u32,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the workload this spec describes.
    pub fn materialize(&self) -> Workload {
        let (p, n, u, seed) = (self.cores, self.len, self.universe.max(1), self.seed);
        match self.kind {
            WorkloadKind::Uniform => mcp_workloads::uniform(p, n, u, seed),
            WorkloadKind::Zipf => mcp_workloads::zipf(p, n, u, 0.9, seed),
            WorkloadKind::ZipfShared => mcp_workloads::zipf_shared(p, n, u, 0.9, seed),
            WorkloadKind::Phased => {
                mcp_workloads::phased(p, n, (u / 4).max(1), (n / 8).max(1), seed)
            }
            WorkloadKind::Drift => {
                mcp_workloads::drifting_phases(p, n, u, (u / 4).max(1), (n / 8).max(1), seed)
            }
            WorkloadKind::SharedHotset => {
                mcp_workloads::shared_hotset(p, n, u, (u / 4).max(1), 0.3, seed)
            }
            WorkloadKind::Staggered => mcp_workloads::staggered_thrash(p, n, u, p, seed),
            WorkloadKind::Bursty => mcp_workloads::bursty(p, n, (u / 4).max(1), 8, seed),
        }
    }

    /// Human-readable grid label, e.g. `zipf-shared/s3`.
    pub fn label(&self) -> String {
        format!("{}/s{}", self.kind.name(), self.seed)
    }
}

/// One simulation cell of a batch: which workload (by index into the
/// batch's workload table), which strategy family, and the cache
/// parameters. `seed` drives the randomized families only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSpec {
    /// Index into the `workloads` slice passed to
    /// [`crate::run_cells`].
    pub workload: usize,
    /// Strategy family identifier (see [`mcp_policies::FAMILIES`]).
    pub family: String,
    /// Cache size `K`.
    pub cache_size: usize,
    /// Fault delay `τ`.
    pub tau: u64,
    /// Seed for randomized families.
    pub seed: u64,
    /// Dynamic capacity schedule `K(t)`, if any. `None` (and
    /// `Some(fixed)` matching `cache_size`) runs the constant-capacity
    /// paths, including the dense SoA fast path; a genuinely dynamic
    /// schedule routes the cell through the per-run event engine for
    /// every family, because shrink evictions violate the dense layout's
    /// cells-never-free invariant.
    pub capacity: Option<CapacitySchedule>,
}

impl CellSpec {
    /// The cell's simulator configuration.
    pub fn config(&self) -> SimConfig {
        SimConfig::new(self.cache_size, self.tau)
    }

    /// The dynamic schedule this cell must run under, or `None` when the
    /// constant-capacity engines apply. A `Some(fixed)` schedule that
    /// *matches* `cache_size` is constant capacity by construction; a
    /// mismatched fixed schedule is returned so the capacity-aware engine
    /// can reject it with the same typed error every other engine uses.
    pub fn dynamic_capacity(&self) -> Option<&CapacitySchedule> {
        self.capacity
            .as_ref()
            .filter(|c| !c.is_fixed() || c.initial_k() != self.cache_size)
    }
}
