//! The dense fast path: a structure-of-arrays re-implementation of
//! `Simulator` + `Shared<P>` for the six classic eviction policies, laid
//! out so a whole batch of cells runs through reusable flat arenas.
//!
//! ## Why it is exact
//!
//! The event engine's observable state per cell is (cache contents, fetch
//! deadlines, policy ordering state, stamp counter). This module mirrors
//! each piece with an array indexed by *dense page id* or *cell index*:
//!
//! * **Residency is lazy.** The event engine promotes a `Fetching` cell to
//!   `Present` at the start of the step where its deadline `t + τ + 1`
//!   falls due (completion heap or the owning core's own wake-up). Because
//!   promotion has no policy callback and precedes pinning and serving
//!   within the step, a cell is observably resident iff `ready ≤ t` — so
//!   the arena stores only the deadline and compares, never promotes.
//! * **Cells never empty.** `Shared` always picks the lowest-index empty
//!   cell, and every eviction is immediately followed by a fetch into the
//!   same cell, so cells fill in index order and never free: the empty set
//!   is exactly `used..K` and empty-cell choice is a cursor bump.
//! * **Stamps are unique.** `Shared` draws one fresh stamp per served
//!   request (pre-incremented, first stamp 1). All six policies' victim
//!   orders reduce to arg-min/arg-max over `(count, stamp)` keys that the
//!   unique stamps make total, so array scans reproduce the intrusive
//!   list / `BTreeSet` walks exactly (see each `choose_*` below).
//! * **Pins are serial-tagged.** A page requested this step is pinned
//!   before any serve; the arena tags the page with the step's pin serial
//!   instead of setting and clearing bits.
//!
//! Arenas are sized to the high-water mark of the batch and reset by
//! bumping an epoch counter (page arrays) or a cursor (cell arrays) — no
//! per-run clearing, no per-run allocation beyond the returned result.

use mcp_core::{FxHashMap, SimConfig, SimResult, Time, Workload};

/// A workload re-keyed to dense page ids (`0..num_pages`, first-appearance
/// order) with all cores' sequences in one flat arena. Built once per
/// workload and shared by every cell that runs it.
#[derive(Clone, Debug)]
pub struct DenseWorkload {
    num_pages: u32,
    /// `offsets[c]..offsets[c + 1]` slices core `c` out of `seq`.
    offsets: Vec<usize>,
    seq: Vec<u32>,
}

impl DenseWorkload {
    /// Re-key `w` to dense ids. Page identity is preserved (two requests
    /// map to the same dense id iff they named the same page), which is
    /// all the simulation semantics observe: no policy's victim order
    /// depends on raw page numbers (unique stamps break every tie first).
    pub fn build(w: &Workload) -> Self {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        let mut seq = Vec::with_capacity(w.total_len());
        let mut offsets = Vec::with_capacity(w.num_cores() + 1);
        offsets.push(0);
        for core in 0..w.num_cores() {
            for page in w.sequence(core) {
                let next = map.len() as u32;
                seq.push(*map.entry(page.0).or_insert(next));
            }
            offsets.push(seq.len());
        }
        DenseWorkload {
            num_pages: map.len() as u32,
            offsets,
            seq,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    #[inline]
    fn core(&self, c: usize) -> &[u32] {
        &self.seq[self.offsets[c]..self.offsets[c + 1]]
    }
}

/// The eviction policies with a dense fast path. Every other family runs
/// through the generic per-cell fallback in [`crate::engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DensePolicy {
    /// `S_LRU` (shared LRU).
    Lru,
    /// `S_FIFO`.
    Fifo,
    /// `S_CLOCK` (second chance).
    Clock,
    /// `S_LFU`.
    Lfu,
    /// `S_MRU`.
    Mru,
    /// `S_FWF` (flush-when-full, epoch-based).
    Fwf,
}

impl DensePolicy {
    /// Map a family identifier (as in `mcp_policies::FAMILIES`) to its
    /// dense engine, if it has one.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "lru" => DensePolicy::Lru,
            "fifo" => DensePolicy::Fifo,
            "clock" => DensePolicy::Clock,
            "lfu" => DensePolicy::Lfu,
            "mru" => DensePolicy::Mru,
            "fwf" => DensePolicy::Fwf,
            _ => return None,
        })
    }
}

/// Reusable per-worker arenas. One `Scratch` serves an arbitrary number of
/// sequential [`dense_run`] calls; arrays only ever grow (to the batch's
/// high-water page count / `K` / core count) and are invalidated by epoch
/// counter or cursor, never cleared.
#[derive(Default)]
pub struct Scratch {
    /// Current run's epoch; `page_*` entries are valid iff their tag
    /// matches. Starts at 0 and is bumped before each run, so tag 0
    /// (the `resize` fill value) is never current.
    epoch: u64,
    /// Dense page → occupied cell (valid iff `page_epoch` matches).
    page_cell: Vec<u32>,
    page_epoch: Vec<u64>,
    /// Dense page → pin serial of the step that pinned it.
    pin_mark: Vec<u64>,
    /// Strictly increasing across steps *and* runs, so stale marks can
    /// never collide.
    pin_serial: u64,
    /// Cell → occupant's dense page id. Cell entries below the run's
    /// `used` cursor are always fully initialized by the insertion that
    /// claimed the cell, so none of these need resetting.
    cell_page: Vec<u32>,
    /// Cell → time the occupant is (or became) resident: `ready ≤ t` is
    /// the residency test.
    cell_ready: Vec<Time>,
    /// Cell → last-use stamp (LRU/MRU) or insert stamp (FIFO/LFU).
    recency: Vec<u64>,
    /// Cell → use count (LFU only).
    freq: Vec<u64>,
    /// Cell → touched-since-flush (FWF) or reference bit (CLOCK).
    flag: Vec<bool>,
    /// CLOCK's ring of cells in insertion order, plus its hand.
    ring: Vec<u32>,
    hand: usize,
    /// Per-core next-request index and wake-up time (`Time::MAX` when the
    /// core is finished).
    pos: Vec<usize>,
    ready: Vec<Time>,
    /// Cores due at the step being served, ascending.
    due: Vec<u32>,
}

impl Scratch {
    /// Fresh arenas (they grow to fit on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, pages: usize, k: usize, p: usize) {
        self.epoch += 1;
        if self.page_cell.len() < pages {
            self.page_cell.resize(pages, 0);
            self.page_epoch.resize(pages, 0);
            self.pin_mark.resize(pages, 0);
        }
        if self.cell_page.len() < k {
            self.cell_page.resize(k, 0);
            self.cell_ready.resize(k, 0);
            self.recency.resize(k, 0);
            self.freq.resize(k, 0);
            self.flag.resize(k, false);
        }
        self.pos.clear();
        self.pos.resize(p, 0);
        self.ready.clear();
        self.ready.resize(p, 1);
        self.ring.clear();
        self.hand = 0;
    }

    /// Evictable this step: resident and not pinned by the current serial.
    #[inline]
    fn eligible(&self, cell: usize, t: Time, pin: u64) -> bool {
        self.cell_ready[cell] <= t && self.pin_mark[self.cell_page[cell] as usize] != pin
    }
}

/// Run one cell through the dense engine. `cfg` must already be validated
/// against the original workload (the engine entry point does this);
/// `scratch` may be shared across any number of sequential runs.
///
/// Returns exactly the `SimResult` that `simulate(w, cfg, Shared::new(P))`
/// produces, field for field.
pub fn dense_run(
    w: &DenseWorkload,
    cfg: SimConfig,
    policy: DensePolicy,
    s: &mut Scratch,
) -> SimResult {
    let p = w.num_cores();
    let k = cfg.cache_size;
    let tau = cfg.tau;
    s.begin(w.num_pages as usize, k, p);
    for c in 0..p {
        if w.core(c).is_empty() {
            s.ready[c] = Time::MAX;
        }
    }
    let mut faults = vec![0u64; p];
    let mut hits = vec![0u64; p];
    let mut fault_times: Vec<Vec<Time>> = vec![Vec::new(); p];
    let mut makespan: Time = 0;
    // `Shared` pre-increments its stamp: the first drawn stamp is 1.
    let mut stamp: u64 = 0;
    // Cells in use; the empty set is exactly `used..k` (see module docs).
    let mut used: usize = 0;

    loop {
        // The next event time: the earliest core wake-up. (Shared
        // strategies declare no voluntary times, so request issues are
        // the only events.)
        let mut t = Time::MAX;
        for &r in &s.ready {
            if r < t {
                t = r;
            }
        }
        if t == Time::MAX {
            break;
        }

        // Pin every page requested this step before any serve: parallel
        // reads require R(x) ⊆ C'. Absent pages have no cell to pin; a
        // page fetched *during* this step enters as Fetching, which is
        // never evictable anyway.
        s.pin_serial += 1;
        let pin = s.pin_serial;
        s.due.clear();
        for c in 0..p {
            if s.ready[c] == t {
                s.due.push(c as u32);
                let pg = w.core(c)[s.pos[c]] as usize;
                if s.page_epoch[pg] == s.epoch {
                    s.pin_mark[pg] = pin;
                }
            }
        }

        // Serve in increasing core order (`due` is ascending by
        // construction).
        for di in 0..s.due.len() {
            let c = s.due[di] as usize;
            let seq = w.core(c);
            let pg = seq[s.pos[c]] as usize;
            if s.page_epoch[pg] == s.epoch {
                let cell = s.page_cell[pg] as usize;
                stamp += 1;
                if s.cell_ready[cell] <= t {
                    // Hit: `Shared::on_hit` → policy.on_access.
                    hits[c] += 1;
                    on_access(s, policy, cell, stamp);
                    s.ready[c] = t + 1;
                    makespan = makespan.max(t);
                } else {
                    // In flight for another core: fault, no new cell.
                    // `Shared::on_shared_fetch_miss` → policy.on_access.
                    faults[c] += 1;
                    fault_times[c].push(t);
                    on_access(s, policy, cell, stamp);
                    s.ready[c] = t + tau + 1;
                    makespan = makespan.max(t + tau);
                }
            } else {
                // Absent: fault, pick a cell, evict if occupied, fetch.
                faults[c] += 1;
                fault_times[c].push(t);
                let cell = if used < k {
                    used += 1;
                    used - 1
                } else {
                    let victim = choose_victim(s, policy, t, pin, used);
                    s.page_epoch[s.cell_page[victim] as usize] = 0; // unmap
                    on_remove(s, policy, victim);
                    victim
                };
                s.page_epoch[pg] = s.epoch;
                s.page_cell[pg] = cell as u32;
                s.cell_page[cell] = pg as u32;
                s.cell_ready[cell] = t + tau + 1;
                stamp += 1;
                on_insert(s, policy, cell, stamp);
                s.ready[c] = t + tau + 1;
                makespan = makespan.max(t + tau);
            }
            s.pos[c] += 1;
            if s.pos[c] == seq.len() {
                s.ready[c] = Time::MAX;
            }
        }
    }

    SimResult {
        faults,
        hits,
        makespan,
        fault_times,
        config: cfg,
    }
}

#[inline]
fn on_insert(s: &mut Scratch, policy: DensePolicy, cell: usize, stamp: u64) {
    match policy {
        // LRU/MRU track last use; FIFO/LFU keep the insert stamp.
        DensePolicy::Lru | DensePolicy::Mru | DensePolicy::Fifo => s.recency[cell] = stamp,
        DensePolicy::Lfu => {
            s.recency[cell] = stamp;
            s.freq[cell] = 1;
        }
        DensePolicy::Fwf => s.flag[cell] = true,
        DensePolicy::Clock => {
            s.ring.push(cell as u32);
            s.flag[cell] = true;
        }
    }
}

#[inline]
fn on_access(s: &mut Scratch, policy: DensePolicy, cell: usize, stamp: u64) {
    match policy {
        DensePolicy::Lru | DensePolicy::Mru => s.recency[cell] = stamp,
        DensePolicy::Fifo => {} // FIFO ignores accesses
        DensePolicy::Lfu => s.freq[cell] += 1,
        DensePolicy::Fwf | DensePolicy::Clock => s.flag[cell] = true,
    }
}

#[inline]
fn on_remove(s: &mut Scratch, policy: DensePolicy, cell: usize) {
    // Stamp/flag state is overwritten by the insertion that refills the
    // cell; only CLOCK's ring has structure to unlink (`Clock::on_remove`).
    if policy == DensePolicy::Clock {
        let pos = s
            .ring
            .iter()
            .position(|&c| c == cell as u32)
            .expect("ring cell present");
        s.ring.remove(pos);
        if s.hand > pos {
            s.hand -= 1;
        }
        if !s.ring.is_empty() {
            s.hand %= s.ring.len();
        } else {
            s.hand = 0;
        }
    }
}

fn choose_victim(s: &mut Scratch, policy: DensePolicy, t: Time, pin: u64, used: usize) -> usize {
    match policy {
        // First minimal eligible stamp ≡ the walk from the least-recent
        // end of `Lru`'s intrusive list (stamps unique).
        DensePolicy::Lru => scan_min(s, t, pin, used, |s, c| s.recency[c]),
        // ≡ the walk of `Fifo`'s `(insert stamp, page)` BTreeSet.
        DensePolicy::Fifo => scan_min(s, t, pin, used, |s, c| s.recency[c]),
        // ≡ the walk of `Lfu`'s `(count, insert stamp, page)` BTreeSet:
        // insert stamps are unique, so the pair is a total order.
        DensePolicy::Lfu => scan_min(s, t, pin, used, |s, c| (s.freq[c], s.recency[c])),
        // `Mru::choose_victim` is `max_by_key` over candidates collected
        // in cell order; stamps unique ⇒ a single maximum.
        DensePolicy::Mru => {
            let mut best = usize::MAX;
            for c in 0..used {
                if s.eligible(c, t, pin) && (best == usize::MAX || s.recency[c] > s.recency[best]) {
                    best = c;
                }
            }
            debug_assert_ne!(best, usize::MAX, "candidates nonempty");
            best
        }
        // `Fwf::choose_victim`: first untouched candidate in cell order,
        // else flush every managed page's bit and take the first
        // candidate.
        DensePolicy::Fwf => {
            let mut first = usize::MAX;
            for c in 0..used {
                if s.eligible(c, t, pin) {
                    if !s.flag[c] {
                        return c;
                    }
                    if first == usize::MAX {
                        first = c;
                    }
                }
            }
            debug_assert_ne!(first, usize::MAX, "candidates nonempty");
            for f in &mut s.flag[..used] {
                *f = false;
            }
            first
        }
        // `Clock::sweep`, verbatim, over cells instead of pages; the
        // unreachable two-sweep fallback is the first eligible cell in
        // cell order (`candidates.next()`).
        DensePolicy::Clock => {
            for _ in 0..2 * s.ring.len().max(1) {
                let cell = s.ring[s.hand] as usize;
                if s.flag[cell] {
                    s.flag[cell] = false;
                    s.hand = (s.hand + 1) % s.ring.len();
                } else if s.eligible(cell, t, pin) {
                    s.hand = (s.hand + 1) % s.ring.len();
                    return cell;
                } else {
                    s.hand = (s.hand + 1) % s.ring.len();
                }
            }
            (0..used)
                .find(|&c| s.eligible(c, t, pin))
                .expect("candidates nonempty")
        }
    }
}

/// First eligible cell minimizing `key` — the arg-min the ordered-set
/// policies report, since unique stamps make every key distinct.
#[inline]
fn scan_min<K: Ord + Copy>(
    s: &Scratch,
    t: Time,
    pin: u64,
    used: usize,
    key: impl Fn(&Scratch, usize) -> K,
) -> usize {
    let mut best = usize::MAX;
    let mut best_key = None;
    for c in 0..used {
        if s.eligible(c, t, pin) {
            let k = key(s, c);
            if best_key.is_none_or(|bk| k < bk) {
                best = c;
                best_key = Some(k);
            }
        }
    }
    debug_assert_ne!(best, usize::MAX, "candidates nonempty");
    best
}
