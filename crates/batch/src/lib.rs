//! # mcp-batch — structure-of-arrays batch simulation engine
//!
//! Tournament-scale evaluation runs thousands of independent
//! `(strategy × workload × K × τ)` cells. The per-run path pays full
//! setup per cell: generate the workload, build a fresh strategy with its
//! hash maps and ordered sets, run one `Simulator`, drop everything. This
//! crate amortizes all of it across a batch:
//!
//! * workloads are materialized **once** and shared by every cell that
//!   runs them, re-keyed to dense page ids ([`DenseWorkload`]);
//! * the six classic eviction policies run through a flat
//!   structure-of-arrays engine ([`dense_run`]) whose arenas — page
//!   table/occupancy, recency/frequency stamps, CLOCK ring — live in a
//!   per-worker [`Scratch`] sized once per batch and reset by epoch
//!   counter and cursor instead of clearing;
//! * cells fan out over [`mcp_exec::Pool`] in deterministic cell-index
//!   order, so results are bit-identical at every `--jobs` level;
//! * every other registered family falls back to a fresh per-cell
//!   `Simulator` via the [`mcp_policies::families`] registry, keeping the
//!   whole grid surface available.
//!
//! Both paths produce exactly the `SimResult` that
//! `mcp_core::simulate` reports on the same instance — the batch engine
//! is a performance play, not a semantics fork; see `dense.rs` for the
//! equivalence argument and `tests/batch_differential.rs` for the proof
//! by differential testing.

#![warn(missing_docs)]

pub mod dense;
pub mod engine;
pub mod spec;

pub use dense::{dense_run, DensePolicy, DenseWorkload, Scratch};
pub use engine::{run_cell_reference, run_cells, run_cells_quarantined, BatchError};
pub use spec::{CellSpec, WorkloadKind, WorkloadSpec};
