//! Differential proof of the batch engine: every cell's `SimResult` —
//! fault counts, hit counts, fault times, makespan — must be bit-identical
//! to a fresh per-run `Simulator` on the same instance, for every family,
//! on disjoint and shared (fetch-colliding) workloads, at every worker
//! count.

use mcp_batch::{run_cell_reference, run_cells, CellSpec};
use mcp_core::Workload;
use mcp_workloads::{
    bursty, drifting_phases, phased, shared_hotset, staggered_thrash, uniform, zipf, zipf_shared,
};
use proptest::prelude::*;

const DENSE: &[&str] = &["lru", "fifo", "clock", "lfu", "mru", "fwf"];

/// A workload mix that exercises hits, capacity evictions, shared-fetch
/// misses, pinning collisions, and finished-core staggering.
fn workload_table() -> Vec<Workload> {
    vec![
        uniform(3, 60, 12, 1),
        zipf(2, 80, 16, 0.9, 2),
        phased(3, 90, 6, 11, 3),
        zipf_shared(3, 80, 10, 0.9, 4),
        drifting_phases(2, 70, 64, 8, 9, 5),
        shared_hotset(3, 60, 8, 4, 0.5, 6),
        staggered_thrash(4, 50, 8, 3, 7),
        bursty(2, 60, 4, 6, 8),
        // Deliberate total collision: both cores request the same pages in
        // lockstep, so with τ > 0 every other request is a shared-fetch
        // miss on a mid-flight cell.
        Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![1, 2, 3, 1, 2, 3]]).unwrap(),
        // One finished-immediately core (empty sequence) next to a live one.
        Workload::from_u32([vec![], vec![5, 6, 5, 7, 5, 6]]).unwrap(),
    ]
}

fn grid(workloads: &[Workload]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let p = w.num_cores();
        for family in DENSE {
            for k in [p.max(2), p + 3, 2 * p + 5] {
                for tau in [0u64, 1, 3, 16] {
                    cells.push(CellSpec {
                        workload: wi,
                        family: family.to_string(),
                        cache_size: k,
                        tau,
                        seed: 0xBA7C4 ^ wi as u64,
                        capacity: None,
                    });
                }
            }
        }
    }
    cells
}

#[test]
fn dense_families_match_per_run_simulator_exactly() {
    let workloads = workload_table();
    let cells = grid(&workloads);
    let batch = run_cells(&workloads, &cells);
    assert!(batch.len() == cells.len());
    for (cell, got) in cells.iter().zip(&batch) {
        let want = run_cell_reference(&workloads, cell);
        assert_eq!(
            got, &want,
            "batch vs per-run mismatch: family={} workload={} K={} tau={}",
            cell.family, cell.workload, cell.cache_size, cell.tau
        );
    }
}

#[test]
fn fallback_families_match_per_run_simulator() {
    // Non-dense families take the generic path; spot-check that the
    // plumbing (registry, seeds, applicability) is faithful, including an
    // inapplicable pair and an unknown family.
    let workloads = workload_table();
    let mut cells = Vec::new();
    for family in [
        "lru2",
        "rand",
        "mark",
        "mark-rand",
        "partition",
        "sacrifice",
    ] {
        for wi in [0usize, 3] {
            let p = workloads[wi].num_cores();
            cells.push(CellSpec {
                workload: wi,
                family: family.to_string(),
                cache_size: p + 2,
                tau: 2,
                seed: 99,
                capacity: None,
            });
        }
    }
    cells.push(CellSpec {
        workload: 0,
        family: "no-such-family".into(),
        cache_size: 4,
        tau: 0,
        seed: 0,
        capacity: None,
    });
    let batch = run_cells(&workloads, &cells);
    for (cell, got) in cells.iter().zip(&batch) {
        let want = run_cell_reference(&workloads, cell);
        assert_eq!(
            got, &want,
            "family={} workload={}",
            cell.family, cell.workload
        );
    }
    // The shared-universe workload (index 3) rejects `sacrifice`, and the
    // unknown family errors — as typed errors, not panics.
    assert!(batch.iter().filter(|r| r.is_err()).count() == 2);
}

#[test]
fn results_are_bit_identical_at_every_jobs_level() {
    let workloads = workload_table();
    let cells = grid(&workloads);
    let mut baseline = None;
    for jobs in [1usize, 2, 4] {
        mcp_exec::set_jobs(Some(jobs));
        let got = run_cells(&workloads, &cells);
        match &baseline {
            None => baseline = Some(got),
            Some(want) => assert_eq!(&got, want, "jobs={jobs} diverged from jobs=1"),
        }
    }
    mcp_exec::set_jobs(None);
}

#[test]
fn scratch_reuse_across_batches_is_invisible() {
    // Run the same grid twice through the same process (same thread-local
    // arenas, epochs advanced) and a permuted variant in between: reused
    // arenas must not leak state between cells or batches.
    let workloads = workload_table();
    let cells = grid(&workloads);
    mcp_exec::set_jobs(Some(1)); // everything through one worker's arenas
    let first = run_cells(&workloads, &cells);
    let mut reversed = cells.clone();
    reversed.reverse();
    let _ = run_cells(&workloads, &reversed);
    let second = run_cells(&workloads, &cells);
    mcp_exec::set_jobs(None);
    assert_eq!(first, second);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (possibly overlapping) workloads, random K ≥ p and τ: all
    /// six dense families agree with the per-run simulator.
    #[test]
    fn dense_engine_matches_on_random_instances(
        seqs in prop::collection::vec(prop::collection::vec(0u32..12, 0..40), 1..4),
        extra_k in 0usize..6,
        tau in 0u64..8,
    ) {
        let w = Workload::from_u32(seqs).unwrap();
        let p = w.num_cores();
        let workloads = [w];
        for family in DENSE {
            let cell = CellSpec {
                workload: 0,
                family: family.to_string(),
                cache_size: p + extra_k,
                tau,
                seed: 7,
                capacity: None,
            };
            let got = run_cells(&workloads, std::slice::from_ref(&cell));
            let want = run_cell_reference(&workloads, &cell);
            prop_assert_eq!(&got[0], &want, "family={}", family);
        }
    }
}
