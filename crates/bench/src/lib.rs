//! # mcp-bench — shared fixtures for the Criterion benchmarks
//!
//! The benchmark targets reproduce the paper's complexity claims
//! (Theorems 6 and 7: the offline DPs are polynomial in `n` for fixed
//! `K`, `p`) and measure the engineering surfaces a user cares about:
//! simulator throughput, per-policy overhead, and the per-experiment
//! measurement kernels.

use mcp_core::Workload;

/// A fixed-universe two-core family isolating DP cost's `n` dependence.
pub fn dp_family(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 2) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 2) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

/// A wide-universe Zipf workload (1024 pages per core, α = 0.7) whose
/// working set overflows even multi-thousand-cell caches: the fixture for
/// the large-`K` eviction-pressure benchmarks.
pub fn large_k_workload(p: usize, n_per_core: usize, seed: u64) -> Workload {
    mcp_workloads::zipf(p, n_per_core, 1024, 0.7, seed)
}

/// Shared Zipf throughput workload used across the engine benches.
pub fn throughput_workload(p: usize, n_per_core: usize, seed: u64) -> Workload {
    mcp_workloads::zipf(p, n_per_core, 256, 0.9, seed)
}
