//! Design-choice ablations called out in DESIGN.md:
//!
//! * branch-and-bound pruning in Algorithm 1 (on/off);
//! * honest (lazy) vs full transition relation in both DPs;
//! * schedule reconstruction cost;
//! * the Theorem-5 restriction (p-way branching) vs full brute force.

use criterion::{criterion_group, criterion_main, Criterion};
use mcp_bench::dp_family;
use mcp_core::SimConfig;
use mcp_offline::{
    brute_force_min_faults, fitf_restricted_min_faults, ftf_dp, pif_decide, FtfOptions, PifOptions,
};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ftf_pruning");
    let w = dp_family(48);
    let cfg = SimConfig::new(2, 1);
    group.bench_function("pruned", |b| {
        b.iter(|| black_box(ftf_dp(&w, cfg, FtfOptions::default()).unwrap().min_faults))
    });
    group.bench_function("raw", |b| {
        b.iter(|| {
            black_box(
                ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        prune: false,
                        ..Default::default()
                    },
                )
                .unwrap()
                .min_faults,
            )
        })
    });
    group.finish();
}

fn bench_transition_relation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ftf_transitions");
    let w = dp_family(16);
    let cfg = SimConfig::new(2, 1);
    group.bench_function("lazy(honest)", |b| {
        b.iter(|| black_box(ftf_dp(&w, cfg, FtfOptions::default()).unwrap().min_faults))
    });
    group.bench_function("full(dishonest)", |b| {
        b.iter(|| {
            black_box(
                ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        lazy: false,
                        ..Default::default()
                    },
                )
                .unwrap()
                .min_faults,
            )
        })
    });
    group.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ftf_reconstruction");
    let w = dp_family(32);
    let cfg = SimConfig::new(2, 1);
    group.bench_function("value_only", |b| {
        b.iter(|| black_box(ftf_dp(&w, cfg, FtfOptions::default()).unwrap().min_faults))
    });
    group.bench_function("with_schedule", |b| {
        b.iter(|| {
            black_box(
                ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        reconstruct: true,
                        ..Default::default()
                    },
                )
                .unwrap()
                .schedule
                .map(|s| s.decisions.len()),
            )
        })
    });
    group.finish();
}

fn bench_search_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/search_restriction");
    let w = mcp_core::Workload::from_u32([vec![1, 2, 3, 1, 2, 3], vec![11, 12, 11, 12, 11, 12]])
        .unwrap();
    let cfg = SimConfig::new(3, 1);
    group.bench_function("brute_all_victims", |b| {
        b.iter(|| black_box(brute_force_min_faults(&w, cfg, 100_000_000).unwrap()))
    });
    group.bench_function("thm5_restricted", |b| {
        b.iter(|| black_box(fitf_restricted_min_faults(&w, cfg, 100_000_000).unwrap()))
    });
    group.finish();
}

fn bench_pif_pareto_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/pif_bounds_tightness");
    let w = dp_family(24);
    let cfg = SimConfig::new(2, 1);
    let opts = PifOptions {
        full_transitions: false,
        ..Default::default()
    };
    for (label, b0, b1) in [("loose", 24u64, 24u64), ("exact", 12, 12), ("tight", 2, 2)] {
        group.bench_function(label, |bch| {
            bch.iter(|| black_box(pif_decide(&w, cfg, 48, &[b0, b1], opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pruning,
    bench_transition_relation,
    bench_reconstruction,
    bench_search_restriction,
    bench_pif_pareto_pressure
);
criterion_main!(benches);
