//! DP state-engine throughput on the E12/E13 scaling families: how many
//! Algorithm 1 states (and Algorithm 2 layers) per second the engine
//! expands. This is the number that gates the practical reach of the
//! exact solvers — Theorems 6 and 7 are polynomial in `n` but the
//! constant factor decides how far the sweeps can go.
//!
//! The `ftf` group reports true states/sec (the state count is
//! worker-count- and representation-invariant, so pre/post baselines are
//! directly comparable). The `pif` group reports layers (timesteps)
//! served per second for the same reason; per-expansion rates are
//! available from `mcp pif --stats`.
//!
//! Both DPs are pinned to `jobs = 1`: this measures the engine, not the
//! pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcp_bench::dp_family;
use mcp_core::SimConfig;
use mcp_offline::{ftf_dp, pif_decide, FtfOptions, PifOptions};
use std::hint::black_box;

fn ftf_opts() -> FtfOptions {
    FtfOptions {
        jobs: 1,
        ..Default::default()
    }
}

fn bench_ftf(c: &mut Criterion) {
    // E12's family: two cores alternating private pages, K = 2, tau = 1.
    for n in [32usize, 64, 128] {
        let w = dp_family(n);
        let cfg = SimConfig::new(2, 1);
        let states = ftf_dp(&w, cfg, ftf_opts()).unwrap().states;
        let mut group = c.benchmark_group("dp_throughput/ftf_states");
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = ftf_dp(black_box(&w), cfg, ftf_opts()).unwrap();
                black_box(r.min_faults)
            })
        });
        group.finish();
    }
    // The tau axis at fixed n (Theorem 6's (tau+1)^p factor).
    for tau in [4u64, 8] {
        let w = dp_family(32);
        let cfg = SimConfig::new(2, tau);
        let states = ftf_dp(&w, cfg, ftf_opts()).unwrap().states;
        let mut group = c.benchmark_group("dp_throughput/ftf_states_tau");
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, _| {
            b.iter(|| {
                let r = ftf_dp(black_box(&w), cfg, ftf_opts()).unwrap();
                black_box(r.min_faults)
            })
        });
        group.finish();
    }
    // Raw (unpruned) Algorithm 1 — the exact object Theorem 6 bounds.
    {
        let w = dp_family(48);
        let cfg = SimConfig::new(2, 1);
        let opts = FtfOptions {
            prune: false,
            jobs: 1,
            ..Default::default()
        };
        let states = ftf_dp(&w, cfg, opts).unwrap().states;
        let mut group = c.benchmark_group("dp_throughput/ftf_states_raw");
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(BenchmarkId::from_parameter(48), &48, |b, _| {
            b.iter(|| {
                let r = ftf_dp(black_box(&w), cfg, opts).unwrap();
                black_box(r.min_faults)
            })
        });
        group.finish();
    }
}

fn bench_pif(c: &mut Criterion) {
    // E13's family, honest transitions, generous and tight bounds.
    let opts = PifOptions {
        full_transitions: false,
        jobs: 1,
        ..Default::default()
    };
    for n in [16usize, 32, 64] {
        let w = dp_family(n);
        let cfg = SimConfig::new(2, 1);
        let horizon = (2 * n) as u64;
        let bounds = [n as u64, n as u64];
        let mut group = c.benchmark_group("dp_throughput/pif_layers");
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ans = pif_decide(black_box(&w), cfg, horizon, &bounds, opts).unwrap();
                black_box(ans)
            })
        });
        group.finish();
    }
    // Full transition relation (voluntary evictions): the heavy regime.
    {
        let n = 24usize;
        let w = dp_family(n);
        let cfg = SimConfig::new(2, 1);
        let horizon = (2 * n) as u64;
        let bounds = [n as u64, n as u64];
        let opts = PifOptions {
            jobs: 1,
            ..Default::default()
        };
        let mut group = c.benchmark_group("dp_throughput/pif_layers_full");
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ans = pif_decide(black_box(&w), cfg, horizon, &bounds, opts).unwrap();
                black_box(ans)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_ftf, bench_pif);
criterion_main!(benches);
