//! Event engine vs. the scan-based tick engine, on the regimes that
//! motivated the rebuild.
//!
//! The sparse large-τ rows use `staggered_thrash`: after warm-up every
//! core faults with period `τ + 1` and the cores occupy distinct phases,
//! so each timestep serves ≈ 1 core — the tick engine still pays three
//! `O(p)` scans per step while the event engine pays `O(log p)` heap
//! traffic. Target: ≥ 10× on the τ ≥ 64 rows. The dense small-τ rows are
//! the parity guard: with every core due almost every step the event
//! queue must cost no more than the scans it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcp_bench::throughput_workload;
use mcp_core::{simulate, simulate_tick, SimConfig, Workload};
use mcp_policies::shared_lru;
use mcp_workloads::{bursty, staggered_thrash};
use std::hint::black_box;

/// Bench both engines on the same (workload, config) row.
fn engine_pair(group: &mut criterion::BenchmarkGroup<'_>, row: &str, w: &Workload, cfg: SimConfig) {
    group.throughput(Throughput::Elements(w.total_len() as u64));
    group.bench_with_input(BenchmarkId::new(row, "event"), &cfg, |b, &cfg| {
        b.iter(|| {
            let r = simulate(black_box(w), cfg, shared_lru()).unwrap();
            black_box(r.total_faults())
        })
    });
    group.bench_with_input(BenchmarkId::new(row, "tick"), &cfg, |b, &cfg| {
        b.iter(|| {
            let r = simulate_tick(black_box(w), cfg, shared_lru()).unwrap();
            black_box(r.total_faults())
        })
    });
}

fn bench_sparse_large_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine/sparse");
    // p ≤ τ + 1 keeps the staggered phases distinct: ≈ 1 due core/step.
    // The rows use large p because that is where the asymptotic gap
    // lives: the per-request work both engines share (cache + policy
    // bookkeeping, ~100ns) bounds the achievable ratio by
    // (shared + 3p·scan) / (shared + heap), so small p caps the ratio
    // below 10× regardless of scheduler quality.
    for (p, tau, n) in [
        (512usize, 512u64, 600usize),
        (768, 1_024, 850),
        (1_024, 1_024, 1_100),
    ] {
        let w = staggered_thrash(p, n, 16, p, 42);
        let row = format!("staggered_p{p}_tau{tau}");
        engine_pair(&mut group, &row, &w, SimConfig::new(2 * p, tau));
    }
    group.finish();
}

fn bench_bursty(c: &mut Criterion) {
    // Hit runs are dense (every core due each step); cold bursts park a
    // core for `burst · (τ + 1)` ticks — the mixed regime. At p = 8 the
    // tick engine's scans are cheap, so this row (like the dense group)
    // is a no-regression guard, not a speedup showcase.
    let mut group = c.benchmark_group("event_engine/bursty");
    let p = 8;
    let w = bursty(p, 20_000, 4, 8, 7);
    engine_pair(&mut group, "bursty_p8_tau32", &w, SimConfig::new(8 * p, 32));
    group.finish();
}

fn bench_dense_parity(c: &mut Criterion) {
    // Dense small-τ Zipf traffic: the event queue must not regress where
    // the old scans were already cheap and every core is usually due.
    // Measured floor: at τ = 0 (every core due every step, the scans
    // perfectly amortized) the event engine's deferred-list bookkeeping
    // costs within ~5% of the tick engine; any τ ≥ 1 staggers the cores
    // and the event engine pulls ahead.
    let mut group = c.benchmark_group("event_engine/dense");
    let w = throughput_workload(4, 20_000, 9);
    engine_pair(&mut group, "zipf_p4_tau0", &w, SimConfig::new(64, 0));
    engine_pair(&mut group, "zipf_p4_tau2", &w, SimConfig::new(64, 2));
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_large_tau,
    bench_bursty,
    bench_dense_parity
);
criterion_main!(benches);
