//! Theorem 7 bench: Algorithm 2 (PIF decision) runtime vs sequence length
//! and checkpoint horizon, on feasible and infeasible bound vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcp_bench::dp_family;
use mcp_core::SimConfig;
use mcp_offline::{pif_decide, PifOptions};
use std::hint::black_box;

fn opts() -> PifOptions {
    PifOptions {
        full_transitions: false,
        ..Default::default()
    }
}

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_dp/vs_n");
    for n in [8usize, 16, 32, 64] {
        let w = dp_family(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let ok = pif_decide(
                    black_box(&w),
                    SimConfig::new(2, 1),
                    (2 * n) as u64,
                    &[n as u64, n as u64],
                    opts(),
                )
                .unwrap();
                black_box(ok)
            })
        });
    }
    group.finish();
}

fn bench_infeasible(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_dp/infeasible");
    for n in [8usize, 16, 32] {
        let w = dp_family(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let ok = pif_decide(
                    black_box(&w),
                    SimConfig::new(2, 1),
                    (2 * n) as u64,
                    &[1, 1],
                    opts(),
                )
                .unwrap();
                black_box(ok)
            })
        });
    }
    group.finish();
}

fn bench_full_vs_honest(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_dp/transition_relation");
    let w = dp_family(12);
    let cfg = SimConfig::new(2, 1);
    group.bench_function("honest", |b| {
        b.iter(|| black_box(pif_decide(black_box(&w), cfg, 24, &[6, 6], opts()).unwrap()))
    });
    group.bench_function("full", |b| {
        b.iter(|| {
            black_box(
                pif_decide(
                    black_box(&w),
                    cfg,
                    24,
                    &[6, 6],
                    PifOptions {
                        full_transitions: true,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_infeasible, bench_full_vs_honest);
criterion_main!(benches);
