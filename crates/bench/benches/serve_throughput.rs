//! Serve-layer throughput: requests/second sustained through the
//! in-process transport (producer thread → bounded rings → driver →
//! online engine), across both queue disciplines, two shared policies,
//! and two ring depths.
//!
//! The PR gate runs first, outside criterion: a dFCFS/S_LRU stream of
//! 400k requests must sustain **≥ 1M requests/sec aggregate** end to
//! end (admission, dispatch, simulation, metrics bookkeeping). `--quick`
//! (CI smoke) still runs the pipeline but skips the rate assertion —
//! shared CI runners don't guarantee hardware throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcp_core::SimConfig;
use mcp_policies::{shared_fifo, shared_lru};
use mcp_serve::{Discipline, ServeConfig, Server};
use std::hint::black_box;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const CORES: usize = 4;

/// Push `n` seeded requests through a fresh server with one lossless
/// producer thread; returns the number served (always `n`).
fn run_stream(discipline: Discipline, strategy: &str, depth: usize, n: u64) -> u64 {
    // Universe below K: after warm-up the stream is mostly hits, so this
    // measures the serving pipeline, not fault-path bookkeeping.
    let mut cfg = ServeConfig::new(CORES, SimConfig::new(64, 2));
    cfg.discipline = discipline;
    cfg.depth = depth;
    let strategy: mcp_serve::BoxedStrategy = match strategy {
        "lru" => Box::new(shared_lru()),
        _ => Box::new(shared_fifo()),
    };
    let server = Server::new(cfg, strategy).expect("valid serve config");
    let client = server.client();
    let producer = std::thread::spawn(move || {
        let stop = AtomicBool::new(false);
        let mut rng = 0x5EED_CAFE_u64;
        for i in 0..n {
            rng = splitmix64(rng);
            let core = (i % CORES as u64) as u32;
            assert!(client.offer_blocking(core, (rng % 48) as u32, &stop));
        }
        client.close(None);
    });
    let report = server.run(|_| {}).expect("serve run");
    producer.join().unwrap();
    assert_eq!(report.served, n, "lossless path must serve everything");
    report.served
}

fn bench_serve(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");

    // ---- the PR gate, measured outside criterion ----
    let gate_n: u64 = if quick { 50_000 } else { 400_000 };
    let start = Instant::now();
    let served = run_stream(Discipline::Dfcfs, "lru", 1024, gate_n);
    let rate = served as f64 / start.elapsed().as_secs_f64();
    eprintln!("[gate] dfcfs/S_LRU in-process: {:.2}M req/s", rate / 1e6);
    if !quick {
        assert!(
            rate >= 1_000_000.0,
            "serve throughput gate failed: {rate:.0} req/s < 1,000,000"
        );
    }

    let per_iter: u64 = if quick { 20_000 } else { 100_000 };
    for discipline in [Discipline::Cfcfs, Discipline::Dfcfs] {
        for strategy in ["lru", "fifo"] {
            for depth in [256usize, 4096] {
                let mut group = c.benchmark_group(format!(
                    "serve_throughput/{discipline}/{strategy}/depth{depth}"
                ));
                group.throughput(Throughput::Elements(per_iter));
                group.bench_function("stream", |b| {
                    b.iter(|| {
                        black_box(run_stream(black_box(discipline), strategy, depth, per_iter))
                    })
                });
                group.finish();
            }
        }
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
