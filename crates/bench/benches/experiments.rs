//! Per-claim measurement kernels: the inner measurement of each
//! experiment (E01–E11) as a Criterion benchmark, so regressions in the
//! reproduction pipeline itself are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use mcp_core::{simulate, SimConfig};
use mcp_hardness::{reduce_to_pif, run_gadget, PartitionInstance};
use mcp_offline::{optimal_static_partition, PartPolicy};
use mcp_policies::{
    shared_lru, static_partition_belady, static_partition_lru, Partition, SacrificeOffline,
};
use mcp_workloads::{lemma1_lower, lemma2, lemma4_cyclic, thm1_rotating};
use std::hint::black_box;

fn bench_lemma1(c: &mut Criterion) {
    let w = lemma1_lower(&[7, 1], 4_000);
    let cfg = SimConfig::new(8, 0);
    c.bench_function("experiments/lemma1_pair", |b| {
        b.iter(|| {
            let lru = simulate(
                &w,
                cfg,
                static_partition_lru(Partition::from_sizes(vec![7, 1])),
            )
            .unwrap()
            .total_faults();
            let opt = simulate(
                &w,
                cfg,
                static_partition_belady(Partition::from_sizes(vec![7, 1])),
            )
            .unwrap()
            .total_faults();
            black_box((lru, opt))
        })
    });
}

fn bench_lemma2(c: &mut Criterion) {
    let w = lemma2(&[2, 2, 2], 2_000);
    c.bench_function("experiments/lemma2_partition_opt", |b| {
        b.iter(|| black_box(optimal_static_partition(&w, 6, PartPolicy::Lru).faults))
    });
}

fn bench_thm1(c: &mut Criterion) {
    let w = thm1_rotating(2, 4, 1, 32);
    let cfg = SimConfig::new(4, 1);
    c.bench_function("experiments/thm1_shared_vs_partition", |b| {
        b.iter(|| {
            let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
            let part = optimal_static_partition(&w, 4, PartPolicy::Opt).faults;
            black_box((lru, part))
        })
    });
}

fn bench_lemma4(c: &mut Criterion) {
    let w = lemma4_cyclic(4, 16, 8_000);
    let cfg = SimConfig::new(16, 3);
    c.bench_function("experiments/lemma4_lru_vs_offline", |b| {
        b.iter(|| {
            let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
            let off = simulate(&w, cfg, SacrificeOffline::new(3))
                .unwrap()
                .total_faults();
            black_box((lru, off))
        })
    });
}

fn bench_gadget(c: &mut Criterion) {
    let inst = PartitionInstance::new(vec![5, 5, 6, 5, 5, 6, 5, 5, 6], 3, 16).unwrap();
    let red = reduce_to_pif(&inst, 2);
    let groups = inst.solve().unwrap();
    c.bench_function("experiments/thm2_gadget_run", |b| {
        b.iter(|| black_box(run_gadget(&red, &groups)))
    });
}

criterion_group!(
    benches,
    bench_lemma1,
    bench_lemma2,
    bench_thm1,
    bench_lemma4,
    bench_gadget
);
criterion_main!(benches);
