//! Theorem 6 bench: Algorithm 1 (FTF DP) runtime vs sequence length `n`
//! and fault delay `τ`, at fixed `K = 2`, `p = 2`, universe 4 — the claim
//! is polynomial growth in `n` and `(τ+1)^p` in `τ`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcp_bench::dp_family;
use mcp_core::SimConfig;
use mcp_offline::{ftf_dp, FtfOptions};
use std::hint::black_box;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftf_dp/vs_n");
    for n in [8usize, 16, 32, 64, 128] {
        let w = dp_family(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = ftf_dp(black_box(&w), SimConfig::new(2, 1), FtfOptions::default()).unwrap();
                black_box(r.min_faults)
            })
        });
    }
    group.finish();
}

fn bench_vs_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftf_dp/vs_tau");
    let w = dp_family(32);
    for tau in [0u64, 1, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                let r =
                    ftf_dp(black_box(&w), SimConfig::new(2, tau), FtfOptions::default()).unwrap();
                black_box(r.min_faults)
            })
        });
    }
    group.finish();
}

fn bench_vs_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftf_dp/vs_K");
    // Universe 6 so larger caches have configurations to explore.
    let w = mcp_core::Workload::from_u32([
        (0..16).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..16).map(|i| 10 + (i % 3) as u32).collect::<Vec<_>>(),
    ])
    .unwrap();
    for k in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let r = ftf_dp(black_box(&w), SimConfig::new(k, 1), FtfOptions::default()).unwrap();
                black_box(r.min_faults)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_tau, bench_vs_cache);
criterion_main!(benches);
