//! Batch engine vs. the per-run path, on the tournament-shaped grid the
//! engine was built for: many small cells across mixed workload kinds,
//! eviction families, cache sizes, and fetch delays.
//!
//! The per-run baseline pays what every pre-batch sweep paid per cell —
//! workload materialization plus a fresh `Simulator` with a boxed
//! strategy — while the batch row materializes each workload once per
//! grid and advances cells through the dense structure-of-arrays engine
//! with thread-local reusable scratch. Target (the PR gate): ≥ 3×
//! cells/sec on a ≥ 1000-cell mixed-family grid, at bit-identical
//! results (spot-checked here; proven cell-by-cell in
//! `crates/batch/tests/batch_differential.rs` and by `mcp fuzz
//! --profile batch`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcp_batch::{run_cell_reference, run_cells, CellSpec, WorkloadKind, WorkloadSpec};
use mcp_core::Workload;
use std::hint::black_box;

const DENSE_FAMILIES: [&str; 6] = ["lru", "fifo", "clock", "lfu", "mru", "fwf"];

/// The grid: 8 workload kinds × 3 seeds × 3 cache sizes × 3 delays ×
/// 6 families = 1296 cells over 24 distinct workloads.
fn grid() -> (Vec<WorkloadSpec>, Vec<CellSpec>) {
    let mut specs = Vec::new();
    for &kind in WorkloadKind::ALL {
        for seed in 0..3 {
            specs.push(WorkloadSpec {
                kind,
                cores: 4,
                len: 200,
                universe: 64,
                seed,
            });
        }
    }
    let mut cells = Vec::new();
    for wi in 0..specs.len() {
        for k in [8usize, 16, 32] {
            for tau in [0u64, 2, 8] {
                for family in DENSE_FAMILIES {
                    cells.push(CellSpec {
                        workload: wi,
                        family: family.to_string(),
                        cache_size: k,
                        tau,
                        seed: 0,
                        capacity: None,
                    });
                }
            }
        }
    }
    (specs, cells)
}

fn bench_grid(c: &mut Criterion) {
    let (specs, cells) = grid();
    assert!(cells.len() >= 1_000, "gate needs a 1000+ cell grid");

    // Spot-check bit-identity between the two paths before timing them.
    let workloads: Vec<Workload> = specs.iter().map(|s| s.materialize()).collect();
    let batch = run_cells(&workloads, &cells);
    for (i, cell) in cells.iter().enumerate().step_by(131) {
        let spec = &specs[cell.workload];
        let solo = CellSpec {
            workload: 0,
            ..cell.clone()
        };
        let reference = run_cell_reference(&[spec.materialize()], &solo);
        assert_eq!(batch[i], reference, "cell {i} diverged");
    }

    let mut group = c.benchmark_group("batch_engine/mixed_grid_1296_cells");
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("batch", |b| {
        b.iter(|| {
            let workloads: Vec<Workload> =
                mcp_exec::Pool::global().par_map(&specs, |_, spec| spec.materialize());
            let results = run_cells(black_box(&workloads), black_box(&cells));
            black_box(results.len())
        })
    });
    group.bench_function("per_run", |b| {
        b.iter(|| {
            let results = mcp_exec::Pool::global().par_map(&cells, |_, cell| {
                let spec = &specs[cell.workload];
                let solo = CellSpec {
                    workload: 0,
                    ..cell.clone()
                };
                run_cell_reference(&[spec.materialize()], &solo)
            });
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
