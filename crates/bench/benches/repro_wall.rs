//! Wall-clock for the full quick-scale experiment battery — the thing
//! `repro all` does — at `jobs = 1` versus every available worker. The
//! committed `BENCH_repro_wall.json` records the measured speedup on the
//! benchmark machine (on a single-core container both cases coincide;
//! the pool falls back to inline sequential execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcp_analysis::{registry, Scale, Verdict};
use std::hint::black_box;

/// One quick-scale `repro all` pass, exactly as the binary runs it: the
/// experiment fleet fans out over a pool of `jobs` workers (and the
/// sweeps inside each experiment inherit the same setting).
fn run_all(jobs: usize) -> usize {
    mcp_exec::set_jobs(Some(jobs));
    let experiments = registry();
    let selected: Vec<_> = experiments.iter().collect();
    let reports = mcp_exec::Pool::new(jobs).par_map(&selected, |_, e| e.run(Scale::Quick));
    let confirmed = reports
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::Confirmed))
        .count();
    assert_eq!(confirmed, reports.len(), "an experiment failed to confirm");
    confirmed
}

fn bench_repro_wall(c: &mut Criterion) {
    // Zero the measured-time table cells so E12/E13 don't time themselves
    // while being timed.
    mcp_analysis::timing::set_deterministic(true);
    let available = mcp_exec::resolved_jobs();
    let mut group = c.benchmark_group("repro_wall/quick");
    group.bench_with_input(BenchmarkId::from_parameter("jobs=1"), &1usize, |b, &j| {
        b.iter(|| black_box(run_all(j)))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("jobs={available}(available)")),
        &available,
        |b, &j| b.iter(|| black_box(run_all(j))),
    );
    group.finish();
}

criterion_group!(benches, bench_repro_wall);
criterion_main!(benches);
