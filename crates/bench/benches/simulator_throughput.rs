//! Engine throughput: requests served per second by the discrete-time
//! simulator under shared LRU, across core counts, cache sizes and τ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcp_bench::{large_k_workload, throughput_workload};
use mcp_core::{simulate, SimConfig};
use mcp_policies::shared_lru;
use std::hint::black_box;

fn bench_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/cores");
    let n_per_core = 20_000usize;
    for p in [1usize, 2, 4, 8] {
        let w = throughput_workload(p, n_per_core, 42);
        group.throughput(Throughput::Elements((p * n_per_core) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let r = simulate(black_box(&w), SimConfig::new(16 * p, 2), shared_lru()).unwrap();
                black_box(r.total_faults())
            })
        });
    }
    group.finish();
}

fn bench_cache_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/cache_size");
    let w = throughput_workload(4, 20_000, 7);
    group.throughput(Throughput::Elements(80_000));
    for k in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let r = simulate(black_box(&w), SimConfig::new(k, 2), shared_lru()).unwrap();
                black_box(r.total_faults())
            })
        });
    }
    group.finish();
}

fn bench_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/tau");
    let w = throughput_workload(4, 20_000, 9);
    group.throughput(Throughput::Elements(80_000));
    for tau in [0u64, 4, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                let r = simulate(black_box(&w), SimConfig::new(64, tau), shared_lru()).unwrap();
                black_box(r.total_faults())
            })
        });
    }
    group.finish();
}

fn bench_large_k(c: &mut Criterion) {
    // Eviction pressure at cache sizes where any O(K) work per fault
    // dominates: 8 cores × 1024-page universes against K in the thousands.
    let mut group = c.benchmark_group("simulator/large_k");
    let w = large_k_workload(8, 10_000, 11);
    group.throughput(Throughput::Elements(80_000));
    for k in [1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let r = simulate(black_box(&w), SimConfig::new(k, 2), shared_lru()).unwrap();
                black_box(r.total_faults())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cores,
    bench_cache_size,
    bench_tau,
    bench_large_k
);
criterion_main!(benches);
