//! Per-policy engine overhead: the same Zipf workload under each eviction
//! policy and strategy wrapper.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcp_bench::{large_k_workload, throughput_workload};
use mcp_core::{simulate, SimConfig};
use mcp_policies::{
    static_partition_belady, static_partition_lru, Clock, Fifo, Lfu, LruMimicPartition, Marking,
    MarkingTie, Mru, Partition, RandomEvict, Shared, SharedFitf,
};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy/shared");
    let w = throughput_workload(4, 10_000, 3);
    let cfg = SimConfig::new(32, 2);
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("lru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, mcp_policies::shared_lru())
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("fifo", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Fifo::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("clock", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Clock::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("lfu", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Lfu::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("mru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Mru::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(RandomEvict::new(1)))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("marking_lru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Marking::new(MarkingTie::Lru)))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("fitf_offline", |b| {
        b.iter(|| black_box(simulate(&w, cfg, SharedFitf::new()).unwrap().total_faults()))
    });
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy/strategy_wrappers");
    let w = throughput_workload(4, 10_000, 5);
    let cfg = SimConfig::new(32, 2);
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("shared_lru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, mcp_policies::shared_lru())
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("static_partition_lru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, static_partition_lru(Partition::equal(32, 4)))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("static_partition_belady", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, static_partition_belady(Partition::equal(32, 4)))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("lru_mimic_partition", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, LruMimicPartition::new())
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.finish();
}

fn bench_policies_large_k(c: &mut Criterion) {
    // Victim selection under a 1024-cell cache: the intrusive policy
    // structures (and FITF's next-occurrence arrays) versus O(K) scans.
    let mut group = c.benchmark_group("policy/shared_large_k");
    let w = large_k_workload(4, 10_000, 13);
    let cfg = SimConfig::new(1024, 2);
    group.throughput(Throughput::Elements(40_000));
    group.bench_function("lru", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, mcp_policies::shared_lru())
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("fifo", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Fifo::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("clock", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Clock::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("lfu", |b| {
        b.iter(|| {
            black_box(
                simulate(&w, cfg, Shared::new(Lfu::new()))
                    .unwrap()
                    .total_faults(),
            )
        })
    });
    group.bench_function("fitf_offline", |b| {
        b.iter(|| black_box(simulate(&w, cfg, SharedFitf::new()).unwrap().total_faults()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_strategies,
    bench_policies_large_k
);
criterion_main!(benches);
