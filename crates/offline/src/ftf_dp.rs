//! Algorithm 1 of the paper: exact minimum total faults
//! (FINAL-TOTAL-FAULTS) by dynamic programming over
//! `(configuration, position-vector)` states — polynomial in the sequence
//! lengths, exponential in `K` and `p`.
//!
//! States are processed in increasing order of total position (every
//! timestep strictly advances every unfinished sequence, so position sum
//! is a topological order). Optionally reconstructs a replayable schedule
//! witnessing the optimum, which integration tests replay on the
//! simulator to the same fault count.
//!
//! Successor expansion within a bucket fans out over the [`mcp_exec`]
//! pool. The result is deterministic and identical for every worker
//! count: states expand against a per-bucket incumbent snapshot (all
//! terminals in the bucket are scanned first, in canonical [`StateKey`]
//! order), and the expansions merge back sequentially in that same
//! canonical order. A successor's position sum strictly exceeds its
//! parent's, so no expansion in a bucket can affect another state of the
//! same bucket — the parallel fan-out is dependency-free by construction.

use crate::state::{
    for_each_successor_config, pool_for, step_effect, DpError, DpInstance, StateKey,
};
use mcp_core::{PageId, SimConfig, Time, Workload};
use mcp_policies::ReplayDecision;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options for the FTF dynamic program.
#[derive(Clone, Copy, Debug)]
pub struct FtfOptions {
    /// Evict only the overflow on each transition (the honest/lazy
    /// regime). Setting `false` explores the paper's full transition
    /// relation including voluntary (dishonest) evictions — exponentially
    /// more successors; used to probe Theorem 4.
    pub lazy: bool,
    /// Reconstruct a replayable optimal schedule.
    pub reconstruct: bool,
    /// Branch-and-bound pruning against the incumbent terminal value.
    /// Disable to measure the raw state space of Algorithm 1 as published
    /// (the Theorem 6 complexity ablation).
    pub prune: bool,
    /// Abort with [`DpError::TooLarge`] beyond this many states.
    pub max_states: usize,
    /// Worker threads for successor expansion (0 = the process-wide
    /// setting, see [`mcp_exec::resolved_jobs`]). Any value yields the
    /// same result, states count included.
    pub jobs: usize,
}

impl Default for FtfOptions {
    fn default() -> Self {
        FtfOptions {
            lazy: true,
            reconstruct: false,
            prune: true,
            max_states: 4_000_000,
            jobs: 0,
        }
    }
}

/// A replayable optimal schedule: placement decisions per
/// `(core, request_index)` plus (only in non-lazy mode) voluntary
/// evictions per timestep.
#[derive(Clone, Debug, Default)]
pub struct FtfSchedule {
    /// Placement decisions for [`mcp_policies::Replay`].
    pub decisions: HashMap<(usize, usize), ReplayDecision>,
    /// Voluntary evictions by timestep (empty in lazy mode).
    pub voluntary: BTreeMap<Time, Vec<PageId>>,
}

/// Result of the FTF dynamic program.
#[derive(Clone, Debug)]
pub struct FtfResult {
    /// The minimum total number of faults to serve the workload.
    pub min_faults: u64,
    /// Number of distinct states explored.
    pub states: usize,
    /// A witnessing schedule, if requested.
    pub schedule: Option<FtfSchedule>,
}

/// Exact minimum total faults (Algorithm 1). See [`FtfOptions`].
///
/// ```
/// use mcp_core::{SimConfig, Workload};
/// use mcp_offline::{ftf_dp, FtfOptions};
///
/// // Two cores alternating private page pairs, K = 3, tau = 1.
/// let w = Workload::from_u32([vec![1, 2, 1, 2], vec![7, 8, 7, 8]]).unwrap();
/// let r = ftf_dp(&w, SimConfig::new(3, 1), FtfOptions::default()).unwrap();
/// assert_eq!(r.min_faults, 6); // one core keeps both pages, the other thrashes
/// ```
pub fn ftf_dp(
    workload: &Workload,
    cfg: SimConfig,
    options: FtfOptions,
) -> Result<FtfResult, DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    let start: StateKey = (0u64, inst.start_positions());

    // best[state] = (min faults, parent along a best path)
    let mut best: HashMap<StateKey, (u64, Option<StateKey>)> = HashMap::new();
    best.insert(start.clone(), (0, None));

    let sum = |pos: &[u32]| -> u64 { pos.iter().map(|&x| x as u64).sum() };
    let mut buckets: BTreeMap<u64, HashSet<StateKey>> = BTreeMap::new();
    buckets.entry(sum(&start.1)).or_default().insert(start);

    let mut best_terminal: Option<(u64, StateKey)> = None;

    while let Some((&bucket_sum, _)) = buckets.iter().next() {
        let states = buckets.remove(&bucket_sum).expect("bucket exists");
        let mut states: Vec<StateKey> = states.into_iter().collect();
        states.sort_unstable();

        // Terminals first, in canonical order: a deterministic per-bucket
        // incumbent snapshot independent of hash order and worker count.
        for state in &states {
            if !inst.all_finished(&state.1) {
                continue;
            }
            let (faults, _) = best[state];
            if best_terminal
                .as_ref()
                .map(|(f, _)| faults < *f)
                .unwrap_or(true)
            {
                best_terminal = Some((faults, state.clone()));
            }
        }
        let incumbent = best_terminal.as_ref().map(|(f, _)| *f);

        let expandable: Vec<(StateKey, u64)> = states
            .into_iter()
            .filter(|s| !inst.all_finished(&s.1))
            .map(|s| {
                let faults = best[&s].0;
                (s, faults)
            })
            .collect();

        // Successors live in strictly later buckets, so the expansions are
        // mutually independent and can fan out over the pool.
        let expansions =
            pool_for(options.jobs, expandable.len()).par_map(&expandable, |_, (state, faults)| {
                let effect = step_effect(&inst, state.0, &state.1);
                let next_faults = faults + u64::from(effect.fault_count());
                // Prune paths that cannot strictly beat the incumbent
                // terminal (fault counts only grow along a path).
                if options.prune && incumbent.map(|i| next_faults >= i).unwrap_or(false) {
                    return None;
                }
                let mut cfgs = Vec::new();
                for_each_successor_config(&inst, state.0, &effect, options.lazy, |next_cfg| {
                    cfgs.push(next_cfg);
                });
                Some((next_faults, effect.next_positions, cfgs))
            });

        // Merge sequentially, in the same canonical order.
        for ((state, _), expansion) in expandable.iter().zip(expansions) {
            let Some((next_faults, next_positions, cfgs)) = expansion else {
                continue;
            };
            for next_cfg in cfgs {
                let key: StateKey = (next_cfg, next_positions.clone());
                let improved = match best.get(&key) {
                    None => true,
                    Some((f, _)) => next_faults < *f,
                };
                if improved {
                    best.insert(key.clone(), (next_faults, Some(state.clone())));
                    buckets.entry(sum(&key.1)).or_default().insert(key);
                }
            }
            if best.len() > options.max_states {
                return Err(DpError::TooLarge {
                    states: best.len(),
                    cap: options.max_states,
                });
            }
        }
    }

    let (min_faults, terminal) = best_terminal.expect("every instance reaches a terminal state");
    let schedule = if options.reconstruct {
        Some(reconstruct(&inst, &best, terminal))
    } else {
        None
    };
    Ok(FtfResult {
        min_faults,
        states: best.len(),
        schedule,
    })
}

/// Convenience: just the number.
pub fn ftf_min_faults(workload: &Workload, cfg: SimConfig) -> Result<u64, DpError> {
    ftf_dp(workload, cfg, FtfOptions::default()).map(|r| r.min_faults)
}

fn reconstruct(
    inst: &DpInstance,
    best: &HashMap<StateKey, (u64, Option<StateKey>)>,
    terminal: StateKey,
) -> FtfSchedule {
    // Walk parents back to the start, then replay forward.
    let mut chain = vec![terminal];
    while let Some(parent) = best[chain.last().unwrap()].1.clone() {
        chain.push(parent);
    }
    chain.reverse();
    schedule_from_chain(inst, &chain)
}

/// Convert a chain of consecutive DP states (one transition per timestep,
/// starting at the initial state) into a replayable schedule.
pub(crate) fn schedule_from_chain(inst: &DpInstance, chain: &[StateKey]) -> FtfSchedule {
    let mut schedule = FtfSchedule::default();
    for (step_idx, pair) in chain.windows(2).enumerate() {
        let time = step_idx as Time + 1; // transition k serves timestep k
        let (cfg, pos) = &pair[0];
        let (next_cfg, _) = &pair[1];
        let effect = step_effect(inst, *cfg, pos);

        // Pages leaving the configuration this step.
        let mut evicted: Vec<u16> = (0..inst.pages.len() as u16)
            .filter(|b| (cfg & !next_cfg) & (1u64 << b) != 0)
            .collect();

        // Faulting cores in logical order; per distinct page only the
        // lowest core places (later cores join the fetch in flight).
        let mut placed_pages: HashSet<u16> = HashSet::new();
        for core in 0..inst.num_cores() {
            if !effect.seq_faulted[core] {
                continue;
            }
            let x = pos[core] as u64;
            let page = inst.pointed_page(core, x);
            if !placed_pages.insert(page) {
                continue; // shared in-flight fetch: no placement decision
            }
            let index = inst.page_index(x);
            let decision = match evicted.pop() {
                Some(victim) => ReplayDecision::Evict(inst.pages[victim as usize]),
                None => ReplayDecision::UseEmpty,
            };
            schedule.decisions.insert((core, index), decision);
        }
        // Leftover evictions are voluntary (non-lazy mode only). The DP
        // removed these pages in the transition serving `time`, and its
        // `rx ⊆ C'` constraint guarantees none of them is requested (or
        // mid-fetch) at `time`, so replaying the eviction at the start of
        // `time` is equivalent and never collides with the engine's pin of
        // currently requested pages. (Scheduling it at `time + 1` would:
        // the page may be requested — and so pinned — then.) `time` may
        // also be a timestep at which no request is due (every core
        // mid-fetch); `Replay` declares those times via
        // `next_voluntary_time` so the engine steps there instead of
        // fast-forwarding past the eviction.
        if !evicted.is_empty() {
            schedule
                .voluntary
                .entry(time)
                .or_default()
                .extend(evicted.into_iter().map(|b| inst.pages[b as usize]));
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady_seq::belady_faults;
    use mcp_core::simulate;
    use mcp_policies::Replay;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn single_core_matches_belady() {
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 1, 2, 3],
            vec![1, 2, 1, 3, 1, 2, 3, 4, 1],
            vec![4, 3, 2, 1, 1, 2, 3, 4],
        ];
        for vs in cases {
            let w = wl(&[&vs]);
            for k in 1..=3usize {
                for tau in [0u64, 1, 2] {
                    let dp = ftf_min_faults(&w, SimConfig::new(k, tau)).unwrap();
                    let seq: Vec<PageId> = vs.iter().copied().map(PageId).collect();
                    // With one core, delays never change the order of its
                    // own requests: Belady is optimal for every tau.
                    assert_eq!(dp, belady_faults(&seq, k), "seq {vs:?} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn two_cores_everything_fits() {
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let dp = ftf_min_faults(&w, SimConfig::new(4, 1)).unwrap();
        assert_eq!(dp, 4); // cold misses only
    }

    #[test]
    fn two_cores_contended() {
        // K=2, each core alternates two private pages, perfectly aligned:
        // every timestep demands two fresh pages with only two cells, and
        // since every request faults, the alignment never breaks — the
        // optimum is all-faults.
        let w = wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]);
        let dp = ftf_min_faults(&w, SimConfig::new(2, 1)).unwrap();
        assert_eq!(dp, 12);
        // One extra cell breaks the deadlock: one core can keep both its
        // pages while the other thrashes.
        let dp3 = ftf_min_faults(&w, SimConfig::new(3, 1)).unwrap();
        assert!((4..12).contains(&dp3), "got {dp3}");
    }

    #[test]
    fn schedule_replays_to_same_fault_count() {
        let cases: Vec<(Vec<Vec<u32>>, usize, u64)> = vec![
            (vec![vec![1, 2, 3, 1, 2], vec![7, 8, 7, 8, 7]], 3, 1),
            (vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]], 2, 0),
            (vec![vec![1, 2, 3, 2, 1], vec![7, 7, 7, 7, 7]], 3, 2),
        ];
        for (seqs, k, tau) in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            let cfg = SimConfig::new(k, tau);
            let r = ftf_dp(
                &w,
                cfg,
                FtfOptions {
                    reconstruct: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let schedule = r.schedule.unwrap();
            let replay = Replay::new(schedule.decisions).with_voluntary(schedule.voluntary);
            let sim = simulate(&w, cfg, replay).unwrap();
            assert_eq!(
                sim.total_faults(),
                r.min_faults,
                "replayed schedule diverged on {seqs:?} k={k} tau={tau}"
            );
        }
    }

    #[test]
    fn lazy_equals_full_transition_relation_on_tiny_disjoint() {
        // Theorem 4 (honesty is WLOG) in miniature: allowing voluntary
        // evictions must not reduce the optimum on disjoint workloads.
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
            vec![vec![1, 2, 3, 1], vec![7, 7, 7, 7]],
            vec![vec![1, 1, 2, 2], vec![7, 8, 8, 7]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for tau in [0u64, 1] {
                let cfg = SimConfig::new(2, tau);
                let lazy = ftf_dp(&w, cfg, FtfOptions::default()).unwrap().min_faults;
                let full = ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        lazy: false,
                        ..Default::default()
                    },
                )
                .unwrap()
                .min_faults;
                assert_eq!(lazy, full, "{seqs:?} tau={tau}");
            }
        }
    }

    #[test]
    fn dp_lower_bounds_every_online_strategy() {
        use mcp_policies::{shared_fifo, shared_lru};
        let w = wl(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8, 7, 8]]);
        for k in [2usize, 3, 4] {
            for tau in [0u64, 2] {
                let cfg = SimConfig::new(k, tau);
                let opt = ftf_min_faults(&w, cfg).unwrap();
                let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
                let fifo = simulate(&w, cfg, shared_fifo()).unwrap().total_faults();
                assert!(opt <= lru, "k={k} tau={tau}: OPT {opt} > LRU {lru}");
                assert!(opt <= fifo, "k={k} tau={tau}: OPT {opt} > FIFO {fifo}");
            }
        }
    }

    #[test]
    fn pruning_is_an_optimization_not_a_semantic() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 3, 1, 2], vec![7, 8, 7, 8, 7]],
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for k in [2usize, 3] {
                let cfg = SimConfig::new(k, 1);
                let pruned = ftf_dp(&w, cfg, FtfOptions::default()).unwrap();
                let raw = ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        prune: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(pruned.min_faults, raw.min_faults, "{seqs:?} k={k}");
                assert!(pruned.states <= raw.states, "pruning cannot add states");
            }
        }
    }

    #[test]
    fn empty_workload() {
        let w = wl(&[&[], &[]]);
        assert_eq!(ftf_min_faults(&w, SimConfig::new(2, 1)).unwrap(), 0);
    }

    #[test]
    fn state_cap_is_enforced() {
        let long: Vec<u32> = (0..12).map(|i| i % 6).collect();
        let w = wl(&[&long, &long.iter().map(|v| v + 10).collect::<Vec<_>>()]);
        let err = ftf_dp(
            &w,
            SimConfig::new(4, 2),
            FtfOptions {
                max_states: 50,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DpError::TooLarge { .. }));
    }
}
