//! Algorithm 1 of the paper: exact minimum total faults
//! (FINAL-TOTAL-FAULTS) by dynamic programming over
//! `(configuration, position-vector)` states — polynomial in the sequence
//! lengths, exponential in `K` and `p`.
//!
//! States are processed in increasing order of total position (every
//! timestep strictly advances every unfinished sequence, so position sum
//! is a topological order). Optionally reconstructs a replayable schedule
//! witnessing the optimum, which integration tests replay on the
//! simulator to the same fault count.
//!
//! Successor expansion within a bucket fans out over the [`mcp_exec`]
//! pool. The result is deterministic and identical for every worker
//! count: states expand against a per-bucket incumbent snapshot (all
//! terminals in the bucket are scanned first, in canonical [`StateKey`]
//! order), and the expansions merge back sequentially in that same
//! canonical order. A successor's position sum strictly exceeds its
//! parent's, so no expansion in a bucket can affect another state of the
//! same bucket — the parallel fan-out is dependency-free by construction.

use crate::checkpoint::{instance_fingerprint, FtfCheckpoint};
use crate::intern::{StateArena, StateId, NO_STATE};
use crate::state::{
    for_each_successor_config_with, greedy_completion_faults, pool_for, step_effect,
    step_effect_into, with_scratch, DpError, DpInstance, DpStats, StateKey, StepScratch,
};
use mcp_core::{Budget, PageId, SimConfig, Time, TripReason, Workload};
use mcp_policies::ReplayDecision;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options for the FTF dynamic program.
#[derive(Clone, Copy, Debug)]
pub struct FtfOptions {
    /// Evict only the overflow on each transition (the honest/lazy
    /// regime). Setting `false` explores the paper's full transition
    /// relation including voluntary (dishonest) evictions — exponentially
    /// more successors; used to probe Theorem 4.
    pub lazy: bool,
    /// Reconstruct a replayable optimal schedule.
    pub reconstruct: bool,
    /// Branch-and-bound pruning against the incumbent terminal value.
    /// Disable to measure the raw state space of Algorithm 1 as published
    /// (the Theorem 6 complexity ablation).
    pub prune: bool,
    /// Abort with [`DpError::TooLarge`] beyond this many states.
    pub max_states: usize,
    /// Worker threads for successor expansion (0 = the process-wide
    /// setting, see [`mcp_exec::resolved_jobs`]). Any value yields the
    /// same result, states count included.
    pub jobs: usize,
    /// Force the state arena onto its spilled (unpacked) representation
    /// even when the instance fits the inline `u128` packing. Testing
    /// hook: both representations are observationally identical, and the
    /// cross-representation tests prove it. Not part of the checkpoint
    /// fingerprint — snapshots are interchangeable across this flag.
    #[doc(hidden)]
    pub force_spill: bool,
}

impl Default for FtfOptions {
    fn default() -> Self {
        FtfOptions {
            lazy: true,
            reconstruct: false,
            prune: true,
            max_states: 4_000_000,
            jobs: 0,
            force_spill: false,
        }
    }
}

/// A replayable optimal schedule: placement decisions per
/// `(core, request_index)` plus (only in non-lazy mode) voluntary
/// evictions per timestep.
#[derive(Clone, Debug, Default)]
pub struct FtfSchedule {
    /// Placement decisions for [`mcp_policies::Replay`].
    pub decisions: HashMap<(usize, usize), ReplayDecision>,
    /// Voluntary evictions by timestep (empty in lazy mode).
    pub voluntary: BTreeMap<Time, Vec<PageId>>,
}

/// Result of the FTF dynamic program.
#[derive(Clone, Debug)]
pub struct FtfResult {
    /// The minimum total number of faults to serve the workload.
    pub min_faults: u64,
    /// Number of distinct states explored.
    pub states: usize,
    /// A witnessing schedule, if requested.
    pub schedule: Option<FtfSchedule>,
}

/// Outcome of a budget-governed FTF run: either the exact optimum or a
/// truncated anytime result with a valid bracket on it.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // Truncated is the rare exit path
pub enum FtfOutcome {
    /// The DP ran to completion: `min_faults` is exact.
    Complete(FtfResult),
    /// The budget tripped at a layer boundary; the bracket
    /// `[lower_bound, incumbent]` contains the exact optimum and
    /// `checkpoint` resumes the run exactly where it stopped.
    Truncated(FtfTruncated),
}

/// An anytime result from a truncated FTF run.
#[derive(Clone, Debug)]
pub struct FtfTruncated {
    /// Why the budget tripped.
    pub reason: TripReason,
    /// A sound lower bound on the optimum: no completion of any
    /// unexplored path can beat it (the minimum fault count across the
    /// frontier, capped by the incumbent).
    pub lower_bound: u64,
    /// An achievable upper bound: the best terminal found, or a greedy
    /// lazy completion of the cheapest frontier state.
    pub incumbent: u64,
    /// States discovered so far.
    pub states: usize,
    /// States on the unexpanded frontier.
    pub frontier_states: usize,
    /// Snapshot that resumes this run bit-for-bit (see
    /// [`crate::checkpoint`]).
    pub checkpoint: FtfCheckpoint,
}

/// Fingerprint option bits for FTF snapshots: the two options that shape
/// the explored state space.
fn ftf_option_bits(options: &FtfOptions) -> u64 {
    u64::from(options.lazy) | (u64::from(options.prune) << 1)
}

/// Exact minimum total faults (Algorithm 1). See [`FtfOptions`].
///
/// This is the ungoverned entry point: it runs under a state-count
/// budget of `options.max_states` only, and maps truncation to
/// [`DpError::TooLarge`] (carrying the incumbent found so far). For
/// deadlines, cancellation, and checkpoint/resume use
/// [`ftf_dp_governed`].
///
/// ```
/// use mcp_core::{SimConfig, Workload};
/// use mcp_offline::{ftf_dp, FtfOptions};
///
/// // Two cores alternating private page pairs, K = 3, tau = 1.
/// let w = Workload::from_u32([vec![1, 2, 1, 2], vec![7, 8, 7, 8]]).unwrap();
/// let r = ftf_dp(&w, SimConfig::new(3, 1), FtfOptions::default()).unwrap();
/// assert_eq!(r.min_faults, 6); // one core keeps both pages, the other thrashes
/// ```
pub fn ftf_dp(
    workload: &Workload,
    cfg: SimConfig,
    options: FtfOptions,
) -> Result<FtfResult, DpError> {
    let budget = Budget::unlimited().with_max_states(options.max_states);
    match ftf_dp_governed(workload, cfg, options, &budget, None)? {
        FtfOutcome::Complete(r) => Ok(r),
        FtfOutcome::Truncated(t) => Err(DpError::TooLarge {
            states: t.states,
            cap: options.max_states,
            incumbent: Some(t.incumbent),
        }),
    }
}

/// The resume fingerprint a snapshot must carry to be compatible with
/// this `(workload, config, options)` triple. The CLI probes this before
/// resuming so a stale `--checkpoint` file degrades to a warning and a
/// fresh start instead of a hard error deep inside the solver.
pub fn ftf_fingerprint(
    workload: &Workload,
    cfg: SimConfig,
    options: &FtfOptions,
) -> Result<u64, DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    Ok(instance_fingerprint(&inst, ftf_option_bits(options)))
}

/// Budget-governed, resumable FTF (Algorithm 1, anytime form).
///
/// The budget is checked at every bucket (layer) boundary — between
/// boundaries the run is identical to the ungoverned DP, so a governed
/// run that completes returns exactly the ungoverned result. On a trip
/// the run stops *at the boundary* with a [`FtfOutcome::Truncated`]
/// carrying a valid bracket `lower_bound ≤ OPT ≤ incumbent` and a
/// checkpoint. Because buckets are processed in a canonical order that
/// no worker count or hash seed can perturb, resuming from the
/// checkpoint — on any `jobs` setting — reproduces the full run's
/// result bit-for-bit.
///
/// `options.max_states` is ignored here; cap states via
/// [`Budget::with_max_states`] instead. Note the state cap is enforced
/// at boundaries, so the final count may overshoot the cap by up to one
/// bucket's worth of successors.
///
/// `resume` must be a snapshot from the same workload, config, and
/// options (fingerprint-validated; mismatch is a [`DpError::Model`]).
pub fn ftf_dp_governed(
    workload: &Workload,
    cfg: SimConfig,
    options: FtfOptions,
    budget: &Budget,
    resume: Option<&FtfCheckpoint>,
) -> Result<FtfOutcome, DpError> {
    ftf_dp_governed_with_stats(workload, cfg, options, budget, resume).map(|(o, _)| o)
}

/// [`ftf_dp_governed`] plus engine statistics ([`DpStats`]): states,
/// expansions, peak arena bytes, and dedup-table load factor. The
/// outcome is identical to [`ftf_dp_governed`]; the stats are
/// diagnostics only (the `--stats` surface of `mcp opt`).
pub fn ftf_dp_governed_with_stats(
    workload: &Workload,
    cfg: SimConfig,
    options: FtfOptions,
    budget: &Budget,
    resume: Option<&FtfCheckpoint>,
) -> Result<(FtfOutcome, DpStats), DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    let fingerprint = instance_fingerprint(&inst, ftf_option_bits(&options));
    let p = inst.num_cores();
    let end_sum: u64 = (0..p).map(|i| inst.end_pos(i)).sum();
    let max_pos = (0..p).map(|i| inst.end_pos(i)).max().unwrap_or(1);

    // The interned state engine: every state lives once in the arena and
    // is referenced by StateId everywhere else — the per-state tables
    // below are flat Vecs indexed by id.
    let mut arena = StateArena::new(p, max_pos, options.force_spill);
    let mut faults: Vec<u64> = Vec::new();
    let mut parent: Vec<StateId> = Vec::new();
    // The bucket of position sum s holds the unexpanded states of that
    // sum. Every transition strictly increases the sum of every
    // unfinished sequence's position, so an ascending sweep is a
    // topological order and each state enters exactly one bucket exactly
    // once (it can only be improved while its bucket is still pending).
    // Buckets are intrusive chains — `bucket_head[s]` starts a list
    // threaded through `next_in_bucket[id]` — so enqueueing a state costs
    // two stores and no allocation. Chain order is irrelevant: each
    // bucket is sorted canonically before expansion.
    let mut bucket_head: Vec<StateId> = vec![NO_STATE; end_sum as usize + 1];
    let mut next_in_bucket: Vec<StateId> = Vec::new();
    let mut best_terminal: Option<(u64, StateId)> = None;
    let mut stats = DpStats::default();

    match resume {
        None => {
            let start = inst.start_positions();
            let (id, _) = arena.intern(0, &start);
            faults.push(0);
            parent.push(NO_STATE);
            let s = start.iter().map(|&x| x as usize).sum::<usize>();
            next_in_bucket.push(bucket_head[s]);
            bucket_head[s] = id;
        }
        Some(ck) => {
            if ck.fingerprint != fingerprint {
                return Err(DpError::Model(format!(
                    "checkpoint fingerprint mismatch: instance is {fingerprint:#018x}, \
                     snapshot was taken for {:#018x} (different workload, config, or options)",
                    ck.fingerprint
                )));
            }
            // Intern the discovered states first (ids follow the
            // snapshot's canonical order), then resolve parent pointers —
            // a parent may sort after its child.
            for (key, f, _) in &ck.best {
                let (id, is_new) = arena.intern_key(key);
                debug_assert!(is_new && id as usize == faults.len());
                faults.push(*f);
                parent.push(NO_STATE);
                next_in_bucket.push(NO_STATE);
            }
            for (i, (_, _, par)) in ck.best.iter().enumerate() {
                if let Some(p_key) = par {
                    let (pid, is_new) = arena.intern_key(p_key);
                    if is_new {
                        // A checksummed snapshot always keeps parents
                        // inside `best`; keep the tables aligned anyway.
                        faults.push(u64::MAX);
                        parent.push(NO_STATE);
                        next_in_bucket.push(NO_STATE);
                    }
                    parent[i] = pid;
                }
            }
            for key in &ck.frontier {
                let (id, is_new) = arena.intern_key(key);
                debug_assert!(!is_new, "frontier states are discovered states");
                if is_new {
                    faults.push(u64::MAX);
                    parent.push(NO_STATE);
                    next_in_bucket.push(NO_STATE);
                }
                let s = arena.pos_sum(id) as usize;
                next_in_bucket[id as usize] = bucket_head[s];
                bucket_head[s] = id;
            }
            if let Some((f, key)) = &ck.best_terminal {
                let (id, is_new) = arena.intern_key(key);
                if is_new {
                    faults.push(*f);
                    parent.push(NO_STATE);
                    next_in_bucket.push(NO_STATE);
                }
                best_terminal = Some((*f, id));
            }
        }
    }

    let mut ids: Vec<StateId> = Vec::new();
    for s in 0..bucket_head.len() {
        if bucket_head[s] == NO_STATE {
            continue;
        }
        if budget.is_limited() {
            let mem = arena.approx_bytes()
                + faults.capacity() * 8
                + (parent.capacity() + next_in_bucket.capacity()) * 4;
            if let Err(reason) = budget.check(arena.len(), mem) {
                let t = truncate_ftf(
                    &inst,
                    fingerprint,
                    reason,
                    &arena,
                    &faults,
                    &parent,
                    &bucket_head[s..],
                    &next_in_bucket,
                    &best_terminal,
                );
                finish_stats(&mut stats, &arena);
                return Ok((FtfOutcome::Truncated(t), stats));
            }
        }
        ids.clear();
        let mut cur = bucket_head[s];
        while cur != NO_STATE {
            ids.push(cur);
            cur = next_in_bucket[cur as usize];
        }
        arena.sort_ids(&mut ids);

        // Terminals live exclusively in the final bucket: positions never
        // exceed their end positions, so sum == end_sum forces every
        // sequence to its end. Scanning them in canonical order keeps the
        // incumbent independent of hash order and worker count.
        if s as u64 == end_sum {
            for &id in &ids {
                let f = faults[id as usize];
                if best_terminal.map(|(bf, _)| f < bf).unwrap_or(true) {
                    best_terminal = Some((f, id));
                }
            }
            continue; // terminal states have no successors
        }
        let incumbent = best_terminal.map(|(f, _)| f);
        stats.expansions += ids.len();

        // Successors live in strictly later buckets, so the expansions are
        // mutually independent and can fan out over the pool. Workers read
        // the arena immutably and ship back packed keys; only the
        // sequential merge interns.
        let pool = pool_for(options.jobs, ids.len());
        if pool.jobs() <= 1 {
            // Sequential fast path: expand and merge each state inline, in
            // the same canonical order the parallel path merges in — no
            // per-state successor buffer, no per-bucket result vector.
            with_scratch(|sc| {
                for &id in &ids {
                    let StepScratch {
                        pos,
                        next,
                        faulted,
                        free,
                        chosen,
                    } = sc;
                    let cfg_bits = arena.cfg(id);
                    arena.positions_into(id, pos);
                    debug_assert!(!inst.all_finished(pos), "terminals are never expanded");
                    let (rx, fault_mask) = step_effect_into(&inst, cfg_bits, pos, next, faulted);
                    let next_faults = faults[id as usize] + u64::from(fault_mask.count_ones());
                    if options.prune && incumbent.map(|i| next_faults >= i).unwrap_or(false) {
                        continue;
                    }
                    let next_sum: u64 = next.iter().map(|&x| u64::from(x)).sum();
                    let pp = arena.pack(next);
                    for_each_successor_config_with(
                        &inst,
                        cfg_bits,
                        rx,
                        options.lazy,
                        free,
                        chosen,
                        |next_cfg| {
                            let (nid, is_new) = arena.intern_packed(next_cfg, &pp);
                            if is_new {
                                faults.push(next_faults);
                                parent.push(id);
                                next_in_bucket.push(bucket_head[next_sum as usize]);
                                bucket_head[next_sum as usize] = nid;
                            } else if next_faults < faults[nid as usize] {
                                faults[nid as usize] = next_faults;
                                parent[nid as usize] = id;
                            }
                        },
                    );
                }
            });
            continue;
        }
        let expansions = pool.par_map(&ids, |_, &id| {
            with_scratch(|sc| {
                let StepScratch {
                    pos,
                    next,
                    faulted,
                    free,
                    chosen,
                } = sc;
                let cfg_bits = arena.cfg(id);
                arena.positions_into(id, pos);
                debug_assert!(!inst.all_finished(pos), "terminals are never expanded");
                let (rx, fault_mask) = step_effect_into(&inst, cfg_bits, pos, next, faulted);
                let next_faults = faults[id as usize] + u64::from(fault_mask.count_ones());
                // Prune paths that cannot strictly beat the incumbent
                // terminal (fault counts only grow along a path).
                if options.prune && incumbent.map(|i| next_faults >= i).unwrap_or(false) {
                    return None;
                }
                let next_sum: u64 = next.iter().map(|&x| u64::from(x)).sum();
                let pp = arena.pack(next);
                let mut cfgs = Vec::new();
                for_each_successor_config_with(
                    &inst,
                    cfg_bits,
                    rx,
                    options.lazy,
                    free,
                    chosen,
                    |next_cfg| cfgs.push(next_cfg),
                );
                Some((next_faults, next_sum, pp, cfgs))
            })
        });

        // Merge sequentially, in the same canonical order.
        for (&id, expansion) in ids.iter().zip(expansions) {
            let Some((next_faults, next_sum, pp, cfgs)) = expansion else {
                continue;
            };
            for next_cfg in cfgs {
                let (nid, is_new) = arena.intern_packed(next_cfg, &pp);
                if is_new {
                    faults.push(next_faults);
                    parent.push(id);
                    next_in_bucket.push(bucket_head[next_sum as usize]);
                    bucket_head[next_sum as usize] = nid;
                } else if next_faults < faults[nid as usize] {
                    faults[nid as usize] = next_faults;
                    parent[nid as usize] = id;
                }
            }
        }
    }

    let (min_faults, terminal) = best_terminal.expect("every instance reaches a terminal state");
    let schedule = if options.reconstruct {
        Some(reconstruct(&inst, &arena, &parent, terminal))
    } else {
        None
    };
    finish_stats(&mut stats, &arena);
    Ok((
        FtfOutcome::Complete(FtfResult {
            min_faults,
            states: arena.len(),
            schedule,
        }),
        stats,
    ))
}

/// Fill the engine-side [`DpStats`] fields from the final arena state
/// (the arena only grows within a run, so "final" is "peak").
fn finish_stats(stats: &mut DpStats, arena: &StateArena) {
    stats.states = arena.len();
    stats.peak_arena_bytes = arena.approx_bytes();
    stats.dedup_load_factor = arena.load_factor();
}

/// Assemble the anytime bracket and checkpoint for a tripped run. The
/// checkpoint materializes canonical [`StateKey`]s from the arena, so
/// its bytes are identical to what the unpacked engine wrote — the
/// on-disk format is representation-independent.
#[allow(clippy::too_many_arguments)] // internal: the engine's flat tables
fn truncate_ftf(
    inst: &DpInstance,
    fingerprint: u64,
    reason: TripReason,
    arena: &StateArena,
    faults: &[u64],
    parent: &[StateId],
    pending_heads: &[StateId],
    next_in_bucket: &[StateId],
    best_terminal: &Option<(u64, StateId)>,
) -> FtfTruncated {
    let mut frontier_ids: Vec<StateId> = Vec::new();
    for &head in pending_heads {
        let mut cur = head;
        while cur != NO_STATE {
            frontier_ids.push(cur);
            cur = next_in_bucket[cur as usize];
        }
    }
    arena.sort_ids(&mut frontier_ids);

    // The cheapest frontier state in canonical (faults, key) order seeds
    // the greedy completion (strict < over the canonically sorted
    // frontier keeps the smallest key among ties); the incumbent is the
    // better of that and any terminal already found.
    let mut seed: Option<(u64, StateId)> = None;
    for &id in &frontier_ids {
        let f = faults[id as usize];
        if seed.map(|(sf, _)| f < sf).unwrap_or(true) {
            seed = Some((f, id));
        }
    }
    let greedy_ub = seed.map(|(g, id)| g + greedy_completion_faults(inst, &arena.key(id)));
    let terminal_ub = best_terminal.as_ref().map(|(f, _)| *f);
    let incumbent = match (greedy_ub, terminal_ub) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        // The loop only trips while the frontier is non-empty, so at
        // least one bound always exists.
        (None, None) => unreachable!("truncated with empty frontier and no terminal"),
    };
    // Every completion extends either a frontier state (cost ≥ its
    // faults-so-far) or was already pruned against the incumbent, so OPT
    // is at least the cheapest of those.
    let frontier_min = seed.map(|(g, _)| g).unwrap_or(u64::MAX);
    let lower_bound = frontier_min.min(incumbent);

    let mut all_ids: Vec<StateId> = (0..arena.len() as StateId).collect();
    arena.sort_ids(&mut all_ids);
    let best_vec: Vec<(StateKey, u64, Option<StateKey>)> = all_ids
        .iter()
        .map(|&id| {
            let par = parent[id as usize];
            let par_key = (par != NO_STATE).then(|| arena.key(par));
            (arena.key(id), faults[id as usize], par_key)
        })
        .collect();
    let frontier: Vec<StateKey> = frontier_ids.iter().map(|&id| arena.key(id)).collect();

    FtfTruncated {
        reason,
        lower_bound,
        incumbent,
        states: arena.len(),
        frontier_states: frontier.len(),
        checkpoint: FtfCheckpoint {
            fingerprint,
            best: best_vec,
            frontier,
            best_terminal: best_terminal.as_ref().map(|&(f, id)| (f, arena.key(id))),
        },
    }
}

/// Convenience: just the number.
pub fn ftf_min_faults(workload: &Workload, cfg: SimConfig) -> Result<u64, DpError> {
    ftf_dp(workload, cfg, FtfOptions::default()).map(|r| r.min_faults)
}

fn reconstruct(
    inst: &DpInstance,
    arena: &StateArena,
    parent: &[StateId],
    terminal: StateId,
) -> FtfSchedule {
    // Walk parents back to the start, then replay forward.
    let mut ids = vec![terminal];
    loop {
        let par = parent[*ids.last().unwrap() as usize];
        if par == NO_STATE {
            break;
        }
        ids.push(par);
    }
    ids.reverse();
    let chain: Vec<StateKey> = ids.into_iter().map(|id| arena.key(id)).collect();
    schedule_from_chain(inst, &chain)
}

/// Convert a chain of consecutive DP states (one transition per timestep,
/// starting at the initial state) into a replayable schedule.
pub(crate) fn schedule_from_chain(inst: &DpInstance, chain: &[StateKey]) -> FtfSchedule {
    let mut schedule = FtfSchedule::default();
    for (step_idx, pair) in chain.windows(2).enumerate() {
        let time = step_idx as Time + 1; // transition k serves timestep k
        let (cfg, pos) = &pair[0];
        let (next_cfg, _) = &pair[1];
        let effect = step_effect(inst, *cfg, pos);

        // Pages leaving the configuration this step.
        let mut evicted: Vec<u16> = (0..inst.pages.len() as u16)
            .filter(|b| (cfg & !next_cfg) & (1u64 << b) != 0)
            .collect();

        // Faulting cores in logical order; per distinct page only the
        // lowest core places (later cores join the fetch in flight).
        let mut placed_pages: HashSet<u16> = HashSet::new();
        for core in 0..inst.num_cores() {
            if !effect.seq_faulted[core] {
                continue;
            }
            let x = pos[core] as u64;
            let page = inst.pointed_page(core, x);
            if !placed_pages.insert(page) {
                continue; // shared in-flight fetch: no placement decision
            }
            let index = inst.page_index(x);
            let decision = match evicted.pop() {
                Some(victim) => ReplayDecision::Evict(inst.pages[victim as usize]),
                None => ReplayDecision::UseEmpty,
            };
            schedule.decisions.insert((core, index), decision);
        }
        // Leftover evictions are voluntary (non-lazy mode only). The DP
        // removed these pages in the transition serving `time`, and its
        // `rx ⊆ C'` constraint guarantees none of them is requested (or
        // mid-fetch) at `time`, so replaying the eviction at the start of
        // `time` is equivalent and never collides with the engine's pin of
        // currently requested pages. (Scheduling it at `time + 1` would:
        // the page may be requested — and so pinned — then.) `time` may
        // also be a timestep at which no request is due (every core
        // mid-fetch); `Replay` declares those times via
        // `next_voluntary_time` so the engine steps there instead of
        // fast-forwarding past the eviction.
        if !evicted.is_empty() {
            schedule
                .voluntary
                .entry(time)
                .or_default()
                .extend(evicted.into_iter().map(|b| inst.pages[b as usize]));
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady_seq::belady_faults;
    use mcp_core::simulate;
    use mcp_policies::Replay;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn single_core_matches_belady() {
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 1, 2, 3],
            vec![1, 2, 1, 3, 1, 2, 3, 4, 1],
            vec![4, 3, 2, 1, 1, 2, 3, 4],
        ];
        for vs in cases {
            let w = wl(&[&vs]);
            for k in 1..=3usize {
                for tau in [0u64, 1, 2] {
                    let dp = ftf_min_faults(&w, SimConfig::new(k, tau)).unwrap();
                    let seq: Vec<PageId> = vs.iter().copied().map(PageId).collect();
                    // With one core, delays never change the order of its
                    // own requests: Belady is optimal for every tau.
                    assert_eq!(dp, belady_faults(&seq, k), "seq {vs:?} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn two_cores_everything_fits() {
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let dp = ftf_min_faults(&w, SimConfig::new(4, 1)).unwrap();
        assert_eq!(dp, 4); // cold misses only
    }

    #[test]
    fn two_cores_contended() {
        // K=2, each core alternates two private pages, perfectly aligned:
        // every timestep demands two fresh pages with only two cells, and
        // since every request faults, the alignment never breaks — the
        // optimum is all-faults.
        let w = wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]);
        let dp = ftf_min_faults(&w, SimConfig::new(2, 1)).unwrap();
        assert_eq!(dp, 12);
        // One extra cell breaks the deadlock: one core can keep both its
        // pages while the other thrashes.
        let dp3 = ftf_min_faults(&w, SimConfig::new(3, 1)).unwrap();
        assert!((4..12).contains(&dp3), "got {dp3}");
    }

    #[test]
    fn schedule_replays_to_same_fault_count() {
        let cases: Vec<(Vec<Vec<u32>>, usize, u64)> = vec![
            (vec![vec![1, 2, 3, 1, 2], vec![7, 8, 7, 8, 7]], 3, 1),
            (vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]], 2, 0),
            (vec![vec![1, 2, 3, 2, 1], vec![7, 7, 7, 7, 7]], 3, 2),
        ];
        for (seqs, k, tau) in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            let cfg = SimConfig::new(k, tau);
            let r = ftf_dp(
                &w,
                cfg,
                FtfOptions {
                    reconstruct: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let schedule = r.schedule.unwrap();
            let replay = Replay::new(schedule.decisions).with_voluntary(schedule.voluntary);
            let sim = simulate(&w, cfg, replay).unwrap();
            assert_eq!(
                sim.total_faults(),
                r.min_faults,
                "replayed schedule diverged on {seqs:?} k={k} tau={tau}"
            );
        }
    }

    #[test]
    fn lazy_equals_full_transition_relation_on_tiny_disjoint() {
        // Theorem 4 (honesty is WLOG) in miniature: allowing voluntary
        // evictions must not reduce the optimum on disjoint workloads.
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
            vec![vec![1, 2, 3, 1], vec![7, 7, 7, 7]],
            vec![vec![1, 1, 2, 2], vec![7, 8, 8, 7]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for tau in [0u64, 1] {
                let cfg = SimConfig::new(2, tau);
                let lazy = ftf_dp(&w, cfg, FtfOptions::default()).unwrap().min_faults;
                let full = ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        lazy: false,
                        ..Default::default()
                    },
                )
                .unwrap()
                .min_faults;
                assert_eq!(lazy, full, "{seqs:?} tau={tau}");
            }
        }
    }

    #[test]
    fn dp_lower_bounds_every_online_strategy() {
        use mcp_policies::{shared_fifo, shared_lru};
        let w = wl(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8, 7, 8]]);
        for k in [2usize, 3, 4] {
            for tau in [0u64, 2] {
                let cfg = SimConfig::new(k, tau);
                let opt = ftf_min_faults(&w, cfg).unwrap();
                let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
                let fifo = simulate(&w, cfg, shared_fifo()).unwrap().total_faults();
                assert!(opt <= lru, "k={k} tau={tau}: OPT {opt} > LRU {lru}");
                assert!(opt <= fifo, "k={k} tau={tau}: OPT {opt} > FIFO {fifo}");
            }
        }
    }

    #[test]
    fn pruning_is_an_optimization_not_a_semantic() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 3, 1, 2], vec![7, 8, 7, 8, 7]],
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for k in [2usize, 3] {
                let cfg = SimConfig::new(k, 1);
                let pruned = ftf_dp(&w, cfg, FtfOptions::default()).unwrap();
                let raw = ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        prune: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(pruned.min_faults, raw.min_faults, "{seqs:?} k={k}");
                assert!(pruned.states <= raw.states, "pruning cannot add states");
            }
        }
    }

    #[test]
    fn empty_workload() {
        let w = wl(&[&[], &[]]);
        assert_eq!(ftf_min_faults(&w, SimConfig::new(2, 1)).unwrap(), 0);
    }

    #[test]
    fn state_cap_is_enforced() {
        let long: Vec<u32> = (0..12).map(|i| i % 6).collect();
        let w = wl(&[&long, &long.iter().map(|v| v + 10).collect::<Vec<_>>()]);
        let err = ftf_dp(
            &w,
            SimConfig::new(4, 2),
            FtfOptions {
                max_states: 50,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DpError::TooLarge { .. }));
        // Regression: the overflow error must not discard the work done —
        // it carries an achievable incumbent, which bounds the optimum
        // from above.
        let DpError::TooLarge { incumbent, .. } = err else {
            unreachable!()
        };
        let opt = ftf_min_faults(&w, SimConfig::new(4, 2)).unwrap();
        let ub = incumbent.expect("cap overflow must report best-known faults");
        assert!(opt <= ub, "incumbent {ub} below the optimum {opt}");
    }

    #[test]
    fn zero_deadline_truncates_with_valid_bracket() {
        use mcp_core::Budget;
        use std::time::Duration;
        let w = wl(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8, 7, 8]]);
        let cfg = SimConfig::new(3, 1);
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let outcome = ftf_dp_governed(&w, cfg, FtfOptions::default(), &budget, None).unwrap();
        let FtfOutcome::Truncated(t) = outcome else {
            panic!("zero deadline must truncate");
        };
        assert_eq!(t.reason, TripReason::Deadline);
        let opt = ftf_min_faults(&w, cfg).unwrap();
        assert!(
            t.lower_bound <= opt && opt <= t.incumbent,
            "bracket [{}, {}] misses OPT {opt}",
            t.lower_bound,
            t.incumbent
        );
        assert_eq!(t.frontier_states, t.checkpoint.frontier.len());
        assert_eq!(t.states, t.checkpoint.best.len());
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        use mcp_core::Budget;
        let w = wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]);
        let cfg = SimConfig::new(3, 1);
        let plain = ftf_dp(&w, cfg, FtfOptions::default()).unwrap();
        let outcome =
            ftf_dp_governed(&w, cfg, FtfOptions::default(), &Budget::unlimited(), None).unwrap();
        let FtfOutcome::Complete(governed) = outcome else {
            panic!("unlimited budget must complete");
        };
        assert_eq!(governed.min_faults, plain.min_faults);
        assert_eq!(governed.states, plain.states);
    }

    #[test]
    fn checkpoint_fingerprint_mismatch_is_rejected() {
        use mcp_core::Budget;
        use std::time::Duration;
        let w1 = wl(&[&[1, 2, 3, 1], &[7, 8, 7, 8]]);
        let w2 = wl(&[&[1, 2, 3, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(2, 1);
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let FtfOutcome::Truncated(t) =
            ftf_dp_governed(&w1, cfg, FtfOptions::default(), &budget, None).unwrap()
        else {
            panic!("zero deadline must truncate")
        };
        let err = ftf_dp_governed(
            &w2,
            cfg,
            FtfOptions::default(),
            &Budget::unlimited(),
            Some(&t.checkpoint),
        )
        .unwrap_err();
        assert!(matches!(err, DpError::Model(_)), "got {err:?}");
    }
}
