//! The packed, interned DP state engine.
//!
//! Both offline dynamic programs (Algorithms 1 and 2) identify a state by
//! `(configuration bitmask, position vector)`. Storing that as a
//! [`StateKey`] — a `u64` plus a heap-allocated `Box<[u32]>` — costs one
//! allocation per state, a SipHash pass per lookup, and a clone per
//! table it lands in. This module replaces it with an append-only
//! [`StateArena`]: every distinct state is stored exactly once and
//! referenced everywhere by a dense `u32` [`StateId`], so the DP
//! frontiers become flat `Vec`-indexed tables.
//!
//! ## Key packing
//!
//! Positions are packed into a single `u128` whenever they fit
//! (`p · ceil(log2(max_pos + 1)) ≤ 128` — every practical instance; the
//! state space is astronomically large long before the packing
//! overflows). Position `i` occupies bits
//! `[(p - 1 - i)·b, (p - i)·b)` — **most-significant first** — so that
//! comparing two packed words as integers equals comparing the position
//! vectors lexicographically. Combined with the configuration ordered
//! first, `(cfg, packed)` tuple order is exactly the canonical
//! [`StateKey`] order the DPs sort by. Oversized instances spill to a
//! contiguous `u32` arena with the same canonical ordering (proven equal
//! by proptest in both paths).
//!
//! ## Interning and dedup
//!
//! [`StateArena::intern`] deduplicates through an open-addressing table
//! (linear probing, power-of-two capacity, grown at 3/4 load) that
//! stores only `StateId`s — keys are compared against the arena
//! payload, hashed with the dependency-free multiply-rotate
//! [`FxHasher`] rather than the standard library's SipHash. Checkpoints
//! are representation-independent: they serialize *materialized*
//! [`StateKey`]s (see [`StateArena::key`]) in the same canonical order
//! and byte layout as the unpacked engine did.

use crate::state::StateKey;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Dense reference to an interned state: an index into a [`StateArena`].
pub type StateId = u32;

/// Sentinel for "no state" (empty dedup slot / no parent).
pub const NO_STATE: StateId = StateId::MAX;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// A dependency-free FxHash-style [`Hasher`]: multiply-rotate mixing of
/// 64-bit words. Not DoS-resistant — use only on trusted, internal keys
/// (dense page ids, state ids), where it is several times faster than
/// the standard library's SipHash.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.hash = fx_mix(self.hash, u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(tail));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = fx_mix(self.hash, v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = fx_mix(self.hash, v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] for [`FxHasher`] (zero-sized, deterministic).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A position vector encoded for its arena's representation, produced by
/// [`StateArena::pack`]. Workers pack on their own threads; only the
/// sequential merge mutates the arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackedPos {
    /// Fixed-width bit-packed positions (the fast path).
    Inline(u128),
    /// Verbatim positions for oversized instances.
    Spill(Box<[u32]>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `bits` per position, most-significant-first.
    Inline {
        bits: u32,
    },
    Spill,
}

/// Append-only arena of interned DP states.
///
/// Construction picks the representation from the instance shape (see
/// [`StateArena::new`]); every later operation is
/// representation-agnostic. `&StateArena` is `Sync`, so parallel
/// expansion workers can decode and [`pack`](StateArena::pack) freely
/// while interning stays confined to the sequential merge.
#[derive(Clone, Debug)]
pub struct StateArena {
    mode: Mode,
    cores: usize,
    cfgs: Vec<u64>,
    packed: Vec<u128>,
    spill: Vec<u32>,
    table: Vec<StateId>,
    /// `table.len() - 1` (capacity is a power of two).
    mask: usize,
}

impl StateArena {
    /// Arena for `cores` position entries each at most `max_pos`.
    /// Packs inline when `cores · ceil(log2(max_pos + 1)) ≤ 128`,
    /// otherwise spills. `force_spill` pins the spill representation
    /// (testing hook: both paths must agree bit-for-bit).
    pub fn new(cores: usize, max_pos: u64, force_spill: bool) -> Self {
        let bits = 64 - max_pos.leading_zeros() as u64;
        let mode = if !force_spill && cores as u64 * bits <= 128 {
            Mode::Inline { bits: bits as u32 }
        } else {
            Mode::Spill
        };
        const INITIAL_CAP: usize = 64;
        StateArena {
            mode,
            cores,
            cfgs: Vec::new(),
            packed: Vec::new(),
            spill: Vec::new(),
            table: vec![NO_STATE; INITIAL_CAP],
            mask: INITIAL_CAP - 1,
        }
    }

    /// Number of interned states.
    #[inline]
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// Whether no state has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }

    /// Whether this arena packs positions inline (vs. spilling).
    pub fn is_inline(&self) -> bool {
        matches!(self.mode, Mode::Inline { .. })
    }

    /// Drop all states but keep the allocations (layer reuse).
    pub fn clear(&mut self) {
        self.cfgs.clear();
        self.packed.clear();
        self.spill.clear();
        self.table.fill(NO_STATE);
    }

    /// Approximate heap footprint in bytes (payload + dedup table).
    pub fn approx_bytes(&self) -> usize {
        self.cfgs.capacity() * 8
            + self.packed.capacity() * 16
            + self.spill.capacity() * 4
            + self.table.capacity() * 4
    }

    /// Occupancy of the dedup table in `[0, 1)` (kept below 3/4).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.table.len() as f64
    }

    /// Encode `positions` for this arena's representation without
    /// touching the arena (worker-side, allocation-free on the inline
    /// path).
    #[inline]
    pub fn pack(&self, positions: &[u32]) -> PackedPos {
        debug_assert_eq!(positions.len(), self.cores);
        match self.mode {
            Mode::Inline { bits } => PackedPos::Inline(Self::pack_inline(positions, bits)),
            Mode::Spill => PackedPos::Spill(positions.into()),
        }
    }

    #[inline]
    fn pack_inline(positions: &[u32], bits: u32) -> u128 {
        let mut word = 0u128;
        for &x in positions {
            debug_assert!(bits >= 128 || u128::from(x) < (1u128 << bits));
            word = (word << bits) | u128::from(x);
        }
        word
    }

    #[inline]
    fn hash_inline(cfg: u64, word: u128) -> u64 {
        fx_mix(fx_mix(fx_mix(0, cfg), word as u64), (word >> 64) as u64)
    }

    fn hash_spill(cfg: u64, positions: &[u32]) -> u64 {
        let mut h = fx_mix(0, cfg);
        for &x in positions {
            h = fx_mix(h, u64::from(x));
        }
        h
    }

    /// Intern `(cfg, positions)`; returns the id and whether the state
    /// is new.
    pub fn intern(&mut self, cfg: u64, positions: &[u32]) -> (StateId, bool) {
        match self.mode {
            Mode::Inline { bits } => self.intern_inline(cfg, Self::pack_inline(positions, bits)),
            Mode::Spill => self.intern_spill(cfg, positions),
        }
    }

    /// Intern a key already encoded by [`StateArena::pack`].
    #[inline]
    pub fn intern_packed(&mut self, cfg: u64, pp: &PackedPos) -> (StateId, bool) {
        match pp {
            PackedPos::Inline(word) => self.intern_inline(cfg, *word),
            PackedPos::Spill(positions) => self.intern_spill(cfg, positions),
        }
    }

    /// Intern a materialized [`StateKey`] (checkpoint resume path).
    pub fn intern_key(&mut self, key: &StateKey) -> (StateId, bool) {
        self.intern(key.0, &key.1)
    }

    fn intern_inline(&mut self, cfg: u64, word: u128) -> (StateId, bool) {
        let mut i = Self::hash_inline(cfg, word) as usize & self.mask;
        loop {
            let e = self.table[i];
            if e == NO_STATE {
                let id = self.cfgs.len() as StateId;
                self.cfgs.push(cfg);
                self.packed.push(word);
                self.table[i] = id;
                self.maybe_grow();
                return (id, true);
            }
            if self.cfgs[e as usize] == cfg && self.packed[e as usize] == word {
                return (e, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn intern_spill(&mut self, cfg: u64, positions: &[u32]) -> (StateId, bool) {
        debug_assert_eq!(positions.len(), self.cores);
        let mut i = Self::hash_spill(cfg, positions) as usize & self.mask;
        loop {
            let e = self.table[i];
            if e == NO_STATE {
                let id = self.cfgs.len() as StateId;
                self.cfgs.push(cfg);
                self.spill.extend_from_slice(positions);
                self.table[i] = id;
                self.maybe_grow();
                return (id, true);
            }
            if self.cfgs[e as usize] == cfg && self.spill_of(e) == positions {
                return (e, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn maybe_grow(&mut self) {
        if self.cfgs.len() * 4 > self.table.len() * 3 {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        self.mask = cap - 1;
        self.table.clear();
        self.table.resize(cap, NO_STATE);
        for id in 0..self.cfgs.len() as StateId {
            let h = match self.mode {
                Mode::Inline { .. } => {
                    Self::hash_inline(self.cfgs[id as usize], self.packed[id as usize])
                }
                Mode::Spill => Self::hash_spill(self.cfgs[id as usize], self.spill_of(id)),
            };
            let mut i = h as usize & self.mask;
            while self.table[i] != NO_STATE {
                i = (i + 1) & self.mask;
            }
            self.table[i] = id;
        }
    }

    #[inline]
    fn spill_of(&self, id: StateId) -> &[u32] {
        let s = id as usize * self.cores;
        &self.spill[s..s + self.cores]
    }

    /// Configuration bitmask of `id`.
    #[inline]
    pub fn cfg(&self, id: StateId) -> u64 {
        self.cfgs[id as usize]
    }

    /// Decode the position vector of `id` into `out` (cleared first).
    #[inline]
    pub fn positions_into(&self, id: StateId, out: &mut Vec<u32>) {
        out.clear();
        match self.mode {
            Mode::Inline { bits } => {
                let word = self.packed[id as usize];
                let m = if bits >= 128 {
                    u128::MAX
                } else {
                    (1u128 << bits) - 1
                };
                for i in 0..self.cores {
                    let shift = (self.cores - 1 - i) as u32 * bits;
                    out.push(((word >> shift) & m) as u32);
                }
            }
            Mode::Spill => out.extend_from_slice(self.spill_of(id)),
        }
    }

    /// Sum of the position vector of `id` (the FTF bucket index).
    #[inline]
    pub fn pos_sum(&self, id: StateId) -> u64 {
        match self.mode {
            Mode::Inline { bits } => {
                let word = self.packed[id as usize];
                let m = if bits >= 128 {
                    u128::MAX
                } else {
                    (1u128 << bits) - 1
                };
                let mut sum = 0u64;
                for i in 0..self.cores {
                    sum += ((word >> (i as u32 * bits)) & m) as u64;
                }
                sum
            }
            Mode::Spill => self.spill_of(id).iter().map(|&x| u64::from(x)).sum(),
        }
    }

    /// Materialize the canonical [`StateKey`] of `id` (checkpoint and
    /// witness paths — not the hot loop).
    pub fn key(&self, id: StateId) -> StateKey {
        let mut pos = Vec::with_capacity(self.cores);
        self.positions_into(id, &mut pos);
        (self.cfg(id), pos.into_boxed_slice())
    }

    /// Canonical order of two interned states — identical to comparing
    /// their materialized [`StateKey`]s.
    #[inline]
    pub fn cmp_ids(&self, a: StateId, b: StateId) -> Ordering {
        match self.cfgs[a as usize].cmp(&self.cfgs[b as usize]) {
            Ordering::Equal => match self.mode {
                Mode::Inline { .. } => self.packed[a as usize].cmp(&self.packed[b as usize]),
                Mode::Spill => self.spill_of(a).cmp(self.spill_of(b)),
            },
            ord => ord,
        }
    }

    /// Sort `ids` into canonical state order.
    pub fn sort_ids(&self, ids: &mut [StateId]) {
        match self.mode {
            // Sorting by the (cfg, packed) value pair lets the sort run
            // on integable keys without indirect comparisons.
            Mode::Inline { .. } => {
                ids.sort_unstable_by_key(|&id| (self.cfgs[id as usize], self.packed[id as usize]))
            }
            Mode::Spill => ids.sort_unstable_by(|&a, &b| self.cmp_ids(a, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(arena: &StateArena) -> Vec<StateKey> {
        (0..arena.len() as StateId).map(|i| arena.key(i)).collect()
    }

    #[test]
    fn intern_dedups_and_roundtrips() {
        for force_spill in [false, true] {
            let mut a = StateArena::new(3, 9, force_spill);
            let (id0, new0) = a.intern(5, &[1, 2, 3]);
            let (id1, new1) = a.intern(5, &[1, 2, 4]);
            let (id2, new2) = a.intern(4, &[1, 2, 3]);
            let (id3, new3) = a.intern(5, &[1, 2, 3]);
            assert!(new0 && new1 && new2 && !new3);
            assert_eq!(id0, id3);
            assert_ne!(id0, id1);
            assert_ne!(id0, id2);
            assert_eq!(a.len(), 3);
            assert_eq!(a.key(id0), (5, vec![1, 2, 3].into_boxed_slice()));
            assert_eq!(a.key(id1), (5, vec![1, 2, 4].into_boxed_slice()));
            assert_eq!(a.cfg(id2), 4);
            assert_eq!(a.pos_sum(id1), 7);
        }
    }

    #[test]
    fn cmp_ids_matches_key_order_both_modes() {
        let states: Vec<(u64, Vec<u32>)> = vec![
            (0, vec![1, 1]),
            (0, vec![1, 9]),
            (0, vec![9, 1]),
            (1, vec![1, 1]),
            (7, vec![3, 3]),
            (7, vec![3, 4]),
        ];
        for force_spill in [false, true] {
            let mut a = StateArena::new(2, 9, force_spill);
            let ids: Vec<StateId> = states.iter().map(|(c, p)| a.intern(*c, p).0).collect();
            for &x in &ids {
                for &y in &ids {
                    assert_eq!(a.cmp_ids(x, y), a.key(x).cmp(&a.key(y)), "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn inline_and_spill_agree_through_growth() {
        // Enough states to force several table growths; both paths must
        // intern the same ids in the same order.
        let mut inline = StateArena::new(2, 1023, false);
        let mut spill = StateArena::new(2, 1023, true);
        assert!(inline.is_inline());
        assert!(!spill.is_inline());
        for cfg in 0..8u64 {
            for x in (1..1000u32).step_by(17) {
                let a = inline.intern(cfg, &[x, 1000 - x]);
                let b = spill.intern(cfg, &[x, 1000 - x]);
                assert_eq!(a, b);
            }
        }
        assert_eq!(keys_of(&inline), keys_of(&spill));
        assert!(inline.load_factor() < 0.75);
        assert!(spill.load_factor() < 0.75);
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut a = StateArena::new(2, 100, false);
        for x in 1..50 {
            a.intern(1, &[x, x]);
        }
        let bytes = a.approx_bytes();
        a.clear();
        assert!(a.is_empty());
        let (id, new) = a.intern(1, &[3, 3]);
        assert_eq!((id, new), (0, true));
        assert!(a.approx_bytes() >= bytes, "clear must keep capacity");
    }

    #[test]
    fn wide_positions_spill() {
        // 6 cores * 26 bits = 156 > 128: must spill.
        let a = StateArena::new(6, (1 << 26) - 1, false);
        assert!(!a.is_inline());
        // 4 cores * 26 bits = 104: inline.
        let a = StateArena::new(4, (1 << 26) - 1, false);
        assert!(a.is_inline());
    }

    #[test]
    fn fx_hashmap_is_deterministic() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 2) as u32);
        }
        let mut n: FxHashMap<u64, u32> = FxHashMap::default();
        for i in (0..100).rev() {
            n.insert(i, (i * 2) as u32);
        }
        assert_eq!(m, n);
        assert_eq!(m[&42], 84);
    }
}
