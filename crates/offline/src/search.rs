//! Branch-and-bound search over eviction schedules on a lightweight
//! backtracking replica of the simulator ("micro-engine").
//!
//! Two instantiations:
//!
//! * [`brute_force_min_faults`] — honest exhaustive optimum: on each fault
//!   with a full cache, branch over *every* resident victim. An
//!   independent implementation cross-validating Algorithm 1.
//! * [`fitf_restricted_min_faults`] — Theorem 5's restricted policy
//!   class: on each fault branch only over *sequences*, evicting the
//!   furthest-in-the-future resident page of the chosen sequence. Theorem
//!   5 asserts this class contains an optimal algorithm for disjoint
//!   workloads; tests assert equality with the DP optimum.

use crate::intern::FxHashMap;
use crate::state::{DpError, DpInstance};
use mcp_core::{Budget, SimConfig, Time, TripReason, Workload};

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: u16,
    owner: usize,
    ready_at: Time,
}

/// Outcome of a budget-governed exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// The search space was exhausted: the value is exact.
    Complete(u64),
    /// The budget tripped mid-search. `incumbent` is the best objective
    /// score found so far (an achievable upper bound), if any schedule
    /// completed before the trip. Searches carry no checkpoint — their
    /// DFS state is a call stack, not a layer.
    Truncated {
        /// Why the budget tripped.
        reason: TripReason,
        /// Best achievable score found before the trip.
        incumbent: Option<u64>,
        /// Nodes expanded before the trip.
        nodes: usize,
    },
}

/// Internal unwind marker: the budget tripped somewhere down the DFS.
pub(crate) struct BudgetTripped(pub(crate) TripReason);

/// How many node expansions between full budget checks (a full check
/// costs an `Instant::now()`); the state cap is still enforced on every
/// node.
pub(crate) const CHECK_MASK: usize = 0xFFF;

/// Shared per-node governance for the DFS searches: exact state-cap
/// enforcement, periodic deadline/cancellation checks.
pub(crate) fn check_node(budget: &Budget, nodes: usize) -> Result<(), BudgetTripped> {
    if let Some(cap) = budget.max_states() {
        if nodes > cap {
            return Err(BudgetTripped(TripReason::StateCap { states: nodes, cap }));
        }
    }
    // Fire on the first node (so tiny searches still observe deadlines
    // and cancellation), then every CHECK_MASK + 1 nodes.
    if nodes & CHECK_MASK == 1 {
        budget.check(nodes, 0).map_err(BudgetTripped)?;
    }
    Ok(())
}

/// What the exhaustive search minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Objective {
    /// Total faults — the paper's FINAL-TOTAL-FAULTS.
    Faults,
    /// Completion time of the last request — Hassidim's makespan.
    Makespan,
    /// Lexicographic: minimum faults, then minimum makespan among
    /// fault-optimal schedules. `weight` must exceed any possible
    /// makespan.
    FaultsThenMakespan { weight: u64 },
    /// Lexicographic: minimum makespan, then minimum faults among
    /// makespan-optimal schedules. `weight` must exceed any possible
    /// fault count.
    MakespanThenFaults { weight: u64 },
}

struct Search<'a> {
    inst: &'a DpInstance,
    /// occurrences[core][dense page] = ascending request indices.
    occurrences: Vec<FxHashMap<u16, Vec<usize>>>,
    pos: Vec<usize>,
    ready: Vec<Time>,
    cache: Vec<Slot>,
    faults: u64,
    completion: Time,
    objective: Objective,
    best: u64,
    nodes: usize,
    budget: &'a Budget,
    restricted_fitf: bool,
}

impl<'a> Search<'a> {
    fn new(
        inst: &'a DpInstance,
        restricted_fitf: bool,
        objective: Objective,
        budget: &'a Budget,
    ) -> Self {
        let p = inst.num_cores();
        let occurrences = inst
            .seqs
            .iter()
            .map(|seq| {
                let mut occ: FxHashMap<u16, Vec<usize>> = FxHashMap::default();
                for (i, &pg) in seq.iter().enumerate() {
                    occ.entry(pg).or_default().push(i);
                }
                occ
            })
            .collect();
        Search {
            inst,
            occurrences,
            pos: vec![0; p],
            ready: vec![1; p],
            cache: Vec::with_capacity(inst.k),
            faults: 0,
            completion: 0,
            objective,
            best: u64::MAX,
            nodes: 0,
            budget,
            restricted_fitf,
        }
    }

    fn score(&self) -> u64 {
        match self.objective {
            Objective::Faults => self.faults,
            Objective::Makespan => self.completion,
            Objective::FaultsThenMakespan { weight } => self.faults * weight + self.completion,
            Objective::MakespanThenFaults { weight } => self.completion * weight + self.faults,
        }
    }

    fn finished(&self, core: usize) -> bool {
        self.pos[core] >= self.inst.seqs[core].len()
    }

    fn next_use(&self, core: usize, page: u16) -> usize {
        match self.occurrences[core].get(&page) {
            None => usize::MAX,
            Some(positions) => {
                let i = positions.partition_point(|&q| q < self.pos[core]);
                positions.get(i).copied().unwrap_or(usize::MAX)
            }
        }
    }

    /// Victim slot candidates for a fault: resident, not requested this
    /// parallel step (`req` is the timestep's request snapshot — the
    /// model's pinning rule, matching `R(x) ⊆ C'` in the DPs).
    fn candidates(&self, now: Time, req: &[u16]) -> Vec<usize> {
        let evictable = |s: &Slot| s.ready_at <= now && !req.contains(&s.page);
        if !self.restricted_fitf {
            return (0..self.cache.len())
                .filter(|&i| evictable(&self.cache[i]))
                .collect();
        }
        // Per sequence, the furthest-in-the-future evictable page.
        let mut out = Vec::new();
        for core in 0..self.inst.num_cores() {
            let mut best: Option<(usize, usize)> = None; // (next_use, slot)
            for (i, s) in self.cache.iter().enumerate() {
                if s.owner != core || !evictable(s) {
                    continue;
                }
                let nu = self.next_use(core, s.page);
                if best.map(|(b, _)| nu > b).unwrap_or(true) {
                    best = Some((nu, i));
                }
            }
            if let Some((_, slot)) = best {
                out.push(slot);
            }
        }
        out
    }

    /// Pages requested by cores due at `t` (the pin snapshot).
    fn request_snapshot(&self, t: Time) -> Vec<u16> {
        (0..self.inst.num_cores())
            .filter(|&c| !self.finished(c) && self.ready[c] == t)
            .map(|c| self.inst.seqs[c][self.pos[c]])
            .collect()
    }

    fn lookup(&self, page: u16, now: Time) -> Option<(usize, bool)> {
        self.cache
            .iter()
            .position(|s| s.page == page)
            .map(|i| (i, self.cache[i].ready_at <= now))
    }

    /// Serve everything from time `t`, cores starting at `core`, exploring
    /// all victim choices. `req` is the timestep's request snapshot.
    /// Returns `Err` if the budget tripped.
    fn go(&mut self, t: Time, core: usize, req: &[u16]) -> Result<(), BudgetTripped> {
        self.nodes += 1;
        check_node(self.budget, self.nodes)?;
        // Both objectives are monotone along a path (faults only grow;
        // completion only grows), so bound-pruning is sound for either.
        if self.score() >= self.best {
            return Ok(());
        }
        // Find the next core due at time t.
        let mut c = core;
        while c < self.inst.num_cores() && (self.finished(c) || self.ready[c] != t) {
            c += 1;
        }
        if c == self.inst.num_cores() {
            // Timestep done: jump to the next event.
            let next_t = (0..self.inst.num_cores())
                .filter(|&j| !self.finished(j))
                .map(|j| self.ready[j])
                .min();
            return match next_t {
                None => {
                    self.best = self.best.min(self.score());
                    Ok(())
                }
                Some(t2) => {
                    debug_assert!(t2 > t);
                    let req2 = self.request_snapshot(t2);
                    self.go(t2, 0, &req2)
                }
            };
        }

        let page = self.inst.seqs[c][self.pos[c]];
        match self.lookup(page, t) {
            Some((_, true)) => {
                // Hit.
                self.pos[c] += 1;
                self.ready[c] = t + 1;
                let saved = self.completion;
                self.completion = self.completion.max(t);
                self.go(t, c + 1, req)?;
                self.completion = saved;
                self.pos[c] -= 1;
                self.ready[c] = t;
                Ok(())
            }
            Some((_, false)) => {
                // In flight for another core: fault, join the fetch.
                self.pos[c] += 1;
                self.ready[c] = t + self.inst.tau + 1;
                self.faults += 1;
                let saved = self.completion;
                self.completion = self.completion.max(t + self.inst.tau);
                self.go(t, c + 1, req)?;
                self.completion = saved;
                self.faults -= 1;
                self.pos[c] -= 1;
                self.ready[c] = t;
                Ok(())
            }
            None => {
                // Fault: place, branching over victims when full.
                self.pos[c] += 1;
                self.ready[c] = t + self.inst.tau + 1;
                self.faults += 1;
                let saved = self.completion;
                self.completion = self.completion.max(t + self.inst.tau);
                let slot = Slot {
                    page,
                    owner: c,
                    ready_at: t + self.inst.tau + 1,
                };
                if self.cache.len() < self.inst.k {
                    self.cache.push(slot);
                    self.go(t, c + 1, req)?;
                    self.cache.pop();
                } else {
                    let cands = self.candidates(t, req);
                    debug_assert!(!cands.is_empty(), "K >= p guarantees a victim");
                    for i in cands {
                        let old = self.cache[i];
                        self.cache[i] = slot;
                        self.go(t, c + 1, req)?;
                        self.cache[i] = old;
                    }
                }
                self.completion = saved;
                self.faults -= 1;
                self.pos[c] -= 1;
                self.ready[c] = t;
                Ok(())
            }
        }
    }
}

/// Governed core: run the search under `budget`, returning either the
/// exact optimum or a truncated outcome with the incumbent found so far.
fn run_governed(
    workload: &Workload,
    cfg: SimConfig,
    restricted: bool,
    objective: Objective,
    budget: &Budget,
) -> Result<SearchOutcome, DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    if workload.is_empty() {
        return Ok(SearchOutcome::Complete(0));
    }
    let mut search = Search::new(&inst, restricted, objective, budget);
    let req = search.request_snapshot(1);
    match search.go(1, 0, &req) {
        Ok(()) => Ok(SearchOutcome::Complete(search.best)),
        Err(BudgetTripped(reason)) => Ok(SearchOutcome::Truncated {
            reason,
            incumbent: (search.best < u64::MAX).then_some(search.best),
            nodes: search.nodes,
        }),
    }
}

fn run(
    workload: &Workload,
    cfg: SimConfig,
    restricted: bool,
    objective: Objective,
    max_nodes: usize,
) -> Result<u64, DpError> {
    let budget = Budget::unlimited().with_max_states(max_nodes);
    match run_governed(workload, cfg, restricted, objective, &budget)? {
        SearchOutcome::Complete(v) => Ok(v),
        SearchOutcome::Truncated {
            incumbent, nodes, ..
        } => Err(DpError::TooLarge {
            states: nodes,
            cap: max_nodes,
            incumbent,
        }),
    }
}

/// Honest exhaustive minimum total faults: branch over every resident
/// victim on every fault. Exponential; tiny instances only.
pub fn brute_force_min_faults(
    workload: &Workload,
    cfg: SimConfig,
    max_nodes: usize,
) -> Result<u64, DpError> {
    run(workload, cfg, false, Objective::Faults, max_nodes)
}

/// Budget-governed [`brute_force_min_faults`]: instead of erroring when a
/// limit trips, returns [`SearchOutcome::Truncated`] with the best fault
/// count found so far (a valid upper bound on the optimum).
pub fn brute_force_min_faults_governed(
    workload: &Workload,
    cfg: SimConfig,
    budget: &Budget,
) -> Result<SearchOutcome, DpError> {
    run_governed(workload, cfg, false, Objective::Faults, budget)
}

/// Honest exhaustive minimum *makespan* (Hassidim's objective, but within
/// this paper's no-scheduling model): the earliest possible completion
/// time of the last request. Exponential; tiny instances only.
pub fn brute_force_min_makespan(
    workload: &Workload,
    cfg: SimConfig,
    max_nodes: usize,
) -> Result<u64, DpError> {
    run(workload, cfg, false, Objective::Makespan, max_nodes)
}

fn lex_weight(workload: &Workload, cfg: SimConfig) -> u64 {
    workload.total_len() as u64 * (cfg.tau + 1) + 2
}

/// Honest exhaustive lexicographic optimum `(faults, makespan)`: the best
/// makespan achievable by any *fault-optimal* schedule.
pub fn brute_force_faults_then_makespan(
    workload: &Workload,
    cfg: SimConfig,
    max_nodes: usize,
) -> Result<(u64, u64), DpError> {
    let weight = lex_weight(workload, cfg);
    let score = run(
        workload,
        cfg,
        false,
        Objective::FaultsThenMakespan { weight },
        max_nodes,
    )?;
    Ok((score / weight, score % weight))
}

/// Honest exhaustive lexicographic optimum `(makespan, faults)`: the best
/// fault count achievable by any *makespan-optimal* schedule.
pub fn brute_force_makespan_then_faults(
    workload: &Workload,
    cfg: SimConfig,
    max_nodes: usize,
) -> Result<(u64, u64), DpError> {
    let weight = lex_weight(workload, cfg);
    let score = run(
        workload,
        cfg,
        false,
        Objective::MakespanThenFaults { weight },
        max_nodes,
    )?;
    Ok((score / weight, score % weight))
}

/// Minimum total faults achievable by Theorem 5's restricted class: on
/// each fault choose a sequence and evict its furthest-in-the-future
/// resident page. Exponential in the number of faults; tiny instances.
pub fn fitf_restricted_min_faults(
    workload: &Workload,
    cfg: SimConfig,
    max_nodes: usize,
) -> Result<u64, DpError> {
    run(workload, cfg, true, Objective::Faults, max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady_seq::belady_faults;
    use crate::ftf_dp::ftf_min_faults;
    use mcp_core::PageId;

    const NODES: usize = 50_000_000;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn brute_force_matches_belady_single_core() {
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 1, 2, 3],
            vec![1, 2, 1, 3, 1, 2],
            vec![3, 2, 1, 1, 2, 3],
        ];
        for vs in cases {
            let w = wl(&[&vs]);
            let seq: Vec<PageId> = vs.iter().copied().map(PageId).collect();
            for k in 1..=3usize {
                for tau in [0u64, 2] {
                    let bf = brute_force_min_faults(&w, SimConfig::new(k, tau), NODES).unwrap();
                    assert_eq!(bf, belady_faults(&seq, k), "{vs:?} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn brute_force_matches_dp_two_cores() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
            vec![vec![1, 2, 3, 1], vec![7, 7, 7, 7]],
            vec![vec![1, 1, 2, 2], vec![7, 8, 8, 7]],
            vec![vec![1, 2, 3], vec![7, 8, 9]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for k in [2usize, 3] {
                for tau in [0u64, 1, 2] {
                    let cfg = SimConfig::new(k, tau);
                    let bf = brute_force_min_faults(&w, cfg, NODES).unwrap();
                    let dp = ftf_min_faults(&w, cfg).unwrap();
                    assert_eq!(bf, dp, "{seqs:?} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn theorem5_restricted_class_is_optimal_on_disjoint() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
            vec![vec![1, 2, 3, 1, 2], vec![7, 7, 7, 7, 7]],
            vec![vec![1, 2, 1], vec![7, 8, 9]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for k in [2usize, 3] {
                for tau in [0u64, 1] {
                    let cfg = SimConfig::new(k, tau);
                    let restricted = fitf_restricted_min_faults(&w, cfg, NODES).unwrap();
                    let dp = ftf_min_faults(&w, cfg).unwrap();
                    assert_eq!(restricted, dp, "{seqs:?} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn makespan_objective_lower_bounds_and_diverges() {
        // Completion can never beat the all-hit bound max_j n_j, and with
        // an ample cache it equals (cold miss + hits) timing.
        let w = wl(&[&[1, 1, 1, 1]]);
        let ms = brute_force_min_makespan(&w, SimConfig::new(1, 3), NODES).unwrap();
        // Fault at t=1 completes at 4; hits at 5, 6, 7.
        assert_eq!(ms, 7);
        // Makespan optimum <= makespan of any fault-optimal schedule, and
        // fault optimum <= faults of any makespan-optimal schedule: the
        // objectives genuinely order schedules differently, but both are
        // bounded by the model.
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(3, 2);
        let ms = brute_force_min_makespan(&w, cfg, NODES).unwrap();
        assert!(ms >= 4, "at least one step per request of the longest core");
        assert!(ms <= 4 * 3 + 3, "bounded by the all-fault horizon");
    }

    #[test]
    fn makespan_matches_engine_for_forced_schedules() {
        use mcp_policies::{Replay, ReplayDecision};
        use std::collections::HashMap;
        // One core, K = 1: every request faults; the only schedule is
        // forced, so min makespan equals the engine's makespan.
        let w = wl(&[&[1, 2, 3]]);
        let cfg = SimConfig::new(1, 2);
        let ms = brute_force_min_makespan(&w, cfg, NODES).unwrap();
        let mut d = HashMap::new();
        d.insert((0usize, 0usize), ReplayDecision::UseEmpty);
        d.insert((0, 1), ReplayDecision::Evict(PageId(1)));
        d.insert((0, 2), ReplayDecision::Evict(PageId(2)));
        let r = mcp_core::simulate(&w, cfg, Replay::new(d)).unwrap();
        assert_eq!(ms, r.makespan);
    }

    #[test]
    fn lexicographic_objectives_decompose_consistently() {
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        for (k, tau) in [(2usize, 1u64), (3, 1), (3, 2)] {
            let cfg = SimConfig::new(k, tau);
            let min_f = brute_force_min_faults(&w, cfg, NODES).unwrap();
            let min_m = brute_force_min_makespan(&w, cfg, NODES).unwrap();
            let (f1, m_of_f) = brute_force_faults_then_makespan(&w, cfg, NODES).unwrap();
            let (m1, f_of_m) = brute_force_makespan_then_faults(&w, cfg, NODES).unwrap();
            // Primary components equal the single-objective optima.
            assert_eq!(f1, min_f, "k={k} tau={tau}");
            assert_eq!(m1, min_m, "k={k} tau={tau}");
            // Secondary components are feasible values, so bounded below
            // by their own optima.
            assert!(m_of_f >= min_m);
            assert!(f_of_m >= min_f);
            // And a fault-optimal schedule's makespan is a real makespan:
            // at most the all-fault horizon.
            assert!(m_of_f <= w.total_len() as u64 * (tau + 1));
        }
    }

    #[test]
    fn node_budget_is_enforced() {
        let w = wl(&[&[1, 2, 3, 4, 1, 2, 3, 4], &[5, 6, 7, 8, 5, 6, 7, 8]]);
        let err = brute_force_min_faults(&w, SimConfig::new(3, 1), 10).unwrap_err();
        assert!(matches!(err, DpError::TooLarge { .. }));
    }

    #[test]
    fn governed_truncation_incumbent_upper_bounds_optimum() {
        use mcp_core::{Budget, TripReason};
        let w = wl(&[&[1, 2, 3, 4, 1, 2, 3, 4], &[5, 6, 7, 8, 5, 6, 7, 8]]);
        let cfg = SimConfig::new(3, 1);
        // DFS dives to a complete schedule quickly, so even a modest node
        // cap leaves an incumbent behind.
        let budget = Budget::unlimited().with_max_states(5_000);
        let out = brute_force_min_faults_governed(&w, cfg, &budget).unwrap();
        let SearchOutcome::Truncated {
            reason,
            incumbent,
            nodes,
        } = out
        else {
            panic!("node cap must truncate")
        };
        assert!(matches!(reason, TripReason::StateCap { .. }));
        assert!(nodes > 5_000);
        let opt = brute_force_min_faults(&w, cfg, NODES).unwrap();
        let ub = incumbent.expect("a full schedule was reached before the cap");
        assert!(opt <= ub, "incumbent {ub} below optimum {opt}");
        // Unlimited governed search completes with the exact optimum.
        let full = brute_force_min_faults_governed(&w, cfg, &Budget::unlimited()).unwrap();
        assert_eq!(full, SearchOutcome::Complete(opt));
    }

    #[test]
    fn empty_workload_is_zero() {
        let w = wl(&[&[], &[]]);
        assert_eq!(
            brute_force_min_faults(&w, SimConfig::new(2, 1), NODES).unwrap(),
            0
        );
    }
}
