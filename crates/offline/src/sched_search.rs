//! The *scheduling-capable* offline model (Hassidim's), for contrast.
//!
//! The paper's central modeling decision (Sections 1–3) is that the paging
//! algorithm has **no scheduling power**: every due request must be served
//! immediately. Hassidim's model instead lets the (offline) algorithm
//! delay sequences arbitrarily — the power that makes LRU non-competitive
//! in his framework. This module implements exhaustive optima for that
//! richer model: at every timestep the algorithm may *stall* any subset of
//! due cores, deferring their requests.
//!
//! Comparing [`sched_min`] against the no-scheduling optima of
//! [`crate::search`] quantifies exactly how much the scheduling freedom is
//! worth — the gap that separates the two papers' models (extension
//! experiment X04).
//!
//! Exponential in every direction (subsets × victims); tiny instances only.

use crate::partition_opt::{partition_dp, policy_curves, PartPolicy};
use crate::search::{check_node, BudgetTripped, Objective, SearchOutcome};
use crate::state::{DpError, DpInstance};
use mcp_core::{Budget, PageId, SimConfig, Time, Workload};
use mcp_policies::Partition;

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: u16,
    ready_at: Time,
}

struct SchedSearch<'a> {
    inst: &'a DpInstance,
    pos: Vec<usize>,
    ready: Vec<Time>,
    cache: Vec<Slot>,
    faults: u64,
    completion: Time,
    objective: Objective,
    best: u64,
    nodes: usize,
    budget: &'a Budget,
    /// Hard horizon: pruning stalls that run past any useful time.
    horizon: Time,
}

impl<'a> SchedSearch<'a> {
    fn score(&self) -> u64 {
        match self.objective {
            Objective::Faults => self.faults,
            Objective::Makespan => self.completion,
            Objective::FaultsThenMakespan { weight } => self.faults * weight + self.completion,
            Objective::MakespanThenFaults { weight } => self.completion * weight + self.faults,
        }
    }

    fn finished(&self, core: usize) -> bool {
        self.pos[core] >= self.inst.seqs[core].len()
    }

    fn all_finished(&self) -> bool {
        (0..self.inst.num_cores()).all(|c| self.finished(c))
    }

    fn lookup(&self, page: u16, now: Time) -> Option<(usize, bool)> {
        self.cache
            .iter()
            .position(|s| s.page == page)
            .map(|i| (i, self.cache[i].ready_at <= now))
    }

    /// Serve or stall each due core at time `t`, starting from core index
    /// `c`; `pinned` is the bitmask of dense pages read by the cores
    /// *chosen to be served* — since stalling is chosen per core as we
    /// go, we pin conservatively: a page is pinned once its core has been
    /// chosen to read it this step. Passed by value, so backtracking
    /// restores it for free.
    fn go(
        &mut self,
        t: Time,
        c: usize,
        pinned: u64,
        served: usize,
        due: usize,
    ) -> Result<(), BudgetTripped> {
        self.nodes += 1;
        check_node(self.budget, self.nodes)?;
        if self.score() >= self.best || t > self.horizon {
            return Ok(());
        }
        let p = self.inst.num_cores();
        let mut core = c;
        while core < p && (self.finished(core) || self.ready[core] != t) {
            core += 1;
        }
        if core == p {
            // Dominance: if every unfinished core was due and none was
            // served, the timestep was a pure time shift (no fetch was in
            // flight) — the identical decisions one step later are always
            // reachable without it.
            let unfinished = (0..p).filter(|&j| !self.finished(j)).count();
            if due > 0 && served == 0 && due == unfinished {
                return Ok(());
            }
            if self.all_finished() {
                self.best = self.best.min(self.score());
                return Ok(());
            }
            let next_t = (0..p)
                .filter(|&j| !self.finished(j))
                .map(|j| self.ready[j])
                .min();
            if let Some(t2) = next_t {
                debug_assert!(t2 > t);
                let due2 = (0..p)
                    .filter(|&j| !self.finished(j) && self.ready[j] == t2)
                    .count();
                return self.go(t2, 0, 0, 0, due2);
            }
            return Ok(());
        }

        // Option A: stall this core for one timestep (the scheduling power).
        self.ready[core] = t + 1;
        self.go(t, core + 1, pinned, served, due)?;
        self.ready[core] = t;

        // Option B: serve it.
        let page = self.inst.seqs[core][self.pos[core]];
        match self.lookup(page, t) {
            Some((_, true)) => {
                self.pos[core] += 1;
                self.ready[core] = t + 1;
                let saved = self.completion;
                self.completion = self.completion.max(t);
                self.go(t, core + 1, pinned | (1u64 << page), served + 1, due)?;
                self.completion = saved;
                self.pos[core] -= 1;
                self.ready[core] = t;
            }
            Some((_, false)) => {
                // In flight: join the fetch.
                self.pos[core] += 1;
                self.ready[core] = t + self.inst.tau + 1;
                self.faults += 1;
                let saved = self.completion;
                self.completion = self.completion.max(t + self.inst.tau);
                self.go(t, core + 1, pinned, served + 1, due)?;
                self.completion = saved;
                self.faults -= 1;
                self.pos[core] -= 1;
                self.ready[core] = t;
            }
            None => {
                self.pos[core] += 1;
                self.ready[core] = t + self.inst.tau + 1;
                self.faults += 1;
                let saved = self.completion;
                self.completion = self.completion.max(t + self.inst.tau);
                let slot = Slot {
                    page,
                    ready_at: t + self.inst.tau + 1,
                };
                let pinned = pinned | (1u64 << page);
                if self.cache.len() < self.inst.k {
                    self.cache.push(slot);
                    self.go(t, core + 1, pinned, served + 1, due)?;
                    self.cache.pop();
                } else {
                    for i in 0..self.cache.len() {
                        let victim = self.cache[i];
                        if victim.ready_at > t || pinned & (1u64 << victim.page) != 0 {
                            continue; // in flight or read this step
                        }
                        self.cache[i] = slot;
                        self.go(t, core + 1, pinned, served + 1, due)?;
                        self.cache[i] = victim;
                    }
                }
                self.completion = saved;
                self.faults -= 1;
                self.pos[core] -= 1;
                self.ready[core] = t;
            }
        }
        Ok(())
    }
}

/// Exhaustive optimum in the scheduling-capable model: the algorithm may
/// stall any core at any timestep. Returns the optimum of `objective`.
///
/// `horizon` bounds how late the schedule may run (stalls make schedules
/// unboundedly long otherwise); any request not completed by `horizon`
/// invalidates a branch. A safe horizon for fault minimization is
/// `n(τ+1) + slack`. `initial_bound`, if given, seeds branch-and-bound
/// with a known achievable score **plus one** (e.g. the no-scheduling
/// optimum, which scheduling can only match or beat).
pub fn sched_min(
    workload: &Workload,
    cfg: SimConfig,
    objective: Objective,
    horizon: Time,
    initial_bound: Option<u64>,
    max_nodes: usize,
) -> Result<u64, DpError> {
    let budget = Budget::unlimited().with_max_states(max_nodes);
    match sched_min_governed(workload, cfg, objective, horizon, initial_bound, &budget)? {
        SearchOutcome::Complete(v) => Ok(v),
        SearchOutcome::Truncated {
            incumbent, nodes, ..
        } => Err(DpError::TooLarge {
            states: nodes,
            cap: max_nodes,
            incumbent,
        }),
    }
}

/// Budget-governed [`sched_min`]: instead of erroring when a limit
/// trips, returns [`SearchOutcome::Truncated`] whose `incumbent` is the
/// best score the search itself achieved before the trip (the seeded
/// `initial_bound`, never achieved by this search, is not reported).
pub fn sched_min_governed(
    workload: &Workload,
    cfg: SimConfig,
    objective: Objective,
    horizon: Time,
    initial_bound: Option<u64>,
    budget: &Budget,
) -> Result<SearchOutcome, DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    if workload.is_empty() {
        return Ok(SearchOutcome::Complete(0));
    }
    let p = inst.num_cores();
    let due = p; // every core's first request is due at t = 1
    let mut search = SchedSearch {
        inst: &inst,
        pos: vec![0; p],
        ready: vec![1; p],
        cache: Vec::with_capacity(inst.k),
        faults: 0,
        completion: 0,
        objective,
        best: initial_bound
            .map(|b| b.saturating_add(1))
            .unwrap_or(u64::MAX),
        nodes: 0,
        budget,
        horizon,
    };
    let seeded = search.best;
    match search.go(1, 0, 0, 0, due) {
        Ok(()) => {
            if search.best == u64::MAX || (initial_bound.is_some() && search.best == seeded) {
                return Err(DpError::Model(format!(
                    "no schedule completed within horizon {horizon} under the given bound; raise them"
                )));
            }
            Ok(SearchOutcome::Complete(search.best))
        }
        Err(BudgetTripped(reason)) => Ok(SearchOutcome::Truncated {
            reason,
            incumbent: (search.best < seeded).then_some(search.best),
            nodes: search.nodes,
        }),
    }
}

// ---------------------------------------------------------------------------
// JOINT CACHE PARTITION AND JOB ASSIGNMENT (Hassidim–Kaplan–Tuval).
//
// The second scheduling knob the SPAA'11 model deliberately lacks: instead
// of each sequence being pinned to its core, the algorithm chooses which
// core runs which job (a core runs its jobs back to back) *and* how the
// shared cache is partitioned among the cores. The evaluation model is the
// same per-part fault-curve model as `optimal_static_partition`: exact for
// disjoint jobs under static partitions, a heuristic when jobs share pages
// across cores.
// ---------------------------------------------------------------------------

/// A joint cache-partition and job-assignment solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointSolution {
    /// `assignment[j]` is the core job `j` runs on.
    pub assignment: Vec<usize>,
    /// Per-core cache quotas, summing to the cache size.
    pub partition: Partition,
    /// Total faults under the per-part fault-curve model.
    pub faults: u64,
    /// Per-core fault counts.
    pub per_core: Vec<u64>,
}

fn core_sequences(jobs: &Workload, assignment: &[usize], cores: usize) -> Vec<Vec<PageId>> {
    let mut seqs = vec![Vec::new(); cores];
    for (job, &core) in assignment.iter().enumerate() {
        if core != usize::MAX {
            seqs[core].extend_from_slice(jobs.sequence(job));
        }
    }
    seqs
}

/// Evaluate a fixed job→core assignment: concatenate each core's jobs in
/// job-index order, then pick the fault-optimal partition for that
/// assignment via the per-part curve DP. This is also the baseline
/// evaluator for comparing against a fixed (e.g. round-robin) assignment.
///
/// Panics if `cache_size < cores` or any `assignment[j] >= cores`.
pub fn evaluate_assignment(
    jobs: &Workload,
    assignment: &[usize],
    cores: usize,
    cache_size: usize,
    policy: PartPolicy,
) -> JointSolution {
    assert!(cores >= 1, "need at least one core");
    assert!(cache_size >= cores, "need at least one cell per core");
    assert!(
        assignment.iter().all(|&c| c < cores),
        "assignment targets a core out of range"
    );
    let seqs = core_sequences(jobs, assignment, cores);
    let curves = policy_curves(&seqs, cache_size, policy);
    let (sizes, faults) = partition_dp(&curves, cache_size);
    let per_core: Vec<u64> = (0..cores).map(|c| curves[c][sizes[c] - 1]).collect();
    JointSolution {
        assignment: assignment.to_vec(),
        partition: Partition::from_sizes(sizes),
        faults,
        per_core,
    }
}

/// Greedy joint optimizer: place jobs one at a time — most demanding
/// first, demand measured as faults with a single cell — onto whichever
/// core minimizes the total under a re-optimized partition (ties to the
/// lower core index, so the result is deterministic). Each placement
/// re-runs the curve DP, so the partition co-evolves with the assignment
/// rather than being fixed up afterwards.
pub fn joint_greedy(
    jobs: &Workload,
    cores: usize,
    cache_size: usize,
    policy: PartPolicy,
) -> JointSolution {
    assert!(cores >= 1, "need at least one core");
    assert!(cache_size >= cores, "need at least one cell per core");
    let q = jobs.num_cores();
    let demand: Vec<u64> = (0..q)
        .map(|j| {
            let seq = jobs.sequence(j);
            policy_curves(&[seq], 1, policy)[0][0]
        })
        .collect();
    let mut order: Vec<usize> = (0..q).collect();
    order.sort_by(|&a, &b| demand[b].cmp(&demand[a]).then(a.cmp(&b)));

    let mut assignment = vec![usize::MAX; q];
    for &job in &order {
        let mut best: Option<(u64, usize)> = None;
        for core in 0..cores {
            assignment[job] = core;
            let seqs = core_sequences(jobs, &assignment, cores);
            let curves = policy_curves(&seqs, cache_size, policy);
            let (_, faults) = partition_dp(&curves, cache_size);
            if best.is_none_or(|(bf, _)| faults < bf) {
                best = Some((faults, core));
            }
        }
        assignment[job] = best.expect("at least one core").1;
    }
    evaluate_assignment(jobs, &assignment, cores, cache_size, policy)
}

/// Exhaustive joint optimum: try every `cores^q` assignment, each under
/// its optimal partition. `None` when the assignment count exceeds
/// `max_assignments` (the tiny-scale ground truth behind experiment X06,
/// same contract as the `mcp-oracle` brute-force searches). Ties resolve
/// to the lexicographically smallest assignment.
pub fn joint_exhaustive(
    jobs: &Workload,
    cores: usize,
    cache_size: usize,
    policy: PartPolicy,
    max_assignments: usize,
) -> Option<JointSolution> {
    assert!(cores >= 1, "need at least one core");
    assert!(cache_size >= cores, "need at least one cell per core");
    let q = jobs.num_cores() as u32;
    let total = (cores as u128).checked_pow(q)?;
    if total > max_assignments as u128 {
        return None;
    }
    let mut best: Option<JointSolution> = None;
    let mut assignment = vec![0usize; q as usize];
    loop {
        let cand = evaluate_assignment(jobs, &assignment, cores, cache_size, policy);
        if best.as_ref().is_none_or(|b| cand.faults < b.faults) {
            best = Some(cand);
        }
        // Odometer over base-`cores` digits, rightmost digit fastest, so
        // assignments enumerate in lexicographic order.
        let mut digit = assignment.len();
        loop {
            if digit == 0 {
                return best;
            }
            digit -= 1;
            assignment[digit] += 1;
            if assignment[digit] < cores {
                break;
            }
            assignment[digit] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{brute_force_min_faults, brute_force_min_makespan};

    const NODES: usize = 60_000_000;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    fn horizon(w: &Workload, cfg: SimConfig) -> Time {
        (w.total_len() as u64 + 4) * (cfg.tau + 1) + 4
    }

    #[test]
    fn scheduling_never_hurts_either_objective() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
            vec![vec![1, 2, 3], vec![7, 7, 7]],
        ];
        for seqs in cases {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            for tau in [0u64, 1] {
                let cfg = SimConfig::new(2, tau);
                let h = horizon(&w, cfg);
                let plain_f = brute_force_min_faults(&w, cfg, NODES).unwrap();
                let sched_f =
                    sched_min(&w, cfg, Objective::Faults, h, Some(plain_f), NODES).unwrap();
                assert!(
                    sched_f <= plain_f,
                    "{seqs:?} tau={tau}: faults {sched_f} > {plain_f}"
                );
                let plain_m = brute_force_min_makespan(&w, cfg, NODES).unwrap();
                let sched_m =
                    sched_min(&w, cfg, Objective::Makespan, h, Some(plain_m), NODES).unwrap();
                assert!(
                    sched_m <= plain_m,
                    "{seqs:?} tau={tau}: makespan {sched_m} > {plain_m}"
                );
            }
        }
    }

    #[test]
    fn scheduling_strictly_helps_on_aligned_thrash() {
        // K = 2, both cores alternate 2 private pages, perfectly aligned:
        // without scheduling every request faults (12 faults, see the
        // ftf_dp test); with scheduling, stalling core 1 lets core 0 keep
        // both pages, then they swap — strictly fewer faults.
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(2, 1);
        let plain = brute_force_min_faults(&w, cfg, NODES).unwrap();
        assert_eq!(plain, 8);
        let h = horizon(&w, cfg) + 10;
        let sched = sched_min(&w, cfg, Objective::Faults, h, Some(plain), NODES).unwrap();
        assert!(
            sched < plain,
            "scheduling must break the alignment deadlock: {sched} vs {plain}"
        );
    }

    #[test]
    fn single_core_gains_nothing() {
        // With p = 1 stalling only wastes time: fault optimum unchanged.
        let w = wl(&[&[1, 2, 3, 1, 2]]);
        let cfg = SimConfig::new(2, 1);
        let h = horizon(&w, cfg);
        let plain = brute_force_min_faults(&w, cfg, NODES).unwrap();
        let sched = sched_min(&w, cfg, Objective::Faults, h, None, NODES).unwrap();
        assert_eq!(plain, sched);
    }

    #[test]
    fn governed_deadline_truncates_with_reason() {
        use mcp_core::TripReason;
        use std::time::Duration;
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(2, 1);
        let h = horizon(&w, cfg);
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let out = sched_min_governed(&w, cfg, Objective::Faults, h, None, &budget).unwrap();
        let SearchOutcome::Truncated { reason, .. } = out else {
            panic!("zero deadline must truncate")
        };
        assert_eq!(reason, TripReason::Deadline);
        // And an unlimited governed run agrees with the ungoverned one.
        let plain = sched_min(&w, cfg, Objective::Faults, h, None, NODES).unwrap();
        let full =
            sched_min_governed(&w, cfg, Objective::Faults, h, None, &Budget::unlimited()).unwrap();
        assert_eq!(full, SearchOutcome::Complete(plain));
    }

    #[test]
    fn joint_greedy_beats_round_robin_on_sharing_jobs() {
        // Jobs 0 and 1 touch the same 3 pages, as do jobs 2 and 3.
        // Round-robin (j % 2) splits each sharing pair across the cores,
        // paying every working set cold twice; the greedy optimizer
        // co-locates sharers so each page set is faulted in exactly once.
        let a: Vec<u32> = (0..24).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..24).map(|i| 10 + i % 3).collect();
        let jobs = wl(&[&a, &a, &b, &b]);
        let (cores, k) = (2, 6);
        let greedy = joint_greedy(&jobs, cores, k, PartPolicy::Lru);
        let rr: Vec<usize> = (0..4).map(|j| j % cores).collect();
        let fixed = evaluate_assignment(&jobs, &rr, cores, k, PartPolicy::Lru);
        assert_eq!(fixed.faults, 12); // every 3-page set cold on both cores
        assert_eq!(greedy.faults, 6); // each set cold exactly once
        assert!(greedy.faults < fixed.faults);
    }

    #[test]
    fn joint_greedy_matches_exhaustive_on_tiny_instances() {
        let a: Vec<u32> = (0..12).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..12).map(|i| 10 + i % 2).collect();
        let jobs = wl(&[&a, &b, &[30; 6]]);
        for k in [3usize, 4, 5] {
            let greedy = joint_greedy(&jobs, 2, k, PartPolicy::Opt);
            let exact = joint_exhaustive(&jobs, 2, k, PartPolicy::Opt, 1 << 20).unwrap();
            assert!(greedy.faults >= exact.faults, "greedy beat the optimum?");
            assert_eq!(
                greedy.faults, exact.faults,
                "k={k}: greedy {} vs exhaustive {}",
                greedy.faults, exact.faults
            );
        }
    }

    #[test]
    fn evaluate_assignment_agrees_with_simulation() {
        use mcp_core::simulate;
        use mcp_policies::static_partition_lru;
        // Disjoint jobs, τ=0: the curve model is exact, so simulating the
        // concatenated per-core sequences under the chosen static
        // partition reproduces the predicted per-core faults.
        let jobs = wl(&[&[1, 2, 1, 2, 1], &[7, 8, 9, 7, 8, 9], &[4; 5]]);
        let sol = evaluate_assignment(&jobs, &[0, 1, 0], 2, 5, PartPolicy::Lru);
        let seqs = core_sequences(&jobs, &sol.assignment, 2);
        let w = Workload::new(seqs).unwrap();
        let r = simulate(
            &w,
            SimConfig::new(5, 0),
            static_partition_lru(sol.partition.clone()),
        )
        .unwrap();
        assert_eq!(r.faults, sol.per_core);
        assert_eq!(r.total_faults(), sol.faults);
    }

    #[test]
    fn joint_exhaustive_respects_its_cap() {
        let jobs = wl(&[&[1], &[2], &[3], &[4], &[5]]);
        assert!(joint_exhaustive(&jobs, 3, 3, PartPolicy::Lru, 10).is_none());
        assert!(joint_exhaustive(&jobs, 3, 3, PartPolicy::Lru, 1000).is_some());
    }

    #[test]
    fn horizon_too_small_errors() {
        let w = wl(&[&[1, 2, 3]]);
        let cfg = SimConfig::new(1, 2);
        let err = sched_min(&w, cfg, Objective::Faults, 2, None, NODES).unwrap_err();
        assert!(matches!(err, DpError::Model(_)));
    }
}
