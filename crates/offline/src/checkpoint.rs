//! Versioned on-disk snapshots of DP frontiers, for checkpoint/resume.
//!
//! When a governed DP run trips its [`mcp_core::Budget`] it stops at a
//! layer boundary and hands back a checkpoint: the complete frontier
//! plus every best-value discovered so far, in a **deterministic byte
//! layout** (entries sorted in canonical [`StateKey`] order,
//! little-endian fixed-width integers). Because the DPs themselves are
//! worker-count-invariant, the snapshot bytes depend only on the
//! instance and on *which* layer boundary the run stopped at — never on
//! `--jobs`, hash order, or timing inside a layer.
//!
//! Every snapshot embeds a fingerprint of the instance (sequences, `K`,
//! `τ`, and the solver options that shape the state space) and a
//! trailing checksum of the payload. Loading validates both, so
//! resuming against the wrong workload, changed options, or a corrupt
//! file is a typed error, not silent wrong answers.

use crate::state::{DpInstance, StateKey};
use mcp_core::Time;
use std::fmt;
use std::io;
use std::path::Path;

/// Snapshot format version (bump on any layout change).
const VERSION: u16 = 1;
/// File magic.
const MAGIC: [u8; 4] = *b"MCPK";
/// Snapshot kind tags.
const KIND_FTF: u8 = 1;
const KIND_PIF: u8 = 2;

/// Errors from saving/loading/validating a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid snapshot (bad magic/version/layout or
    /// checksum mismatch).
    Corrupt(String),
    /// The snapshot belongs to a different instance or solver options.
    Mismatch {
        /// Fingerprint of the instance being resumed.
        expected: u64,
        /// Fingerprint stored in the snapshot.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: instance is {expected:#018x}, \
                 snapshot was taken for {found:#018x} (different workload, config, or options)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over a byte stream — tiny, dependency-free, stable.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint of a compiled instance plus the option bits that shape
/// the explored state space. Two runs may share a snapshot iff their
/// fingerprints match.
pub fn instance_fingerprint(inst: &DpInstance, option_bits: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(inst.k as u64);
    h.write_u64(inst.tau);
    h.write_u64(inst.seqs.len() as u64);
    for seq in &inst.seqs {
        h.write_u64(seq.len() as u64);
        for &pg in seq {
            h.write(&pg.to_le_bytes());
        }
    }
    h.write_u64(inst.pages.len() as u64);
    for pg in &inst.pages {
        h.write_u64(u64::from(pg.0));
    }
    h.write_u64(option_bits);
    h.finish()
}

// ---------------------------------------------------------------------
// Byte-level reader/writer
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn key(&mut self, key: &StateKey) {
        self.u64(key.0);
        for &x in key.1.iter() {
            self.u32(x);
        }
    }
    /// Append the payload checksum (everything after the 4-byte magic).
    fn seal(mut self) -> Vec<u8> {
        let mut h = Fnv::new();
        h.write(&self.buf[MAGIC.len()..]);
        self.u64(h.finish());
        self.buf
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "truncated at byte {} (needed {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn key(&mut self, cores: usize) -> Result<StateKey, CheckpointError> {
        let cfg = self.u64()?;
        let mut pos = Vec::with_capacity(cores);
        for _ in 0..cores {
            pos.push(self.u32()?);
        }
        Ok((cfg, pos.into_boxed_slice()))
    }
    /// The per-state core count, capped against the remaining payload:
    /// every state key spends at least 4 bytes per core, so a corrupt
    /// count (the checksum can collide, and fuzzed bytes are arbitrary)
    /// cannot drive a multi-gigabyte `with_capacity` before the first
    /// key read fails.
    fn cores(&mut self) -> Result<usize, CheckpointError> {
        let cores = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if cores > remaining / 4 {
            return Err(CheckpointError::Corrupt(format!(
                "core count {cores} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(cores)
    }
    /// Length prefix with a sanity cap against absurd allocations from
    /// corrupt files.
    fn count(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n > remaining {
            return Err(CheckpointError::Corrupt(format!(
                "{what} count {n} exceeds remaining bytes {remaining}"
            )));
        }
        Ok(n as usize)
    }
}

fn open_reader<'a>(bytes: &'a [u8], kind: u8) -> Result<Reader<'a>, CheckpointError> {
    if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 8];
    let mut h = Fnv::new();
    h.write(payload);
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if h.finish() != stored {
        return Err(CheckpointError::Corrupt("checksum mismatch".into()));
    }
    let mut r = Reader {
        bytes: &bytes[..bytes.len() - 8],
        pos: MAGIC.len(),
    };
    let version = r.u16()?;
    if version != VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let k = r.u8()?;
    if k != kind {
        return Err(CheckpointError::Corrupt(format!(
            "snapshot kind {k} where kind {kind} was expected \
             (FTF and PIF checkpoints are not interchangeable)"
        )));
    }
    Ok(r)
}

// ---------------------------------------------------------------------
// FTF snapshots
// ---------------------------------------------------------------------

/// A truncated [`crate::ftf_dp`] run, resumable to the exact full-run
/// result: every discovered state with its best fault count and parent,
/// the unexpanded frontier, and the best terminal seen (if any).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtfCheckpoint {
    /// Fingerprint of the instance + options this snapshot belongs to.
    pub fingerprint: u64,
    /// All discovered states `(state, best faults, parent)`, sorted by
    /// state key.
    pub best: Vec<(StateKey, u64, Option<StateKey>)>,
    /// States not yet expanded, sorted by state key.
    pub frontier: Vec<StateKey>,
    /// Best terminal discovered so far.
    pub best_terminal: Option<(u64, StateKey)>,
}

impl FtfCheckpoint {
    /// Number of discovered states.
    pub fn states(&self) -> usize {
        self.best.len()
    }

    /// Serialize to the deterministic byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let cores = self
            .best
            .first()
            .map(|(k, _, _)| k.1.len())
            .unwrap_or_default();
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u16(VERSION);
        w.u8(KIND_FTF);
        w.u64(self.fingerprint);
        w.u32(cores as u32);
        w.u64(self.best.len() as u64);
        for (key, faults, parent) in &self.best {
            w.key(key);
            w.u64(*faults);
            match parent {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.key(p);
                }
            }
        }
        w.u64(self.frontier.len() as u64);
        for key in &self.frontier {
            w.key(key);
        }
        match &self.best_terminal {
            None => w.u8(0),
            Some((faults, key)) => {
                w.u8(1);
                w.u64(*faults);
                w.key(key);
            }
        }
        w.seal()
    }

    /// Parse from bytes, validating magic, version, kind, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = open_reader(bytes, KIND_FTF)?;
        let fingerprint = r.u64()?;
        let cores = r.cores()?;
        let n = r.count("state")?;
        let mut best = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.key(cores)?;
            let faults = r.u64()?;
            let parent = match r.u8()? {
                0 => None,
                1 => Some(r.key(cores)?),
                other => return Err(CheckpointError::Corrupt(format!("bad parent tag {other}"))),
            };
            best.push((key, faults, parent));
        }
        let nf = r.count("frontier")?;
        let mut frontier = Vec::with_capacity(nf);
        for _ in 0..nf {
            frontier.push(r.key(cores)?);
        }
        let best_terminal = match r.u8()? {
            0 => None,
            1 => {
                let faults = r.u64()?;
                Some((faults, r.key(cores)?))
            }
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "bad terminal tag {other}"
                )))
            }
        };
        Ok(FtfCheckpoint {
            fingerprint,
            best,
            frontier,
            best_terminal,
        })
    }

    /// Write the snapshot to a file, atomically: the bytes are staged in
    /// a temp sibling, fsynced, and renamed over the target, with bounded
    /// retry on transient faults — a crash (or injected fault) mid-write
    /// never leaves a torn file at `path` (DESIGN §13).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        mcp_chaos::io::atomic_write(path, &self.to_bytes(), "checkpoint.save")
            .map_err(CheckpointError::Io)
    }

    /// Read a snapshot from a file (transient read faults retried;
    /// corruption surfaces as [`CheckpointError::Corrupt`] via the
    /// checksum, never as a panic).
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&mcp_chaos::io::read(path, "checkpoint.load")?)
    }
}

// ---------------------------------------------------------------------
// PIF snapshots
// ---------------------------------------------------------------------

/// A truncated [`crate::pif_decide`] run: the live layer (each state's
/// Pareto set of fault vectors, in stored order) at the last fully
/// served timestep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PifCheckpoint {
    /// Fingerprint of the instance + options + bounds + horizon.
    pub fingerprint: u64,
    /// Timesteps fully served; resume continues at `t_done + 1`.
    pub t_done: Time,
    /// Cumulative state-vector expansions so far.
    pub expansions: u64,
    /// The live layer, sorted by state key; vector lists keep their
    /// exact stored order (it feeds later Pareto insertions).
    pub layer: Vec<(StateKey, Vec<Box<[u16]>>)>,
}

impl PifCheckpoint {
    /// Number of live states in the layer.
    pub fn states(&self) -> usize {
        self.layer.len()
    }

    /// Serialize to the deterministic byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let cores = self
            .layer
            .first()
            .map(|(k, _)| k.1.len())
            .unwrap_or_default();
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u16(VERSION);
        w.u8(KIND_PIF);
        w.u64(self.fingerprint);
        w.u32(cores as u32);
        w.u64(self.t_done);
        w.u64(self.expansions);
        w.u64(self.layer.len() as u64);
        for (key, vectors) in &self.layer {
            w.key(key);
            w.u64(vectors.len() as u64);
            for v in vectors {
                for &x in v.iter() {
                    w.u16(x);
                }
            }
        }
        w.seal()
    }

    /// Parse from bytes, validating magic, version, kind, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = open_reader(bytes, KIND_PIF)?;
        let fingerprint = r.u64()?;
        let cores = r.cores()?;
        let t_done = r.u64()?;
        let expansions = r.u64()?;
        let n = r.count("layer state")?;
        let mut layer = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.key(cores)?;
            let nv = r.count("vector")?;
            let mut vectors = Vec::with_capacity(nv);
            for _ in 0..nv {
                let mut v = Vec::with_capacity(cores);
                for _ in 0..cores {
                    v.push(r.u16()?);
                }
                vectors.push(v.into_boxed_slice());
            }
            layer.push((key, vectors));
        }
        Ok(PifCheckpoint {
            fingerprint,
            t_done,
            expansions,
            layer,
        })
    }

    /// Write the snapshot to a file, atomically: the bytes are staged in
    /// a temp sibling, fsynced, and renamed over the target, with bounded
    /// retry on transient faults — a crash (or injected fault) mid-write
    /// never leaves a torn file at `path` (DESIGN §13).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        mcp_chaos::io::atomic_write(path, &self.to_bytes(), "checkpoint.save")
            .map_err(CheckpointError::Io)
    }

    /// Read a snapshot from a file (transient read faults retried;
    /// corruption surfaces as [`CheckpointError::Corrupt`] via the
    /// checksum, never as a panic).
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&mcp_chaos::io::read(path, "checkpoint.load")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cfg: u64, pos: &[u32]) -> StateKey {
        (cfg, pos.to_vec().into_boxed_slice())
    }

    fn sample_ftf() -> FtfCheckpoint {
        FtfCheckpoint {
            fingerprint: 0xdead_beef,
            best: vec![
                (key(0, &[1, 1]), 0, None),
                (key(3, &[2, 4]), 2, Some(key(0, &[1, 1]))),
            ],
            frontier: vec![key(3, &[2, 4])],
            best_terminal: Some((5, key(3, &[9, 9]))),
        }
    }

    #[test]
    fn ftf_roundtrip_is_identity() {
        let ck = sample_ftf();
        let bytes = ck.to_bytes();
        assert_eq!(FtfCheckpoint::from_bytes(&bytes).unwrap(), ck);
        // Deterministic layout: same value, same bytes.
        assert_eq!(bytes, sample_ftf().to_bytes());
    }

    #[test]
    fn pif_roundtrip_is_identity() {
        let ck = PifCheckpoint {
            fingerprint: 42,
            t_done: 7,
            expansions: 123,
            layer: vec![
                (key(1, &[4, 1]), vec![vec![0, 2].into_boxed_slice()]),
                (
                    key(2, &[4, 1]),
                    vec![vec![1, 1].into_boxed_slice(), vec![2, 0].into_boxed_slice()],
                ),
            ],
        };
        let bytes = ck.to_bytes();
        assert_eq!(PifCheckpoint::from_bytes(&bytes).unwrap(), ck);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample_ftf().to_bytes();
        // Flip one payload byte: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            FtfCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation is also corruption.
        let whole = sample_ftf().to_bytes();
        assert!(matches!(
            FtfCheckpoint::from_bytes(&whole[..whole.len() - 3]),
            Err(CheckpointError::Corrupt(_))
        ));
        // Garbage is not a snapshot.
        assert!(matches!(
            FtfCheckpoint::from_bytes(b"not a checkpoint at all"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn kinds_are_not_interchangeable() {
        let pif = PifCheckpoint {
            fingerprint: 1,
            t_done: 0,
            expansions: 0,
            layer: vec![(key(0, &[1]), vec![vec![0].into_boxed_slice()])],
        };
        assert!(matches!(
            FtfCheckpoint::from_bytes(&pif.to_bytes()),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            PifCheckpoint::from_bytes(&sample_ftf().to_bytes()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mcp_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ftf.ckpt");
        let ck = sample_ftf();
        ck.save(&path).unwrap();
        assert_eq!(FtfCheckpoint::load(&path).unwrap(), ck);
        assert!(matches!(
            FtfCheckpoint::load(&dir.join("missing.ckpt")),
            Err(CheckpointError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprints_separate_instances_and_options() {
        use mcp_core::{SimConfig, Workload};
        let w1 = Workload::from_u32([vec![1, 2], vec![3]]).unwrap();
        let w2 = Workload::from_u32([vec![1, 2], vec![4]]).unwrap();
        let i1 = DpInstance::build(&w1, &SimConfig::new(2, 1)).unwrap();
        let i1b = DpInstance::build(&w1, &SimConfig::new(2, 2)).unwrap();
        let i2 = DpInstance::build(&w2, &SimConfig::new(2, 1)).unwrap();
        let f = instance_fingerprint(&i1, 0);
        assert_eq!(f, instance_fingerprint(&i1, 0));
        assert_ne!(f, instance_fingerprint(&i1, 1));
        assert_ne!(f, instance_fingerprint(&i1b, 0));
        assert_ne!(f, instance_fingerprint(&i2, 0));
    }
}
