//! Optimal static partitions.
//!
//! For **disjoint** workloads a static partition isolates the cores: part
//! `j`'s fault count depends only on `R_j` and `k_j` (delays never change
//! the order of a single core's own requests). The best static partition
//! with per-part policy `A` is therefore `min Σ_j f^A_j(k_j)` subject to
//! `Σ k_j = K`, `k_j ≥ 1` — a small knapsack-style DP over per-core miss
//! curves. With `A = OPT` (per-part Belady) this computes the paper's
//! `sP^OPT_OPT` comparator exactly; with `A = LRU` it computes
//! `sP^OPT_LRU` (the opponent in Lemma 2).

use crate::miss_curve::{lru_curve, opt_curve};
use mcp_core::Workload;
use mcp_policies::Partition;

/// Which per-part eviction policy the partition is optimized for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartPolicy {
    /// Per-part Belady: yields `sP^OPT_OPT`.
    Opt,
    /// Per-part LRU: yields `sP^OPT_LRU`.
    Lru,
}

/// Result of partition optimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimalPartition {
    /// The fault-minimizing partition.
    pub partition: Partition,
    /// Its total fault count.
    pub faults: u64,
    /// Per-core fault counts under the chosen partition.
    pub per_core: Vec<u64>,
}

/// Compute the fault-optimal static partition of `cache_size` cells for a
/// disjoint workload under the given per-part policy.
///
/// ```
/// use mcp_core::Workload;
/// use mcp_offline::{optimal_static_partition, PartPolicy};
///
/// // Core 0 cycles 4 pages, core 1 reuses a single page.
/// let w = Workload::from_u32([
///     (0..32).map(|i| i % 4).collect::<Vec<_>>(),
///     vec![99; 32],
/// ]).unwrap();
/// let best = optimal_static_partition(&w, 5, PartPolicy::Opt);
/// assert_eq!(best.partition.sizes(), &[4, 1]);
/// assert_eq!(best.faults, 5); // cold misses only
/// ```
///
/// Panics if `cache_size < p` (every active core needs a cell). For
/// non-disjoint workloads the result is still a valid partition but only a
/// heuristic (per-core curves ignore sharing); callers performing exact
/// comparisons should assert disjointness.
pub fn optimal_static_partition(
    workload: &Workload,
    cache_size: usize,
    policy: PartPolicy,
) -> OptimalPartition {
    let p = workload.num_cores();
    assert!(cache_size >= p, "need at least one cell per core");
    let curves = policy_curves(workload.sequences(), cache_size, policy);
    let (sizes, faults) = partition_dp(&curves, cache_size);
    let per_core: Vec<u64> = (0..p).map(|j| curves[j][sizes[j] - 1]).collect();
    OptimalPartition {
        partition: Partition::from_sizes(sizes),
        faults,
        per_core,
    }
}

/// Per-core fault curves `f_j(k)` for `k = 1..=K-p+1` (no part can exceed
/// `K-p+1` cells while every other part keeps one).
pub(crate) fn policy_curves<S: AsRef<[mcp_core::PageId]>>(
    seqs: &[S],
    cache_size: usize,
    policy: PartPolicy,
) -> Vec<Vec<u64>> {
    let k_cap = cache_size - seqs.len() + 1;
    seqs.iter()
        .map(|seq| match policy {
            PartPolicy::Opt => opt_curve(seq.as_ref(), k_cap),
            PartPolicy::Lru => lru_curve(seq.as_ref(), k_cap),
        })
        .collect()
}

/// The knapsack-style DP at the heart of partition optimization: minimize
/// `Σ_j f_j(k_j)` over `Σ k_j = cache_size`, `k_j ≥ 1`, where `curves[j]`
/// holds `f_j(k)` for `k = 1..`. Returns the optimal sizes and total.
pub(crate) fn partition_dp(curves: &[Vec<u64>], cache_size: usize) -> (Vec<usize>, u64) {
    let p = curves.len();
    assert!(cache_size >= p, "need at least one cell per core");
    let k_cap = cache_size - p + 1;

    // dp[j][c] = min faults serving cores 0..j with c cells; parent for
    // reconstruction.
    const INF: u64 = u64::MAX / 2;
    let mut dp = vec![vec![INF; cache_size + 1]; p + 1];
    let mut choice = vec![vec![0usize; cache_size + 1]; p + 1];
    dp[0][0] = 0;
    for j in 0..p {
        for c in 0..=cache_size {
            if dp[j][c] == INF {
                continue;
            }
            for k in 1..=k_cap.min(cache_size - c) {
                let cand = dp[j][c] + curves[j][k - 1];
                if cand < dp[j + 1][c + k] {
                    dp[j + 1][c + k] = cand;
                    choice[j + 1][c + k] = k;
                }
            }
        }
    }

    let faults = dp[p][cache_size];
    assert!(faults < INF, "partition DP must reach a full assignment");
    let mut sizes = vec![0usize; p];
    let mut c = cache_size;
    for j in (0..p).rev() {
        let k = choice[j + 1][c];
        sizes[j] = k;
        c -= k;
    }
    (sizes, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_core::{simulate, SimConfig};
    use mcp_policies::{static_partition_belady, static_partition_lru};

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn gives_big_part_to_big_working_set() {
        // Core 0 cycles 4 pages, core 1 reuses 1 page. K=5: optimal is [4,1].
        let c0: Vec<u32> = (0..40).map(|i| i % 4).collect();
        let c1: Vec<u32> = vec![9; 40];
        let w = wl(&[&c0, &c1]);
        let opt = optimal_static_partition(&w, 5, PartPolicy::Opt);
        assert_eq!(opt.partition.sizes(), &[4, 1]);
        assert_eq!(opt.faults, 5); // 4 + 1 cold misses only
    }

    #[test]
    fn matches_exhaustive_partition_search_with_simulation() {
        // Cross-validate the curve DP against simulating sP^B_OPT for
        // every feasible partition B.
        let c0: Vec<u32> = (0..24).map(|i| i % 3).collect();
        let c1: Vec<u32> = (0..24).map(|i| 10 + (i % 5)).collect();
        let w = wl(&[&c0, &c1]);
        let cache_size = 6;
        let best = optimal_static_partition(&w, cache_size, PartPolicy::Opt);

        let mut best_sim = u64::MAX;
        for k0 in 1..cache_size {
            let k1 = cache_size - k0;
            let part = Partition::from_sizes(vec![k0, k1]);
            let r = simulate(
                &w,
                SimConfig::new(cache_size, 2),
                static_partition_belady(part),
            )
            .unwrap();
            best_sim = best_sim.min(r.total_faults());
        }
        assert_eq!(best.faults, best_sim);
    }

    #[test]
    fn lru_variant_matches_simulation() {
        let c0: Vec<u32> = (0..20).map(|i| i % 4).collect();
        let c1: Vec<u32> = (0..20).map(|i| 10 + (i % 2)).collect();
        let w = wl(&[&c0, &c1]);
        let cache_size = 5;
        let best = optimal_static_partition(&w, cache_size, PartPolicy::Lru);
        let r = simulate(
            &w,
            SimConfig::new(cache_size, 1),
            static_partition_lru(best.partition.clone()),
        )
        .unwrap();
        assert_eq!(r.total_faults(), best.faults);
        assert_eq!(r.faults, best.per_core);
    }

    #[test]
    fn every_core_gets_a_cell() {
        let w = wl(&[&[1; 10], &[2; 10], &[3; 10]]);
        let opt = optimal_static_partition(&w, 3, PartPolicy::Opt);
        assert_eq!(opt.partition.sizes(), &[1, 1, 1]);
        assert_eq!(opt.faults, 3);
    }

    #[test]
    #[should_panic(expected = "one cell per core")]
    fn rejects_too_small_cache() {
        let w = wl(&[&[1], &[2]]);
        optimal_static_partition(&w, 1, PartPolicy::Opt);
    }
}
