//! Algorithm 2 of the paper: deciding PARTIAL-INDIVIDUAL-FAULTS.
//!
//! Given a checkpoint time `t` and per-sequence fault bounds `b`, decide
//! whether the workload can be served so that each sequence `R_i` has
//! faulted at most `b_i` times by time `t` (faults are counted at their
//! issue timestep).
//!
//! Implemented as a layered breadth-first search: one DP transition is one
//! parallel timestep, so layer `s` holds every cache-configuration /
//! position state reachable at time `s`, each carrying a Pareto set of
//! per-sequence fault vectors. Vectors exceeding the bounds are pruned
//! immediately (fault counts are monotone, so early pruning is sound).
//!
//! States within a layer never feed each other (one transition is one
//! timestep), so each layer expands in parallel on the [`mcp_exec`] pool;
//! the expansions merge back sequentially in canonical [`StateKey`] order,
//! making every Pareto set — and hence the decision, witness and expansion
//! counts — identical for every worker count.

use crate::checkpoint::{instance_fingerprint, PifCheckpoint};
use crate::ftf_dp::{schedule_from_chain, FtfSchedule};
use crate::intern::{FxHashMap, StateArena, StateId};
use crate::state::{
    for_each_successor_config, for_each_successor_config_with, pool_for, step_effect,
    step_effect_into, with_scratch, DpError, DpInstance, DpStats, StateKey, StepScratch,
};
use mcp_core::{Budget, SimConfig, Time, TripReason, Workload};

/// Options for the PIF decision procedure.
#[derive(Clone, Copy, Debug)]
pub struct PifOptions {
    /// Explore the full transition relation (including voluntary
    /// evictions). The default is `true` for exactness — unlike FTF
    /// (Theorem 4), the paper states no honesty WLOG for the *fairness*
    /// objective, so the decision procedure conservatively explores all
    /// schedules. Set to `false` for a faster honest-only search.
    pub full_transitions: bool,
    /// Abort with [`DpError::TooLarge`] beyond this many state-vector
    /// expansions.
    pub max_expansions: usize,
    /// Worker threads for layer expansion (0 = the process-wide setting,
    /// see [`mcp_exec::resolved_jobs`]). Any value yields the same result.
    pub jobs: usize,
    /// Force the state arena onto its spilled (unpacked) representation
    /// even when the instance fits the inline `u128` packing. Testing
    /// hook: both representations are observationally identical, and the
    /// cross-representation tests prove it. Not part of the checkpoint
    /// fingerprint — snapshots are interchangeable across this flag.
    #[doc(hidden)]
    pub force_spill: bool,
}

impl Default for PifOptions {
    fn default() -> Self {
        PifOptions {
            full_transitions: true,
            max_expansions: 20_000_000,
            jobs: 0,
            force_spill: false,
        }
    }
}

type FaultVec = Box<[u16]>;

fn dominates(a: &[u16], b: &[u16]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Insert `v` into the Pareto set `set` (minimal vectors kept).
fn pareto_insert(set: &mut Vec<FaultVec>, v: FaultVec) {
    if set.iter().any(|u| dominates(u, &v)) {
        return;
    }
    set.retain(|u| !dominates(&v, u));
    set.push(v);
}

/// Decide PARTIAL-INDIVIDUAL-FAULTS: can `workload` be served with cache
/// size/`τ` from `cfg` such that at time `checkpoint` each sequence `i`
/// has faulted at most `bounds[i]` times?
///
/// ```
/// use mcp_core::{SimConfig, Workload};
/// use mcp_offline::{pif_decide, PifOptions};
///
/// let w = Workload::from_u32([vec![1, 2, 1, 2], vec![7, 7, 7, 7]]).unwrap();
/// let cfg = SimConfig::new(3, 1);
/// // Everything fits: one cold miss each (2 and 1) is achievable...
/// assert!(pif_decide(&w, cfg, 20, &[2, 1], PifOptions::default()).unwrap());
/// // ...but zero faults never is.
/// assert!(!pif_decide(&w, cfg, 20, &[0, 0], PifOptions::default()).unwrap());
/// ```
pub fn pif_decide(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
) -> Result<bool, DpError> {
    pif_decide_with_stats(workload, cfg, checkpoint, bounds, options).map(|(ans, _)| ans)
}

/// [`pif_decide`] plus engine statistics (peak live states, vector
/// expansions, peak arena footprint) for instrumentation.
pub fn pif_decide_with_stats(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
) -> Result<(bool, DpStats), DpError> {
    let budget = Budget::unlimited().with_max_states(options.max_expansions);
    match pif_decide_governed_with_stats(workload, cfg, checkpoint, bounds, options, &budget, None)?
    {
        (PifOutcome::Decided(ans), stats) => Ok((ans, stats)),
        (PifOutcome::Truncated(t), _) => Err(DpError::TooLarge {
            states: t.expansions,
            cap: options.max_expansions,
            incumbent: None,
        }),
    }
}

/// Outcome of a budget-governed PIF decision run.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // Truncated is the rare exit path
pub enum PifOutcome {
    /// The procedure decided feasibility exactly.
    Decided(bool),
    /// The budget tripped at a layer (timestep) boundary; feasibility is
    /// still open, and `checkpoint` resumes the run exactly where it
    /// stopped.
    Truncated(PifTruncated),
}

/// A truncated PIF run. Unlike FTF there is no numeric bracket — the
/// partial answer is "still feasible through time `t_done`": no pruning
/// has refuted the bounds yet, and infeasibility, had it occurred, would
/// already have been reported.
#[derive(Clone, Debug)]
pub struct PifTruncated {
    /// Why the budget tripped.
    pub reason: TripReason,
    /// Timesteps fully served before the trip.
    pub t_done: Time,
    /// Live states in the last completed layer.
    pub live_states: usize,
    /// Cumulative state-vector expansions.
    pub expansions: usize,
    /// Snapshot that resumes this run bit-for-bit (see
    /// [`crate::checkpoint`]).
    pub checkpoint: PifCheckpoint,
}

/// Fingerprint option bits for PIF snapshots: everything beyond the
/// instance that shapes the layer sequence — transition relation,
/// horizon, and the fault bounds themselves (they prune vectors).
fn pif_option_bits(options: &PifOptions, checkpoint: Time, bounds_u16: &[u16]) -> u64 {
    let mut h: u64 = 2 | u64::from(options.full_transitions);
    h = h.wrapping_mul(0x100_0000_01b3) ^ checkpoint;
    for &b in bounds_u16 {
        h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
    }
    h
}

/// The resume fingerprint a snapshot must carry to be compatible with
/// this `(workload, config, horizon, bounds, options)` tuple — the PIF
/// analogue of [`crate::ftf_dp::ftf_fingerprint`].
pub fn pif_fingerprint(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: &PifOptions,
) -> Result<u64, DpError> {
    let inst = DpInstance::build(workload, &cfg)?;
    let bounds_u16: Vec<u16> = bounds
        .iter()
        .map(|&b| b.min(u16::MAX as u64) as u16)
        .collect();
    Ok(instance_fingerprint(
        &inst,
        pif_option_bits(options, checkpoint, &bounds_u16),
    ))
}

/// Budget-governed, resumable PIF decision (Algorithm 2, anytime form).
///
/// The budget is checked between timestep layers (its `states` axis
/// counts vector *expansions*, matching `PifOptions::max_expansions`);
/// within a layer the run is identical to [`pif_decide`], so a governed
/// run that completes returns the exact decision, and resuming a
/// truncated run — at any worker count — reproduces it bit-for-bit.
///
/// `options.max_expansions` is ignored here; cap via
/// [`Budget::with_max_states`]. `resume` must come from the same
/// workload, config, options, horizon, and bounds
/// (fingerprint-validated; mismatch is a [`DpError::Model`]).
#[allow(clippy::too_many_arguments)] // mirrors pif_decide + governance
pub fn pif_decide_governed(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
    budget: &Budget,
    resume: Option<&PifCheckpoint>,
) -> Result<PifOutcome, DpError> {
    pif_decide_governed_with_stats(workload, cfg, checkpoint, bounds, options, budget, resume)
        .map(|(outcome, _)| outcome)
}

/// [`pif_decide_governed`] plus engine statistics. `stats.states` is the
/// peak number of live states in any layer; `stats.expansions` counts
/// fault-vector advances (the budget's `states` axis).
#[allow(clippy::too_many_arguments)] // mirrors pif_decide + governance
pub fn pif_decide_governed_with_stats(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
    budget: &Budget,
    resume: Option<&PifCheckpoint>,
) -> Result<(PifOutcome, DpStats), DpError> {
    assert_eq!(bounds.len(), workload.num_cores(), "one bound per sequence");
    let inst = DpInstance::build(workload, &cfg)?;
    let mut stats = DpStats::default();
    if checkpoint == 0 {
        return Ok((PifOutcome::Decided(true), stats)); // no request has issued yet
    }
    let bounds_u16: Vec<u16> = bounds
        .iter()
        .map(|&b| b.min(u16::MAX as u64) as u16)
        .collect();
    let fingerprint =
        instance_fingerprint(&inst, pif_option_bits(&options, checkpoint, &bounds_u16));

    let p = inst.num_cores();
    let max_pos = (0..p).map(|i| inst.end_pos(i)).max().unwrap_or(1);
    let end_sum: u64 = (0..p).map(|i| inst.end_pos(i)).sum();
    // Two arenas alternate: the live layer and the one being built.
    // `clear` keeps the allocations, so the steady state is
    // allocation-free aside from the fault vectors themselves.
    let mut arena = StateArena::new(p, max_pos, options.force_spill);
    let mut next_arena = StateArena::new(p, max_pos, options.force_spill);
    // Pareto set of fault vectors per interned state, indexed by StateId.
    let mut pareto: Vec<Vec<FaultVec>> = Vec::new();
    let mut next_pareto: Vec<Vec<FaultVec>> = Vec::new();
    let mut ids: Vec<StateId> = Vec::new();

    let mut expansions = 0usize;
    let mut t_done: Time = 0;
    match resume {
        None => {
            let zero: FaultVec = vec![0u16; p].into_boxed_slice();
            let (id, is_new) = arena.intern(0, &inst.start_positions());
            debug_assert!(is_new && id == 0);
            pareto.push(vec![zero]);
        }
        Some(ck) => {
            if ck.fingerprint != fingerprint {
                return Err(DpError::Model(format!(
                    "checkpoint fingerprint mismatch: instance is {fingerprint:#018x}, \
                     snapshot was taken for {:#018x} (different workload, config, \
                     options, horizon, or bounds)",
                    ck.fingerprint
                )));
            }
            for (key, vectors) in &ck.layer {
                let (id, is_new) = arena.intern_key(key);
                if is_new {
                    debug_assert_eq!(id as usize, pareto.len());
                    pareto.push(vectors.clone());
                } else {
                    // Duplicate key in a (checksummed) snapshot: keep the
                    // last, matching the old map-insert semantics.
                    pareto[id as usize] = vectors.clone();
                }
            }
            expansions = ck.expansions as usize;
            t_done = ck.t_done;
        }
    }

    for t in (t_done + 1)..=checkpoint {
        track_layer(&mut stats, &arena);
        if budget.is_limited() {
            let vectors: usize = pareto.iter().map(|v| v.len()).sum();
            let approx_mem = arena.len() * (24 + 8 * p) + vectors * (2 * p + 32);
            if let Err(reason) = budget.check(expansions, approx_mem) {
                // Materialized canonical keys in canonical order: the
                // snapshot bytes are identical to what the unpacked
                // engine wrote.
                ids.clear();
                ids.extend(0..arena.len() as StateId);
                arena.sort_ids(&mut ids);
                let snapshot: Vec<(StateKey, Vec<FaultVec>)> = ids
                    .iter()
                    .map(|&id| (arena.key(id), pareto[id as usize].clone()))
                    .collect();
                stats.expansions = expansions;
                return Ok((
                    PifOutcome::Truncated(PifTruncated {
                        reason,
                        t_done: t - 1,
                        live_states: snapshot.len(),
                        expansions,
                        checkpoint: PifCheckpoint {
                            fingerprint,
                            t_done: t - 1,
                            expansions: expansions as u64,
                            layer: snapshot,
                        },
                    }),
                    stats,
                ));
            }
        }
        // Canonical order: Pareto-set contents (and their order) come out
        // identical for every worker count.
        ids.clear();
        ids.extend(0..arena.len() as StateId);
        arena.sort_ids(&mut ids);
        // Positions never exceed their end positions, so a position sum
        // of `end_sum` is exactly "all finished": no further requests,
        // hence no further faults — every surviving vector already
        // satisfies the bounds.
        if ids.iter().any(|&id| arena.pos_sum(id) == end_sum) {
            stats.expansions = expansions;
            return Ok((PifOutcome::Decided(true), stats));
        }
        // One layer is one timestep: states within it never feed each
        // other, so the expansion fans out over the pool. Workers read
        // the arena immutably and ship back packed keys; only the
        // sequential merge interns.
        let pool = pool_for(options.jobs, ids.len());
        if pool.jobs() <= 1 {
            // Sequential fast path: expand and merge each state inline in
            // the same canonical order the parallel path merges in — no
            // per-state successor buffer, no per-layer result vector.
            next_arena.clear();
            next_pareto.clear();
            with_scratch(|sc| {
                for &id in &ids {
                    let StepScratch {
                        pos,
                        next,
                        faulted,
                        free,
                        chosen,
                    } = sc;
                    let cfg_bits = arena.cfg(id);
                    arena.positions_into(id, pos);
                    let (rx, _) = step_effect_into(&inst, cfg_bits, pos, next, faulted);
                    let vectors = &pareto[id as usize];
                    let mut advanced: Vec<FaultVec> = Vec::with_capacity(vectors.len());
                    'vecs: for v in vectors {
                        let mut nv = v.clone();
                        for i in 0..p {
                            if faulted[i] {
                                nv[i] += 1;
                                if nv[i] > bounds_u16[i] {
                                    continue 'vecs;
                                }
                            }
                        }
                        advanced.push(nv);
                    }
                    if advanced.is_empty() {
                        continue;
                    }
                    let pp = arena.pack(next);
                    for_each_successor_config_with(
                        &inst,
                        cfg_bits,
                        rx,
                        !options.full_transitions,
                        free,
                        chosen,
                        |next_cfg| {
                            let (nid, is_new) = next_arena.intern_packed(next_cfg, &pp);
                            if is_new {
                                debug_assert_eq!(nid as usize, next_pareto.len());
                                next_pareto.push(Vec::new());
                            }
                            let entry = &mut next_pareto[nid as usize];
                            for v in &advanced {
                                pareto_insert(entry, v.clone());
                            }
                            expansions += advanced.len();
                        },
                    );
                }
            });
            if next_arena.is_empty() {
                stats.expansions = expansions;
                return Ok((PifOutcome::Decided(false), stats));
            }
            std::mem::swap(&mut arena, &mut next_arena);
            std::mem::swap(&mut pareto, &mut next_pareto);
            continue;
        }
        let expanded = pool.par_map(&ids, |_, &id| {
            with_scratch(|sc| {
                let StepScratch {
                    pos,
                    next,
                    faulted,
                    free,
                    chosen,
                } = sc;
                let cfg_bits = arena.cfg(id);
                arena.positions_into(id, pos);
                let (rx, _) = step_effect_into(&inst, cfg_bits, pos, next, faulted);
                // Advance each surviving vector.
                let vectors = &pareto[id as usize];
                let mut advanced: Vec<FaultVec> = Vec::with_capacity(vectors.len());
                'vecs: for v in vectors {
                    let mut nv = v.clone();
                    for i in 0..p {
                        if faulted[i] {
                            nv[i] += 1;
                            if nv[i] > bounds_u16[i] {
                                continue 'vecs;
                            }
                        }
                    }
                    advanced.push(nv);
                }
                if advanced.is_empty() {
                    return None;
                }
                let pp = arena.pack(next);
                let mut cfgs = Vec::new();
                for_each_successor_config_with(
                    &inst,
                    cfg_bits,
                    rx,
                    !options.full_transitions,
                    free,
                    chosen,
                    |next_cfg| cfgs.push(next_cfg),
                );
                Some((advanced, pp, cfgs))
            })
        });
        // Merge sequentially, in the same canonical order: the insertion
        // sequence into each Pareto set — and hence its stored order —
        // is identical for every worker count.
        next_arena.clear();
        next_pareto.clear();
        for (advanced, pp, cfgs) in expanded.into_iter().flatten() {
            for next_cfg in cfgs {
                let (nid, is_new) = next_arena.intern_packed(next_cfg, &pp);
                if is_new {
                    debug_assert_eq!(nid as usize, next_pareto.len());
                    next_pareto.push(Vec::new());
                }
                let entry = &mut next_pareto[nid as usize];
                for v in &advanced {
                    pareto_insert(entry, v.clone());
                }
                expansions += advanced.len();
            }
        }
        if next_arena.is_empty() {
            stats.expansions = expansions;
            return Ok((PifOutcome::Decided(false), stats));
        }
        std::mem::swap(&mut arena, &mut next_arena);
        std::mem::swap(&mut pareto, &mut next_pareto);
    }
    // Survived the serving at t = checkpoint with every bound respected.
    track_layer(&mut stats, &arena);
    stats.expansions = expansions;
    Ok((PifOutcome::Decided(true), stats))
}

/// Fold the current layer into the peak-tracking [`DpStats`] fields.
fn track_layer(stats: &mut DpStats, arena: &StateArena) {
    if arena.len() > stats.states {
        stats.states = arena.len();
        stats.dedup_load_factor = arena.load_factor();
    }
    stats.peak_arena_bytes = stats.peak_arena_bytes.max(arena.approx_bytes());
}

/// A Pareto entry carrying provenance: parent = (state id at the
/// previous layer, index into its entry list). Ids are global — states
/// never repeat across layers (every unfinished sequence advances each
/// timestep, so position sums strictly increase), so one arena interns
/// the whole search.
type WitnessEntry = (FaultVec, Option<(StateId, usize)>);

fn pareto_insert_with_parent(set: &mut Vec<WitnessEntry>, entry: WitnessEntry) {
    if set.iter().any(|(u, _)| dominates(u, &entry.0)) {
        return;
    }
    set.retain(|(u, _)| !dominates(&entry.0, u));
    set.push(entry);
}

/// Like [`pif_decide`], but a "yes" comes with a **witness**: a complete,
/// replayable eviction schedule whose fault vector at `checkpoint`
/// respects every bound. Returns `Ok(None)` when infeasible.
///
/// The witness prefix realizes the feasible fault vector; past the
/// checkpoint the schedule is completed with arbitrary legal (lazy)
/// evictions so the whole workload replays on the engine.
pub fn pif_witness(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
) -> Result<Option<FtfSchedule>, DpError> {
    assert_eq!(bounds.len(), workload.num_cores(), "one bound per sequence");
    let inst = DpInstance::build(workload, &cfg)?;
    let start: StateKey = (0u64, inst.start_positions());
    if checkpoint == 0 {
        // Trivially feasible: any legal schedule works.
        let chain = complete_chain(&inst, start);
        return Ok(Some(schedule_from_chain(&inst, &chain)));
    }
    let bounds_u16: Vec<u16> = bounds
        .iter()
        .map(|&b| b.min(u16::MAX as u64) as u16)
        .collect();
    let zero: FaultVec = vec![0u16; inst.num_cores()].into_boxed_slice();

    let p = inst.num_cores();
    let max_pos = (0..p).map(|i| inst.end_pos(i)).max().unwrap_or(1);
    let end_sum: u64 = (0..p).map(|i| inst.end_pos(i)).sum();
    // One arena interns every layer (ids never collide across layers, see
    // [`WitnessEntry`]); layers[t] maps each state id reachable at time t
    // to its Pareto set of (fault vector, parent) pairs.
    let mut arena = StateArena::new(p, max_pos, options.force_spill);
    let mut layers: Vec<FxHashMap<StateId, Vec<WitnessEntry>>> = Vec::new();
    let start_id = arena.intern_key(&start).0;
    let mut first: FxHashMap<StateId, Vec<WitnessEntry>> = FxHashMap::default();
    first.insert(start_id, vec![(zero, None)]);
    layers.push(first);

    let mut expansions = 0usize;
    let mut terminal: Option<(usize, StateId)> = None; // (layer, state)
    let mut ids: Vec<StateId> = Vec::new();
    'outer: for t in 1..=checkpoint {
        let current = &layers[t as usize - 1];
        ids.clear();
        ids.extend(current.keys().copied());
        arena.sort_ids(&mut ids);
        // The canonically smallest finished state, so the witness endpoint
        // does not depend on hash order.
        if let Some(&id) = ids.iter().find(|&&id| arena.pos_sum(id) == end_sum) {
            terminal = Some((t as usize - 1, id));
            break 'outer;
        }
        let expanded = pool_for(options.jobs, ids.len()).par_map(&ids, |_, &id| {
            with_scratch(|sc| {
                let StepScratch {
                    pos,
                    next,
                    faulted,
                    free,
                    chosen,
                } = sc;
                let cfg_bits = arena.cfg(id);
                arena.positions_into(id, pos);
                let (rx, _) = step_effect_into(&inst, cfg_bits, pos, next, faulted);
                let entries = &current[&id];
                let mut advanced: Vec<WitnessEntry> = Vec::new();
                'vecs: for (idx, (v, _)) in entries.iter().enumerate() {
                    let mut nv = v.clone();
                    for i in 0..p {
                        if faulted[i] {
                            nv[i] += 1;
                            if nv[i] > bounds_u16[i] {
                                continue 'vecs;
                            }
                        }
                    }
                    advanced.push((nv, Some((id, idx))));
                }
                if advanced.is_empty() {
                    return None;
                }
                let pp = arena.pack(next);
                let mut cfgs = Vec::new();
                for_each_successor_config_with(
                    &inst,
                    cfg_bits,
                    rx,
                    !options.full_transitions,
                    free,
                    chosen,
                    |next_cfg| cfgs.push(next_cfg),
                );
                Some((advanced, pp, cfgs))
            })
        });
        let mut next: FxHashMap<StateId, Vec<WitnessEntry>> = FxHashMap::default();
        for (advanced, pp, cfgs) in expanded.into_iter().flatten() {
            for next_cfg in cfgs {
                let nid = arena.intern_packed(next_cfg, &pp).0;
                let entry = next.entry(nid).or_default();
                for e in &advanced {
                    pareto_insert_with_parent(entry, e.clone());
                }
                expansions += advanced.len();
            }
            if expansions > options.max_expansions {
                return Err(DpError::TooLarge {
                    states: expansions,
                    cap: options.max_expansions,
                    incumbent: None,
                });
            }
        }
        if next.is_empty() {
            return Ok(None);
        }
        layers.push(next);
    }

    // Pick the witness endpoint: an all-finished state found early, or the
    // canonically smallest surviving state in the final layer.
    let (end_layer, end_id) = match terminal {
        Some(x) => x,
        None => {
            let last = layers.len() - 1;
            let id = layers[last]
                .keys()
                .copied()
                .min_by(|&a, &b| arena.cmp_ids(a, b))
                .expect("nonempty layer");
            (last, id)
        }
    };
    // Walk parents back to layer 0, materializing canonical keys.
    let mut chain: Vec<StateKey> = vec![arena.key(end_id)];
    let mut cursor: Option<(StateId, usize)> = layers[end_layer][&end_id]
        .first()
        .and_then(|(_, parent)| *parent);
    let mut layer_idx = end_layer;
    while let Some((id, idx)) = cursor {
        layer_idx -= 1;
        cursor = layers[layer_idx][&id][idx].1;
        chain.push(arena.key(id));
    }
    chain.reverse();
    // Extend past the checkpoint with arbitrary legal (lazy) transitions
    // so the witness replays end-to-end.
    let tail = complete_chain(&inst, chain.last().expect("nonempty chain").clone());
    chain.extend(tail.into_iter().skip(1));
    Ok(Some(schedule_from_chain(&inst, &chain)))
}

/// Drive a state to completion with the first lazy successor each step.
fn complete_chain(inst: &DpInstance, from: StateKey) -> Vec<StateKey> {
    let mut chain = vec![from];
    loop {
        let state = chain.last().expect("nonempty");
        if inst.all_finished(&state.1) {
            return chain;
        }
        let effect = step_effect(inst, state.0, &state.1);
        let mut chosen: Option<u64> = None;
        for_each_successor_config(inst, state.0, &effect, true, |cfg| {
            if chosen.is_none() {
                chosen = Some(cfg);
            }
        });
        let next_cfg = chosen.expect("every state has a lazy successor");
        chain.push((next_cfg, effect.next_positions.clone()));
    }
}

/// MAX-PIF (Theorem 3's optimization version): the maximum number of
/// sequences whose fault counts at `checkpoint` can be kept within their
/// bounds. Exact, by subset enumeration over [`pif_decide`] — exponential
/// in `p`, usable only for small instances.
pub fn max_pif(
    workload: &Workload,
    cfg: SimConfig,
    checkpoint: Time,
    bounds: &[u64],
    options: PifOptions,
) -> Result<usize, DpError> {
    let p = workload.num_cores();
    assert_eq!(bounds.len(), p);
    for size in (1..=p).rev() {
        // Enumerate subsets of exactly `size` sequences to protect.
        let mut subset: Vec<usize> = (0..size).collect();
        loop {
            let mut relaxed = vec![u64::MAX; p];
            for &i in &subset {
                relaxed[i] = bounds[i];
            }
            if pif_decide(workload, cfg, checkpoint, &relaxed, options)? {
                return Ok(size);
            }
            // Advance to the next lexicographic combination.
            let mut i = size as isize - 1;
            while i >= 0 && subset[i as usize] == i as usize + p - size {
                i -= 1;
            }
            if i < 0 {
                break;
            }
            let i = i as usize;
            subset[i] += 1;
            for j in i + 1..size {
                subset[j] = subset[j - 1] + 1;
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftf_dp::ftf_min_faults;
    use mcp_core::simulate;
    use mcp_policies::shared_lru;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn pareto_insert_keeps_minimal() {
        let mut set: Vec<FaultVec> = Vec::new();
        pareto_insert(&mut set, vec![2, 3].into_boxed_slice());
        pareto_insert(&mut set, vec![3, 2].into_boxed_slice());
        assert_eq!(set.len(), 2);
        pareto_insert(&mut set, vec![2, 2].into_boxed_slice()); // dominates both
        assert_eq!(set.len(), 1);
        pareto_insert(&mut set, vec![4, 4].into_boxed_slice()); // dominated
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn trivially_feasible_with_generous_bounds() {
        let w = wl(&[&[1, 2, 1], &[7, 8, 7]]);
        let cfg = SimConfig::new(2, 1);
        let ok = pif_decide(&w, cfg, 1000, &[100, 100], PifOptions::default()).unwrap();
        assert!(ok);
    }

    #[test]
    fn infeasible_with_zero_bounds() {
        // Cold misses are unavoidable: zero faults by any positive time
        // at which a request has issued is impossible.
        let w = wl(&[&[1], &[7]]);
        let cfg = SimConfig::new(2, 0);
        assert!(!pif_decide(&w, cfg, 1, &[0, 0], PifOptions::default()).unwrap());
        // But before any request issues (t=0) it is trivially fine.
        assert!(pif_decide(&w, cfg, 0, &[0, 0], PifOptions::default()).unwrap());
    }

    #[test]
    fn any_concrete_run_is_a_feasible_witness() {
        // The fault vector of an actual S_LRU run at its makespan must be
        // accepted by the decision procedure.
        let w = wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]);
        let cfg = SimConfig::new(3, 1);
        let run = simulate(&w, cfg, shared_lru()).unwrap();
        let t = run.makespan;
        let b = run.fault_vector_at(t);
        assert!(pif_decide(&w, cfg, t, &b, PifOptions::default()).unwrap());
    }

    #[test]
    fn total_bound_consistent_with_ftf() {
        // If Σ b_i < FTF optimum and the checkpoint is beyond everyone's
        // completion, PIF must be infeasible.
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(2, 1);
        let opt = ftf_min_faults(&w, cfg).unwrap();
        assert!(opt >= 4);
        // Give each sequence just under half the optimum; far horizon.
        let b = vec![(opt / 2).saturating_sub(1); 2];
        let horizon = 200;
        assert!(!pif_decide(&w, cfg, horizon, &b, PifOptions::default()).unwrap());
    }

    #[test]
    fn early_checkpoint_is_easier_than_late() {
        let w = wl(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 9, 7, 8, 9]]);
        let cfg = SimConfig::new(3, 1);
        let b = vec![3, 3];
        let early = pif_decide(&w, cfg, 3, &b, PifOptions::default()).unwrap();
        assert!(early, "few requests issued by t=3");
        // Monotonicity: any infeasible early checkpoint stays infeasible
        // later with the same bounds.
        for t in 1..20 {
            let now = pif_decide(&w, cfg, t, &b, PifOptions::default()).unwrap();
            let later = pif_decide(&w, cfg, t + 1, &b, PifOptions::default()).unwrap();
            assert!(now || !later, "feasibility must be antitone in t (t={t})");
        }
    }

    #[test]
    fn max_pif_counts_satisfiable_sequences() {
        // Three cores, K=3, each repeats a single page: all can be within
        // 1 fault; with impossible bounds for one core, 2 remain.
        let w = wl(&[&[1, 1, 1], &[2, 2, 2], &[3, 3, 3]]);
        let cfg = SimConfig::new(3, 0);
        let all = max_pif(&w, cfg, 10, &[1, 1, 1], PifOptions::default()).unwrap();
        assert_eq!(all, 3);
        let two = max_pif(&w, cfg, 10, &[0, 1, 1], PifOptions::default()).unwrap();
        assert_eq!(two, 2);
        let one = max_pif(&w, cfg, 10, &[0, 0, 1], PifOptions::default()).unwrap();
        assert_eq!(one, 1);
        let zero = max_pif(&w, cfg, 10, &[0, 0, 0], PifOptions::default()).unwrap();
        assert_eq!(zero, 0);
    }

    #[test]
    fn witness_agrees_with_decide_and_replays() {
        use mcp_policies::Replay;
        let w = wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]);
        let cfg = SimConfig::new(3, 1);
        for t in [3u64, 8, 14, 20] {
            for b in [[2u64, 2], [3, 1], [5, 5], [0, 0]] {
                let decide = pif_decide(&w, cfg, t, &b, PifOptions::default()).unwrap();
                let witness = pif_witness(&w, cfg, t, &b, PifOptions::default()).unwrap();
                assert_eq!(decide, witness.is_some(), "t={t} b={b:?}");
                if let Some(schedule) = witness {
                    let replay = Replay::new(schedule.decisions).with_voluntary(schedule.voluntary);
                    let run = mcp_core::simulate(&w, cfg, replay).unwrap();
                    let at = run.fault_vector_at(t);
                    for (i, (&f, &bound)) in at.iter().zip(&b).enumerate() {
                        assert!(
                            f <= bound,
                            "witness violates bound {i}: {f} > {bound} (t={t}, b={b:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witness_at_time_zero_is_any_schedule() {
        use mcp_policies::Replay;
        let w = wl(&[&[1, 2], &[7, 8]]);
        let cfg = SimConfig::new(2, 1);
        let schedule = pif_witness(&w, cfg, 0, &[0, 0], PifOptions::default())
            .unwrap()
            .unwrap();
        let run = mcp_core::simulate(
            &w,
            cfg,
            Replay::new(schedule.decisions).with_voluntary(schedule.voluntary),
        )
        .unwrap();
        assert_eq!(run.total_faults() + run.total_hits(), 4);
    }

    #[test]
    fn governed_truncates_and_resumes_to_same_decision() {
        use std::time::Duration;
        let w = wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]);
        let cfg = SimConfig::new(3, 1);
        let opts = PifOptions::default();
        for b in [[2u64, 2], [0, 0], [5, 5]] {
            let t = 8;
            let full = pif_decide(&w, cfg, t, &b, opts).unwrap();
            let budget = Budget::unlimited().with_deadline(Duration::ZERO);
            let PifOutcome::Truncated(tr) =
                pif_decide_governed(&w, cfg, t, &b, opts, &budget, None).unwrap()
            else {
                panic!("zero deadline must truncate")
            };
            assert_eq!(tr.reason, TripReason::Deadline);
            assert_eq!(tr.t_done, 0);
            let resumed = pif_decide_governed(
                &w,
                cfg,
                t,
                &b,
                opts,
                &Budget::unlimited(),
                Some(&tr.checkpoint),
            )
            .unwrap();
            let PifOutcome::Decided(ans) = resumed else {
                panic!("unlimited resume must decide")
            };
            assert_eq!(ans, full, "resume diverged for b={b:?}");
        }
    }

    #[test]
    fn governed_rejects_foreign_checkpoint() {
        use std::time::Duration;
        let w = wl(&[&[1, 2, 1], &[7, 8, 7]]);
        let cfg = SimConfig::new(2, 1);
        let opts = PifOptions::default();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let PifOutcome::Truncated(tr) =
            pif_decide_governed(&w, cfg, 6, &[3, 3], opts, &budget, None).unwrap()
        else {
            panic!("zero deadline must truncate")
        };
        // Same workload, different bounds: the layer pruning differs, so
        // the snapshot must be refused.
        let err = pif_decide_governed(
            &w,
            cfg,
            6,
            &[2, 2],
            opts,
            &Budget::unlimited(),
            Some(&tr.checkpoint),
        )
        .unwrap_err();
        assert!(matches!(err, DpError::Model(_)));
    }

    #[test]
    fn honest_only_never_claims_more_than_full() {
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let cfg = SimConfig::new(2, 1);
        for t in [2u64, 5, 9, 14] {
            for b in [[2u64, 2], [3, 1], [1, 3]] {
                let full = pif_decide(&w, cfg, t, &b, PifOptions::default()).unwrap();
                let honest = pif_decide(
                    &w,
                    cfg,
                    t,
                    &b,
                    PifOptions {
                        full_transitions: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert!(
                    full || !honest,
                    "honest feasible implies full feasible (t={t})"
                );
            }
        }
    }
}
