//! Shared state machinery for the offline dynamic programs (Algorithms 1
//! and 2 of the paper).
//!
//! A DP state is a cache *configuration* `C` (a set of pages, represented
//! as a bitmask over the dense page universe) plus a *position vector*
//! `x`: each `x_i ∈ 1..=n_i(τ+1)+1` indexes a virtual per-sequence
//! timeline in which every page occupies `τ+1` slots — the page boundary
//! followed by `τ` fetch-period slots. A hit jumps `τ+1` slots in one
//! timestep; a fault steps through its fetch period one slot per timestep.
//! One DP transition is exactly one parallel timestep.

use mcp_core::{PageId, SimConfig, Time, Workload};
use std::fmt;

/// The sequential-fallback threshold for [`pool_for`]: layers with fewer
/// tasks than this stay on the calling thread (the scoped-thread round
/// trip costs more than the expansion itself on tiny layers).
///
/// The default of 32 was tuned for the boxed state engine; the packed
/// engine's expansions are an order of magnitude cheaper, so mid-size
/// layers may still not amortize the pool. Override per process with the
/// `MCP_MIN_PARALLEL_TASKS` environment variable (read once, cached; an
/// unset or unparsable value keeps the default; `0` forces every batch
/// onto the pool). The threshold never affects results — expansions
/// merge in canonical order either way.
pub fn min_parallel_tasks() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MCP_MIN_PARALLEL_TASKS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(32)
    })
}

/// The pool both DPs expand layers on: `jobs == 0` defers to the
/// process-wide setting, and batches smaller than
/// [`min_parallel_tasks`] stay sequential. The choice never affects
/// results — expansions are merged in canonical order either way.
pub(crate) fn pool_for(jobs: usize, tasks: usize) -> mcp_exec::Pool {
    if tasks < min_parallel_tasks() {
        mcp_exec::Pool::new(1)
    } else if jobs == 0 {
        mcp_exec::Pool::global()
    } else {
        mcp_exec::Pool::new(jobs)
    }
}

/// Execution statistics from a DP run (the `--stats` surface of
/// `mcp opt` / `mcp pif`). All counts are worker-count-invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DpStats {
    /// Distinct states interned (FTF) or peak live states in any layer
    /// (PIF).
    pub states: usize,
    /// State expansions performed (FTF: states expanded; PIF: fault
    /// vectors advanced, matching `PifOptions::max_expansions`).
    pub expansions: usize,
    /// Peak approximate state-arena footprint in bytes (packed payload
    /// plus dedup table).
    pub peak_arena_bytes: usize,
    /// Dedup-table load factor at the peak (the arena grows at 3/4).
    pub dedup_load_factor: f64,
}

/// Errors from DP construction or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum DpError {
    /// More than 64 distinct pages (the configuration bitmask is a `u64`).
    UniverseTooLarge { pages: usize },
    /// The state space exceeded the configured cap. `incumbent` carries
    /// the best fault count known when the cap tripped (an achievable
    /// upper bound), so the work done is not discarded with the error.
    TooLarge {
        states: usize,
        cap: usize,
        incumbent: Option<u64>,
    },
    /// The workload/config combination is malformed.
    Model(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::UniverseTooLarge { pages } => {
                write!(
                    f,
                    "page universe has {pages} pages; the DP supports at most 64"
                )
            }
            DpError::TooLarge {
                states,
                cap,
                incumbent,
            } => {
                write!(f, "DP state space exceeded {cap} states (reached {states})")?;
                if let Some(ub) = incumbent {
                    write!(f, "; best known faults so far: {ub}")?;
                }
                Ok(())
            }
            DpError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for DpError {}

/// A workload compiled for DP execution: dense page ids, precomputed
/// per-sequence virtual-timeline lengths.
#[derive(Clone, Debug)]
pub struct DpInstance {
    /// Per-core sequences as dense page indices (bit positions).
    pub seqs: Vec<Vec<u16>>,
    /// Dense index → original page.
    pub pages: Vec<PageId>,
    /// Cache size `K`.
    pub k: usize,
    /// Fault delay `τ`.
    pub tau: u64,
}

impl DpInstance {
    /// Compile a workload. Fails if the page universe exceeds 64 pages.
    pub fn build(workload: &Workload, cfg: &SimConfig) -> Result<Self, DpError> {
        cfg.validate(workload)
            .map_err(|e| DpError::Model(e.to_string()))?;
        let pages = workload.universe();
        if pages.len() > 64 {
            return Err(DpError::UniverseTooLarge { pages: pages.len() });
        }
        let dense: crate::intern::FxHashMap<PageId, u16> = pages
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u16))
            .collect();
        let seqs = workload
            .sequences()
            .iter()
            .map(|seq| seq.iter().map(|p| dense[p]).collect())
            .collect();
        Ok(DpInstance {
            seqs,
            pages: pages.clone(),
            k: cfg.cache_size,
            tau: cfg.tau,
        })
    }

    /// `τ + 1`, the virtual slots per page.
    pub fn period(&self) -> u64 {
        self.tau + 1
    }

    /// Number of sequences `p`.
    pub fn num_cores(&self) -> usize {
        self.seqs.len()
    }

    /// Final (finished) position of sequence `i`: `n_i(τ+1) + 1`.
    pub fn end_pos(&self, i: usize) -> u64 {
        self.seqs[i].len() as u64 * self.period() + 1
    }

    /// Whether position `x` of any sequence is a page boundary.
    pub fn at_boundary(&self, x: u64) -> bool {
        (x - 1).is_multiple_of(self.period())
    }

    /// The 0-based request index position `x` points at (page boundary or
    /// its fetch period).
    pub fn page_index(&self, x: u64) -> usize {
        ((x - 1) / self.period()) as usize
    }

    /// Dense page pointed at by sequence `i` at position `x` (which must
    /// not be the end position).
    pub fn pointed_page(&self, i: usize, x: u64) -> u16 {
        self.seqs[i][self.page_index(x)]
    }

    /// The initial position vector (all sequences at their first page).
    pub fn start_positions(&self) -> Box<[u32]> {
        vec![1u32; self.seqs.len()].into_boxed_slice()
    }

    /// Whether `positions` is fully finished.
    pub fn all_finished(&self, positions: &[u32]) -> bool {
        positions
            .iter()
            .enumerate()
            .all(|(i, &x)| x as u64 == self.end_pos(i))
    }
}

/// The effect of one parallel timestep from `(config, positions)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepEffect {
    /// Union of pages pointed at by unfinished sequences (boundary pages
    /// and in-flight fetch-period pages) — must be contained in every
    /// successor configuration.
    pub rx: u64,
    /// Mask of pages newly faulted this step (boundary pages absent from
    /// the configuration), as a set.
    pub fault_mask: u64,
    /// Per-sequence flag: sequence `i` faulted this step.
    pub seq_faulted: Vec<bool>,
    /// Position vector after the step.
    pub next_positions: Box<[u32]>,
}

impl StepEffect {
    /// Number of faults counted as a set (the `|R(x) \ C|` of Algorithm 1).
    pub fn fault_count(&self) -> u32 {
        self.fault_mask.count_ones()
    }
}

/// Compute the (deterministic) per-sequence advances and fault set for one
/// timestep from `(config, positions)`.
pub fn step_effect(inst: &DpInstance, config: u64, positions: &[u32]) -> StepEffect {
    let mut next = Vec::new();
    let mut seq_faulted = Vec::new();
    let (rx, fault_mask) = step_effect_into(inst, config, positions, &mut next, &mut seq_faulted);
    StepEffect {
        rx,
        fault_mask,
        seq_faulted,
        next_positions: next.into_boxed_slice(),
    }
}

/// Reusable per-thread buffers for the allocation-free DP hot path
/// (decoded positions, step outputs, and eviction-combo scratch). One
/// lives in a `thread_local` per expansion worker.
#[derive(Default)]
pub(crate) struct StepScratch {
    pub(crate) pos: Vec<u32>,
    pub(crate) next: Vec<u32>,
    pub(crate) faulted: Vec<bool>,
    pub(crate) free: Vec<u16>,
    pub(crate) chosen: Vec<u16>,
}

/// Run `f` with this thread's [`StepScratch`] (expansion workers reuse
/// the buffers across calls; the pool's threads each own one).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut StepScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<StepScratch> =
            std::cell::RefCell::new(StepScratch::default());
    }
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Allocation-free form of [`step_effect`] for the DP hot loops: writes
/// the successor positions and per-sequence fault flags into caller
/// buffers (cleared first) and returns `(rx, fault_mask)`.
pub(crate) fn step_effect_into(
    inst: &DpInstance,
    config: u64,
    positions: &[u32],
    next: &mut Vec<u32>,
    seq_faulted: &mut Vec<bool>,
) -> (u64, u64) {
    let period = inst.period();
    let mut rx = 0u64;
    let mut fault_mask = 0u64;
    next.clear();
    next.extend_from_slice(positions);
    seq_faulted.clear();
    seq_faulted.resize(inst.num_cores(), false);
    for i in 0..inst.num_cores() {
        let x = positions[i] as u64;
        if x == inst.end_pos(i) {
            continue; // finished
        }
        let page = inst.pointed_page(i, x);
        let bit = 1u64 << page;
        rx |= bit;
        if inst.at_boundary(x) {
            if config & bit != 0 {
                // Hit: jump to the next page boundary.
                next[i] = (x + period) as u32;
            } else {
                // Fault: enter (or with τ = 0, complete) the fetch period.
                fault_mask |= bit;
                seq_faulted[i] = true;
                next[i] = (x + 1) as u32;
            }
        } else {
            // Mid-fetch: advance one slot.
            next[i] = (x + 1) as u32;
        }
    }
    (rx, fault_mask)
}

/// Enumerate successor configurations `C'` for a step: `rx ⊆ C' ⊆ C ∪ rx`,
/// `|C'| ≤ K`, calling `f(C')` for each.
///
/// * `lazy = true`: evict exactly the overflow (only as many pages as
///   needed) — the honest, no-extra-evictions regime.
/// * `lazy = false`: additionally enumerate every larger eviction set (the
///   paper's full transition relation, which admits dishonest voluntary
///   evictions; used to probe Theorem 4).
pub fn for_each_successor_config(
    inst: &DpInstance,
    config: u64,
    effect: &StepEffect,
    lazy: bool,
    f: impl FnMut(u64),
) {
    let mut free = Vec::new();
    let mut chosen = Vec::new();
    for_each_successor_config_with(inst, config, effect.rx, lazy, &mut free, &mut chosen, f)
}

/// Allocation-free form of [`for_each_successor_config`] for the DP hot
/// loops: takes the step's `rx` directly and enumerates into caller
/// scratch buffers.
pub(crate) fn for_each_successor_config_with(
    inst: &DpInstance,
    config: u64,
    rx: u64,
    lazy: bool,
    free: &mut Vec<u16>,
    chosen: &mut Vec<u16>,
    mut f: impl FnMut(u64),
) {
    let base = config | rx;
    let keep_mask = rx;
    free.clear();
    free.extend((0..inst.pages.len() as u16).filter(|b| (base & !keep_mask) & (1u64 << b) != 0));
    let occupancy = base.count_ones() as usize;
    let min_evict = occupancy.saturating_sub(inst.k);
    debug_assert!(min_evict <= free.len(), "rx alone must fit in the cache");
    let max_evict = if lazy { min_evict } else { free.len() };

    // Enumerate subsets of `free` of each size in [min_evict, max_evict].
    chosen.clear();
    fn combos(
        free: &[u16],
        start: usize,
        remaining: usize,
        chosen: &mut Vec<u16>,
        base: u64,
        f: &mut impl FnMut(u64),
    ) {
        if remaining == 0 {
            let mut cfg = base;
            for &b in chosen.iter() {
                cfg &= !(1u64 << b);
            }
            f(cfg);
            return;
        }
        for i in start..=free.len().saturating_sub(remaining) {
            chosen.push(free[i]);
            combos(free, i + 1, remaining - 1, chosen, base, f);
            chosen.pop();
        }
    }
    for e in min_evict..=max_evict {
        combos(free, 0, e, chosen, base, &mut f);
    }
}

/// Serve `state` to completion taking the *first* lazy successor at
/// every step, returning the number of additional faults incurred. This
/// is a cheap achievable completion — governed DP runs use it to turn a
/// truncated frontier into a genuine incumbent upper bound for the
/// anytime bracket (the completion is honest/lazy, so it is a feasible
/// schedule in the paper's model).
pub fn greedy_completion_faults(inst: &DpInstance, state: &StateKey) -> u64 {
    let mut config = state.0;
    let mut positions = state.1.clone();
    let mut faults = 0u64;
    while !inst.all_finished(&positions) {
        let effect = step_effect(inst, config, &positions);
        faults += u64::from(effect.fault_count());
        let mut chosen = None;
        for_each_successor_config(inst, config, &effect, true, |cfg| {
            if chosen.is_none() {
                chosen = Some(cfg);
            }
        });
        config = chosen.expect("a lazy successor always exists");
        positions = effect.next_positions;
    }
    faults
}

/// A fully identified DP state.
pub type StateKey = (u64, Box<[u32]>);

/// Timestep type re-exported for DP callers.
pub type DpTime = Time;

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_core::SimConfig;

    fn wl(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn instance_compiles_dense_pages() {
        let w = wl(&[&[5, 7], &[9]]);
        let inst = DpInstance::build(&w, &SimConfig::new(2, 1)).unwrap();
        assert_eq!(inst.pages, vec![PageId(5), PageId(7), PageId(9)]);
        assert_eq!(inst.seqs, vec![vec![0, 1], vec![2]]);
        assert_eq!(inst.period(), 2);
        assert_eq!(inst.end_pos(0), 5); // 2 pages * 2 + 1
        assert_eq!(inst.end_pos(1), 3);
    }

    #[test]
    fn boundaries_and_page_indices() {
        let w = wl(&[&[1, 2, 3]]);
        let inst = DpInstance::build(&w, &SimConfig::new(1, 2)).unwrap();
        // period 3: boundaries at x = 1, 4, 7; end at 10.
        assert!(inst.at_boundary(1));
        assert!(!inst.at_boundary(2));
        assert!(!inst.at_boundary(3));
        assert!(inst.at_boundary(4));
        assert_eq!(inst.page_index(1), 0);
        assert_eq!(inst.page_index(3), 0);
        assert_eq!(inst.page_index(4), 1);
    }

    #[test]
    fn step_hit_jumps_fault_crawls() {
        let w = wl(&[&[1, 2]]);
        let inst = DpInstance::build(&w, &SimConfig::new(1, 2)).unwrap();
        let x0 = inst.start_positions();
        // Empty config: fault on page 1 (bit 0).
        let e = step_effect(&inst, 0, &x0);
        assert_eq!(e.fault_mask, 0b01);
        assert_eq!(e.next_positions.as_ref(), &[2]);
        assert!(e.seq_faulted[0]);
        // Config contains page 1: hit, jump to boundary 4.
        let e = step_effect(&inst, 0b01, &x0);
        assert_eq!(e.fault_mask, 0);
        assert_eq!(e.next_positions.as_ref(), &[4]);
        // Mid-fetch position advances by one and registers no fault.
        let e = step_effect(&inst, 0b01, &[2]);
        assert_eq!(e.fault_mask, 0);
        assert_eq!(e.rx, 0b01);
        assert_eq!(e.next_positions.as_ref(), &[3]);
    }

    #[test]
    fn simultaneous_same_page_faults_count_once() {
        let w = wl(&[&[1], &[1]]);
        let inst = DpInstance::build(&w, &SimConfig::new(2, 0)).unwrap();
        let e = step_effect(&inst, 0, &inst.start_positions());
        assert_eq!(e.fault_count(), 1);
        assert!(e.seq_faulted[0] && e.seq_faulted[1]);
    }

    #[test]
    fn successor_configs_lazy_exact_overflow() {
        // K=2, config {A,B} full, rx={C} new fault: must evict exactly one
        // of A, B -> two successors.
        let w = wl(&[&[1, 2, 3]]);
        let inst = DpInstance::build(&w, &SimConfig::new(2, 0)).unwrap();
        let effect = StepEffect {
            rx: 0b100,
            fault_mask: 0b100,
            seq_faulted: vec![true],
            next_positions: vec![4].into_boxed_slice(),
        };
        let mut succ = Vec::new();
        for_each_successor_config(&inst, 0b011, &effect, true, |c| succ.push(c));
        succ.sort_unstable();
        assert_eq!(succ, vec![0b101, 0b110]);
    }

    #[test]
    fn successor_configs_all_subsets_include_voluntary() {
        // K=3, config {A,B}, rx={C}: lazy keeps everything (1 successor);
        // full mode may also drop A, B, or both (4 successors).
        let w = wl(&[&[1, 2, 3]]);
        let inst = DpInstance::build(&w, &SimConfig::new(3, 0)).unwrap();
        let effect = StepEffect {
            rx: 0b100,
            fault_mask: 0b100,
            seq_faulted: vec![true],
            next_positions: vec![4].into_boxed_slice(),
        };
        let mut lazy = Vec::new();
        for_each_successor_config(&inst, 0b011, &effect, true, |c| lazy.push(c));
        assert_eq!(lazy, vec![0b111]);
        let mut all = Vec::new();
        for_each_successor_config(&inst, 0b011, &effect, false, |c| all.push(c));
        all.sort_unstable();
        assert_eq!(all, vec![0b100, 0b101, 0b110, 0b111]);
    }

    #[test]
    fn greedy_completion_counts_faults_from_start() {
        // Everything fits (K = 4): greedy completion from the start state
        // pays exactly the cold misses.
        let w = wl(&[&[1, 2, 1, 2], &[7, 8, 7, 8]]);
        let inst = DpInstance::build(&w, &SimConfig::new(4, 1)).unwrap();
        let start: StateKey = (0, inst.start_positions());
        assert_eq!(greedy_completion_faults(&inst, &start), 4);
        // A terminal state completes with zero additional faults.
        let done: StateKey = (
            0,
            (0..inst.num_cores())
                .map(|i| inst.end_pos(i) as u32)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        );
        assert_eq!(greedy_completion_faults(&inst, &done), 0);
    }

    #[test]
    fn universe_cap_enforced() {
        let big: Vec<u32> = (0..65).collect();
        let w = wl(&[&big]);
        assert!(matches!(
            DpInstance::build(&w, &SimConfig::new(4, 0)),
            Err(DpError::UniverseTooLarge { pages: 65 })
        ));
    }
}
