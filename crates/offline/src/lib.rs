//! # mcp-offline — exact offline algorithms for multicore paging
//!
//! Section 5 of the paper, executable:
//!
//! * [`ftf_dp()`] — Algorithm 1: minimum total faults
//!   (FINAL-TOTAL-FAULTS), polynomial in sequence length for fixed `K`,
//!   `p` (Theorem 6), with optional schedule reconstruction replayable on
//!   the simulator.
//! * [`pif_dp`] — Algorithm 2: the PARTIAL-INDIVIDUAL-FAULTS decision
//!   procedure (Theorem 7) and exact MAX-PIF by subset enumeration.
//! * [`search`] — honest brute force (faults, makespan, and
//!   lexicographic objectives) and Theorem 5's restricted sequence-FITF
//!   search, as independent cross-checks.
//! * [`sched_search`] — exhaustive optima in Hassidim's
//!   *scheduling-capable* model (sequences may be stalled), quantifying
//!   the gap between the two papers' models.
//! * [`belady_seq`] / [`miss_curve`] — sequential OPT and LRU oracles
//!   (stack distances, miss curves, Lemma 1 phase decompositions).
//! * [`checkpoint`] — versioned on-disk snapshots for the budget-governed
//!   anytime variants ([`ftf_dp_governed`], [`pif_decide_governed`]):
//!   truncated runs resume bit-for-bit at any worker count.
//! * [`partition_opt`] — exact optimal static partitions (`sP^OPT_OPT`,
//!   `sP^OPT_LRU`) for disjoint workloads from per-core miss curves.

#![warn(missing_docs)]

pub mod belady_seq;
pub mod checkpoint;
pub mod ftf_dp;
pub mod intern;
pub mod miss_curve;
pub mod partition_opt;
pub mod pif_dp;
pub mod sched_search;
pub mod search;
pub mod state;

pub use belady_seq::{belady_curve, belady_faults};
pub use checkpoint::{instance_fingerprint, CheckpointError, FtfCheckpoint, PifCheckpoint};
pub use ftf_dp::{
    ftf_dp, ftf_dp_governed, ftf_dp_governed_with_stats, ftf_fingerprint, ftf_min_faults,
    FtfOptions, FtfOutcome, FtfResult, FtfSchedule, FtfTruncated,
};
pub use intern::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, PackedPos, StateArena, StateId};
pub use miss_curve::{
    distinct_pages, lru_curve, lru_faults, lru_stack_distances, opt_curve, phase_starts,
};
pub use partition_opt::{optimal_static_partition, OptimalPartition, PartPolicy};
pub use pif_dp::{
    max_pif, pif_decide, pif_decide_governed, pif_decide_governed_with_stats,
    pif_decide_with_stats, pif_fingerprint, pif_witness, PifOptions, PifOutcome, PifTruncated,
};
pub use sched_search::{
    evaluate_assignment, joint_exhaustive, joint_greedy, sched_min, sched_min_governed,
    JointSolution,
};
pub use search::{
    brute_force_faults_then_makespan, brute_force_makespan_then_faults, brute_force_min_faults,
    brute_force_min_faults_governed, brute_force_min_makespan, fitf_restricted_min_faults,
    Objective, SearchOutcome,
};
pub use state::{min_parallel_tasks, DpError, DpInstance, DpStats};
