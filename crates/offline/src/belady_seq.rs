//! Classic sequential (single-sequence) Belady/OPT: the offline optimal
//! for p = 1, used as ground truth for the DPs at p = 1 and as the
//! per-part oracle for optimal static partitions.

use mcp_core::PageId;
use std::collections::{BinaryHeap, HashMap};

/// Number of faults OPT incurs serving `seq` with a cache of `k` pages.
///
/// Implemented with the standard next-use priority queue: on a fault with a
/// full cache, evict the resident page whose next use is furthest in the
/// future. `O(n log n)` after an `O(n)` next-use precomputation.
pub fn belady_faults(seq: &[PageId], k: usize) -> u64 {
    assert!(k >= 1, "cache size must be at least 1");
    // next_use[i] = position of the next occurrence of seq[i] after i,
    // or usize::MAX if none.
    let mut next_use = vec![usize::MAX; seq.len()];
    let mut last_pos: HashMap<PageId, usize> = HashMap::new();
    for (i, &page) in seq.iter().enumerate().rev() {
        if let Some(&later) = last_pos.get(&page) {
            next_use[i] = later;
        }
        last_pos.insert(page, i);
    }

    // Max-heap of (next_use, page) for resident pages; lazily invalidated.
    let mut heap: BinaryHeap<(usize, PageId)> = BinaryHeap::new();
    let mut resident: HashMap<PageId, usize> = HashMap::new(); // page -> current next_use
    let mut faults = 0u64;

    for (i, &page) in seq.iter().enumerate() {
        match resident.get(&page) {
            Some(_) => {
                // Hit: refresh the page's next use.
                resident.insert(page, next_use[i]);
                heap.push((next_use[i], page));
            }
            None => {
                faults += 1;
                if resident.len() == k {
                    // Evict the furthest-in-future resident page.
                    loop {
                        let (nu, victim) = heap.pop().expect("heap tracks residents");
                        if resident.get(&victim) == Some(&nu) {
                            resident.remove(&victim);
                            break;
                        }
                        // Stale entry: skip.
                    }
                }
                resident.insert(page, next_use[i]);
                heap.push((next_use[i], page));
            }
        }
    }
    faults
}

/// Belady fault counts for every cache size `1..=k_max` (the OPT miss
/// curve), by direct per-size simulation.
pub fn belady_curve(seq: &[PageId], k_max: usize) -> Vec<u64> {
    (1..=k_max).map(|k| belady_faults(seq, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vs: &[u32]) -> Vec<PageId> {
        vs.iter().copied().map(PageId).collect()
    }

    #[test]
    fn classic_example() {
        // Belady's canonical property: cycling 3 pages through 2 cells
        // faults on 3 cold misses then every other request.
        let s = seq(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(belady_faults(&s, 3), 3);
        // k=2: OPT faults 3 (cold) + 3: serving 3 evicts 2 (1 sooner),
        // pattern repeats. LRU would fault 9 times.
        let f2 = belady_faults(&s, 2);
        assert!((6..9).contains(&f2), "got {f2}");
    }

    #[test]
    fn distinct_pages_all_fault() {
        let s = seq(&[1, 2, 3, 4, 5]);
        for k in 1..=5 {
            assert_eq!(belady_faults(&s, k), 5);
        }
    }

    #[test]
    fn repeats_hit_with_one_cell() {
        let s = seq(&[1, 1, 1, 1]);
        assert_eq!(belady_faults(&s, 1), 1);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let s = seq(&[1, 2, 1, 3, 2, 4, 1, 2, 3, 4, 1, 5, 2, 3]);
        let curve = belady_curve(&s, 6);
        for w in curve.windows(2) {
            assert!(
                w[0] >= w[1],
                "OPT miss curve must be nonincreasing: {curve:?}"
            );
        }
        // With all 5 distinct pages cached only cold misses remain.
        assert_eq!(curve[4], 5);
        assert_eq!(curve[5], 5);
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        // Exhaustive optimal by recursion over eviction choices.
        fn brute(seq: &[PageId], k: usize, cache: &mut Vec<PageId>, i: usize) -> u64 {
            if i == seq.len() {
                return 0;
            }
            let page = seq[i];
            if cache.contains(&page) {
                return brute(seq, k, cache, i + 1);
            }
            if cache.len() < k {
                cache.push(page);
                let f = 1 + brute(seq, k, cache, i + 1);
                cache.pop();
                return f;
            }
            let mut best = u64::MAX;
            for v in 0..cache.len() {
                let old = cache[v];
                cache[v] = page;
                best = best.min(1 + brute(seq, k, cache, i + 1));
                cache[v] = old;
            }
            best
        }
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 1, 2, 3],
            vec![1, 2, 1, 3, 1, 2, 3, 4, 1],
            vec![4, 3, 2, 1, 1, 2, 3, 4],
            vec![1, 1, 2, 2, 3, 3, 1, 2, 3],
        ];
        for vs in cases {
            let s = seq(&vs);
            for k in 1..=3 {
                let mut cache = Vec::new();
                assert_eq!(
                    belady_faults(&s, k),
                    brute(&s, k, &mut cache, 0),
                    "seq {vs:?} k={k}"
                );
            }
        }
    }
}
