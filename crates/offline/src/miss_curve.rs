//! Miss-ratio curves: faults as a function of cache size, for LRU (via
//! Mattson stack distances, one pass for all sizes) and OPT (per-size
//! Belady). These are the per-core oracles behind optimal static
//! partitioning.

use crate::belady_seq::belady_faults;
use mcp_core::PageId;
use std::collections::HashMap;

/// LRU stack distances of a sequence (Mattson et al. 1970).
///
/// `distance[i]` is the LRU stack depth of request `i`: the number of
/// distinct pages referenced since the previous use of `seq[i]`
/// (`usize::MAX` for a first use). A request hits in an LRU cache of size
/// `k` iff its stack distance is `≤ k`.
pub fn lru_stack_distances(seq: &[PageId]) -> Vec<usize> {
    // Simple O(n · d) stack maintenance (d = distinct pages): adequate for
    // the instance sizes here, and trivially correct. The stack holds
    // pages in recency order, most recent first.
    let mut stack: Vec<PageId> = Vec::new();
    let mut out = Vec::with_capacity(seq.len());
    for &page in seq {
        match stack.iter().position(|&p| p == page) {
            None => {
                out.push(usize::MAX);
                stack.insert(0, page);
            }
            Some(depth) => {
                out.push(depth + 1);
                stack.remove(depth);
                stack.insert(0, page);
            }
        }
    }
    out
}

/// LRU fault counts for every cache size `1..=k_max`, from one
/// stack-distance pass.
pub fn lru_curve(seq: &[PageId], k_max: usize) -> Vec<u64> {
    let distances = lru_stack_distances(seq);
    // hist[d] = number of requests with stack distance exactly d (1-based);
    // infinite distances (first uses) always fault.
    let mut hist = vec![0u64; k_max + 2];
    let mut infinite = 0u64;
    for &d in &distances {
        if d == usize::MAX || d > k_max {
            infinite += 1;
        } else {
            hist[d] += 1;
        }
    }
    // faults(k) = infinite + Σ_{d > k} hist[d], via a suffix sum.
    let mut curve = vec![0u64; k_max];
    for k in 1..=k_max {
        let beyond: u64 = hist[k + 1..].iter().sum();
        curve[k - 1] = infinite + beyond;
    }
    curve
}

/// OPT (Belady) fault counts for every cache size `1..=k_max`.
pub fn opt_curve(seq: &[PageId], k_max: usize) -> Vec<u64> {
    (1..=k_max).map(|k| belady_faults(seq, k)).collect()
}

/// Faults of LRU on a single sequence with cache size `k` (classic
/// sequential LRU — equivalently the per-part behaviour of `sP^B_LRU`).
pub fn lru_faults(seq: &[PageId], k: usize) -> u64 {
    assert!(k >= 1);
    lru_curve(seq, k)[k - 1]
}

/// Working-set size (distinct pages) of a sequence.
pub fn distinct_pages(seq: &[PageId]) -> usize {
    seq.iter()
        .copied()
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Decompose a sequence into LRU phases for cache size `k` (Lemma 1's
/// phase partition): a new phase starts at the `(k+1)`-th distinct page
/// since the phase began. Returns phase start indices.
pub fn phase_starts(seq: &[PageId], k: usize) -> Vec<usize> {
    assert!(k >= 1);
    let mut starts = Vec::new();
    let mut current: HashMap<PageId, ()> = HashMap::new();
    for (i, &page) in seq.iter().enumerate() {
        if i == 0 {
            starts.push(0);
            current.insert(page, ());
            continue;
        }
        if !current.contains_key(&page) && current.len() == k {
            starts.push(i);
            current.clear();
        }
        current.insert(page, ());
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vs: &[u32]) -> Vec<PageId> {
        vs.iter().copied().map(PageId).collect()
    }

    #[test]
    fn stack_distances_basic() {
        let s = seq(&[1, 2, 1, 3, 2, 1]);
        let d = lru_stack_distances(&s);
        assert_eq!(d[0], usize::MAX); // 1: first use
        assert_eq!(d[1], usize::MAX); // 2: first use
        assert_eq!(d[2], 2); // 1: {2,1} since last use
        assert_eq!(d[3], usize::MAX); // 3: first use
        assert_eq!(d[4], 3); // 2: {1,3, itself-excluded...}: depth of 2 = 3
        assert_eq!(d[5], 3); // 1
    }

    #[test]
    fn curve_matches_direct_lru_simulation() {
        // Direct LRU with recency list.
        fn lru_sim(seq: &[PageId], k: usize) -> u64 {
            let mut stack: Vec<PageId> = Vec::new();
            let mut faults = 0;
            for &p in seq {
                match stack.iter().position(|&q| q == p) {
                    Some(i) => {
                        stack.remove(i);
                    }
                    None => {
                        faults += 1;
                        if stack.len() == k {
                            stack.pop();
                        }
                    }
                }
                stack.insert(0, p);
            }
            faults
        }
        let s = seq(&[1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 3]);
        let curve = lru_curve(&s, 6);
        for k in 1..=6 {
            assert_eq!(curve[k - 1], lru_sim(&s, k), "k={k}");
        }
    }

    #[test]
    fn inclusion_property_lru_monotone() {
        let s = seq(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3]);
        let curve = lru_curve(&s, 8);
        for w in curve.windows(2) {
            assert!(
                w[0] >= w[1],
                "LRU curve must be nonincreasing (inclusion property)"
            );
        }
    }

    #[test]
    fn opt_never_worse_than_lru() {
        let s = seq(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
        let lru = lru_curve(&s, 4);
        let opt = opt_curve(&s, 4);
        for k in 0..4 {
            assert!(
                opt[k] <= lru[k],
                "k={} opt={} lru={}",
                k + 1,
                opt[k],
                lru[k]
            );
        }
        // Cycling 4 pages through 3 cells: LRU faults always; OPT does not.
        assert_eq!(lru[2], 12);
        assert!(opt[2] < 12);
    }

    #[test]
    fn phases_lemma1_structure() {
        // k=2: phases restart at each 3rd distinct page.
        let s = seq(&[1, 2, 1, 3, 4, 3, 1, 2]);
        let starts = phase_starts(&s, 2);
        assert_eq!(starts, vec![0, 3, 6]);
        // Any algorithm faults at least once per phase; LRU at most k per
        // phase (Lemma 1's upper bound skeleton).
        let phases = starts.len() as u64;
        let lru = lru_faults(&s, 2);
        assert!(lru <= 2 * phases);
        let opt = belady_faults(&s, 2);
        assert!(opt >= phases);
    }

    #[test]
    fn distinct_count() {
        assert_eq!(distinct_pages(&seq(&[1, 1, 2, 3, 2])), 3);
    }
}
