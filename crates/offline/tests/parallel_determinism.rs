//! The DP contract the exec layer must not break: every result — fault
//! counts, state/expansion counts, witnesses — is identical for every
//! worker count. These tests pin the options-level `jobs` knob rather
//! than the process-wide setting so they stay independent of test-runner
//! threading.

use mcp_core::{Budget, SimConfig, Workload};
use mcp_offline::{
    ftf_dp, ftf_dp_governed, pif_decide, pif_decide_governed, pif_witness, FtfOptions, FtfOutcome,
    PifOptions, PifOutcome,
};
use mcp_policies::Replay;

/// FNV-1a, used to pin results against fingerprints recorded on the seed
/// (pre-packed-engine) implementation. The packed state engine must be
/// observationally identical, so these constants must never change.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn wl(seqs: &[&[u32]]) -> Workload {
    Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
}

/// Long enough to clear the sequential-fallback threshold in at least the
/// busiest buckets, so worker threads genuinely run.
fn contended(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 3) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

#[test]
fn ftf_results_are_worker_count_invariant() {
    let workloads = [
        contended(24),
        wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]),
        wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]),
    ];
    for w in &workloads {
        for k in [2usize, 3] {
            for prune in [true, false] {
                let cfg = SimConfig::new(k, 1);
                let base = ftf_dp(
                    w,
                    cfg,
                    FtfOptions {
                        prune,
                        jobs: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
                for jobs in [2usize, 4, 7] {
                    let r = ftf_dp(
                        w,
                        cfg,
                        FtfOptions {
                            prune,
                            jobs,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        r.min_faults, base.min_faults,
                        "k={k} prune={prune} jobs={jobs}"
                    );
                    assert_eq!(r.states, base.states, "k={k} prune={prune} jobs={jobs}");
                }
            }
        }
    }
}

#[test]
fn ftf_schedules_replay_identically_across_worker_counts() {
    let w = contended(16);
    let cfg = SimConfig::new(3, 1);
    let run = |jobs: usize| {
        let r = ftf_dp(
            &w,
            cfg,
            FtfOptions {
                reconstruct: true,
                jobs,
                ..Default::default()
            },
        )
        .unwrap();
        let s = r.schedule.unwrap();
        let sim = mcp_core::simulate(
            &w,
            cfg,
            Replay::new(s.decisions).with_voluntary(s.voluntary),
        )
        .unwrap();
        (r.min_faults, sim.total_faults(), sim.fault_times.clone())
    };
    let base = run(1);
    assert_eq!(base.0, base.1, "witness must replay to the optimum");
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "jobs={jobs}");
    }
}

#[test]
fn pif_decisions_are_worker_count_invariant() {
    let w = contended(18);
    let cfg = SimConfig::new(2, 1);
    let horizon = 60u64;
    for bounds in [[20u64, 20], [9, 9], [2, 2], [0, 0]] {
        for full in [true, false] {
            let base = pif_decide(
                &w,
                cfg,
                horizon,
                &bounds,
                PifOptions {
                    full_transitions: full,
                    jobs: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for jobs in [2usize, 4] {
                let got = pif_decide(
                    &w,
                    cfg,
                    horizon,
                    &bounds,
                    PifOptions {
                        full_transitions: full,
                        jobs,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(got, base, "bounds={bounds:?} full={full} jobs={jobs}");
            }
        }
    }
}

/// `anytime_checkpoint.rs`'s workload variant (`i % 4` on core 1), used
/// by the checkpoint-byte fingerprints below.
fn contended4(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 4) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

/// Fingerprints of the FTF results from `ftf_results_are_worker_count_
/// invariant`'s sweep, recorded on the seed implementation. Order:
/// workload-major, then k in {2, 3}, then prune in {true, false}.
const FTF_RESULT_FPS: [u64; 12] = [
    0xef8b7345d02845b0,
    0xef8b7345d02845b0,
    0xf102521877be981f,
    0xf102521877be981f,
    0xd1328977a87fcc9e,
    0xd1328977a87fcc9e,
    0x45534ee2d4164eac,
    0x45534ee2d4164eac,
    0xf63aab8967aac82e,
    0xf63aab8967aac82e,
    0x454c5ee2d4104b2e,
    0x454c5ee2d4104b2e,
];
const FTF_WITNESS_FP: u64 = 0xad00b31aca813c22;
const PIF_DECISION_BITS: &str = "11000000";
const PIF_WITNESS_FP: u64 = 0x839e35b1621a5c60;
const FTF_CKPT_FP: u64 = 0xc7da23591bda9bf1;
const PIF_CKPT_FP: u64 = 0xd283ef6e9e98eed4;

#[test]
fn ftf_results_match_recorded_fingerprints() {
    let workloads = [
        contended(24),
        wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]),
        wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]),
    ];
    for jobs in [1usize, 2, 4] {
        let mut fps = Vec::new();
        for w in &workloads {
            for k in [2usize, 3] {
                for prune in [true, false] {
                    let r = ftf_dp(
                        w,
                        SimConfig::new(k, 1),
                        FtfOptions {
                            prune,
                            jobs,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    fps.push(fnv(format!("{}|{}", r.min_faults, r.states).as_bytes()));
                }
            }
        }
        assert_eq!(fps, FTF_RESULT_FPS, "jobs={jobs}");
    }
}

#[test]
fn ftf_witness_matches_recorded_fingerprint() {
    let w = contended(16);
    for jobs in [1usize, 2, 4] {
        let r = ftf_dp(
            &w,
            SimConfig::new(3, 1),
            FtfOptions {
                reconstruct: true,
                jobs,
                ..Default::default()
            },
        )
        .unwrap();
        let s = r.schedule.unwrap();
        let mut d: Vec<_> = s.decisions.into_iter().collect();
        d.sort_unstable_by_key(|(k, _)| *k);
        let fp = fnv(format!("{}|{:?}|{:?}", r.min_faults, d, s.voluntary).as_bytes());
        assert_eq!(fp, FTF_WITNESS_FP, "jobs={jobs}");
    }
}

#[test]
fn pif_decisions_match_recorded_fingerprints() {
    let w = contended(18);
    let cfg = SimConfig::new(2, 1);
    for jobs in [1usize, 2, 4] {
        let mut bits = String::new();
        for bounds in [[20u64, 20], [9, 9], [2, 2], [0, 0]] {
            for full in [true, false] {
                let ans = pif_decide(
                    &w,
                    cfg,
                    60,
                    &bounds,
                    PifOptions {
                        full_transitions: full,
                        jobs,
                        ..Default::default()
                    },
                )
                .unwrap();
                bits.push(if ans { '1' } else { '0' });
            }
        }
        assert_eq!(bits, PIF_DECISION_BITS, "jobs={jobs}");
    }
}

#[test]
fn pif_witness_matches_recorded_fingerprint() {
    let w = contended(12);
    for jobs in [1usize, 2, 4] {
        let s = pif_witness(
            &w,
            SimConfig::new(2, 1),
            30,
            &[12, 12],
            PifOptions {
                jobs,
                ..Default::default()
            },
        )
        .unwrap()
        .unwrap();
        let mut d: Vec<_> = s.decisions.into_iter().collect();
        d.sort_unstable_by_key(|(k, _)| *k);
        let fp = fnv(format!("{:?}|{:?}", d, s.voluntary).as_bytes());
        assert_eq!(fp, PIF_WITNESS_FP, "jobs={jobs}");
    }
}

#[test]
fn ftf_checkpoint_bytes_match_recorded_fingerprint() {
    let w = contended4(12);
    let budget = Budget::unlimited().with_max_states(10);
    for jobs in [1usize, 2, 4] {
        let opts = FtfOptions {
            reconstruct: true,
            jobs,
            ..Default::default()
        };
        match ftf_dp_governed(&w, SimConfig::new(3, 1), opts, &budget, None).unwrap() {
            FtfOutcome::Truncated(t) => {
                assert_eq!(fnv(&t.checkpoint.to_bytes()), FTF_CKPT_FP, "jobs={jobs}");
            }
            FtfOutcome::Complete(_) => panic!("cap 10 must truncate (jobs={jobs})"),
        }
    }
}

#[test]
fn pif_checkpoint_bytes_match_recorded_fingerprint() {
    let w = contended4(12);
    let budget = Budget::unlimited().with_max_states(40);
    for jobs in [1usize, 2, 4] {
        let opts = PifOptions {
            jobs,
            ..Default::default()
        };
        match pif_decide_governed(&w, SimConfig::new(3, 1), 16, &[8, 8], opts, &budget, None)
            .unwrap()
        {
            PifOutcome::Truncated(t) => {
                assert_eq!(t.t_done, 7, "jobs={jobs}");
                assert_eq!(fnv(&t.checkpoint.to_bytes()), PIF_CKPT_FP, "jobs={jobs}");
            }
            PifOutcome::Decided(ans) => panic!("cap 40 must truncate, got {ans} (jobs={jobs})"),
        }
    }
}

#[test]
fn pif_witness_is_worker_count_invariant() {
    let w = contended(12);
    let cfg = SimConfig::new(2, 1);
    let run = |jobs: usize| {
        pif_witness(
            &w,
            cfg,
            30,
            &[12, 12],
            PifOptions {
                jobs,
                ..Default::default()
            },
        )
        .unwrap()
        .map(|s| {
            let mut d: Vec<_> = s.decisions.into_iter().collect();
            d.sort_unstable_by_key(|(k, _)| *k);
            (format!("{d:?}"), format!("{:?}", s.voluntary))
        })
    };
    let base = run(1);
    assert!(base.is_some(), "witness must exist for generous bounds");
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "jobs={jobs}");
    }
}
