//! The DP contract the exec layer must not break: every result — fault
//! counts, state/expansion counts, witnesses — is identical for every
//! worker count. These tests pin the options-level `jobs` knob rather
//! than the process-wide setting so they stay independent of test-runner
//! threading.

use mcp_core::{SimConfig, Workload};
use mcp_offline::{ftf_dp, pif_decide, pif_witness, FtfOptions, PifOptions};
use mcp_policies::Replay;

fn wl(seqs: &[&[u32]]) -> Workload {
    Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
}

/// Long enough to clear the sequential-fallback threshold in at least the
/// busiest buckets, so worker threads genuinely run.
fn contended(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 3) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

#[test]
fn ftf_results_are_worker_count_invariant() {
    let workloads = [
        contended(24),
        wl(&[&[1, 2, 3, 1, 2], &[7, 8, 7, 8, 7]]),
        wl(&[&[1, 2, 1, 2, 1, 2], &[7, 8, 7, 8, 7, 8]]),
    ];
    for w in &workloads {
        for k in [2usize, 3] {
            for prune in [true, false] {
                let cfg = SimConfig::new(k, 1);
                let base = ftf_dp(
                    w,
                    cfg,
                    FtfOptions {
                        prune,
                        jobs: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
                for jobs in [2usize, 4, 7] {
                    let r = ftf_dp(
                        w,
                        cfg,
                        FtfOptions {
                            prune,
                            jobs,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        r.min_faults, base.min_faults,
                        "k={k} prune={prune} jobs={jobs}"
                    );
                    assert_eq!(r.states, base.states, "k={k} prune={prune} jobs={jobs}");
                }
            }
        }
    }
}

#[test]
fn ftf_schedules_replay_identically_across_worker_counts() {
    let w = contended(16);
    let cfg = SimConfig::new(3, 1);
    let run = |jobs: usize| {
        let r = ftf_dp(
            &w,
            cfg,
            FtfOptions {
                reconstruct: true,
                jobs,
                ..Default::default()
            },
        )
        .unwrap();
        let s = r.schedule.unwrap();
        let sim = mcp_core::simulate(
            &w,
            cfg,
            Replay::new(s.decisions).with_voluntary(s.voluntary),
        )
        .unwrap();
        (r.min_faults, sim.total_faults(), sim.fault_times.clone())
    };
    let base = run(1);
    assert_eq!(base.0, base.1, "witness must replay to the optimum");
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "jobs={jobs}");
    }
}

#[test]
fn pif_decisions_are_worker_count_invariant() {
    let w = contended(18);
    let cfg = SimConfig::new(2, 1);
    let horizon = 60u64;
    for bounds in [[20u64, 20], [9, 9], [2, 2], [0, 0]] {
        for full in [true, false] {
            let base = pif_decide(
                &w,
                cfg,
                horizon,
                &bounds,
                PifOptions {
                    full_transitions: full,
                    jobs: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for jobs in [2usize, 4] {
                let got = pif_decide(
                    &w,
                    cfg,
                    horizon,
                    &bounds,
                    PifOptions {
                        full_transitions: full,
                        jobs,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(got, base, "bounds={bounds:?} full={full} jobs={jobs}");
            }
        }
    }
}

#[test]
fn pif_witness_is_worker_count_invariant() {
    let w = contended(12);
    let cfg = SimConfig::new(2, 1);
    let run = |jobs: usize| {
        pif_witness(
            &w,
            cfg,
            30,
            &[12, 12],
            PifOptions {
                jobs,
                ..Default::default()
            },
        )
        .unwrap()
        .map(|s| {
            let mut d: Vec<_> = s.decisions.into_iter().collect();
            d.sort_unstable_by_key(|(k, _)| *k);
            (format!("{d:?}"), format!("{:?}", s.voluntary))
        })
    };
    let base = run(1);
    assert!(base.is_some(), "witness must exist for generous bounds");
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "jobs={jobs}");
    }
}
