//! Checkpoints are representation-independent. The DP engine stores
//! frontiers in one of two arena layouts — bit-packed `u128` keys when
//! the position vector fits inline, or spilled `u32` slices (the seed
//! implementation's layout) otherwise — but checkpoints always serialize
//! the unpacked canonical byte format. So a snapshot written by either
//! representation must be byte-identical to the other's, and must resume
//! under either representation to the same answer, bit for bit.

use mcp_core::{Budget, SimConfig, TripReason, Workload};
use mcp_offline::{
    ftf_dp, ftf_dp_governed, pif_decide_governed, FtfCheckpoint, FtfOptions, FtfOutcome,
    PifCheckpoint, PifOptions, PifOutcome,
};

/// Same contended family as `anytime_checkpoint.rs` (`i % 4` on core 1).
fn contended(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 4) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

fn ftf_opts(force_spill: bool) -> FtfOptions {
    FtfOptions {
        reconstruct: true,
        force_spill,
        ..Default::default()
    }
}

#[test]
fn ftf_results_are_identical_in_both_representations() {
    let w = contended(14);
    let cfg = SimConfig::new(3, 1);
    let inline = ftf_dp(&w, cfg, ftf_opts(false)).unwrap();
    let spill = ftf_dp(&w, cfg, ftf_opts(true)).unwrap();
    assert_eq!(inline.min_faults, spill.min_faults);
    assert_eq!(inline.states, spill.states);
    assert_eq!(
        inline.schedule.as_ref().unwrap().decisions,
        spill.schedule.as_ref().unwrap().decisions
    );
    assert_eq!(
        inline.schedule.as_ref().unwrap().voluntary,
        spill.schedule.as_ref().unwrap().voluntary
    );
}

/// Truncate the FTF run under the given representation and return the
/// checkpoint's serialized bytes.
fn ftf_snapshot(w: &Workload, cfg: SimConfig, cap: usize, force_spill: bool) -> Vec<u8> {
    let budget = Budget::unlimited().with_max_states(cap);
    match ftf_dp_governed(w, cfg, ftf_opts(force_spill), &budget, None).unwrap() {
        FtfOutcome::Truncated(t) => {
            assert!(matches!(t.reason, TripReason::StateCap { .. }));
            t.checkpoint.to_bytes()
        }
        FtfOutcome::Complete(_) => panic!("cap {cap} must truncate"),
    }
}

#[test]
fn ftf_checkpoint_bytes_are_representation_independent_and_cross_resume() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);
    let full = ftf_dp(&w, cfg, ftf_opts(false)).unwrap();

    let by_inline = ftf_snapshot(&w, cfg, 10, false);
    let by_spill = ftf_snapshot(&w, cfg, 10, true);
    assert_eq!(
        by_inline, by_spill,
        "both representations must write the same snapshot bytes"
    );

    // A snapshot written by one representation resumes under the other.
    for (bytes, resume_spill) in [(&by_inline, true), (&by_spill, false)] {
        let ck = FtfCheckpoint::from_bytes(bytes).unwrap();
        let r = match ftf_dp_governed(
            &w,
            cfg,
            ftf_opts(resume_spill),
            &Budget::unlimited(),
            Some(&ck),
        )
        .unwrap()
        {
            FtfOutcome::Complete(r) => r,
            FtfOutcome::Truncated(_) => panic!("unlimited resume must complete"),
        };
        assert_eq!(r.min_faults, full.min_faults, "spill={resume_spill}");
        assert_eq!(r.states, full.states, "spill={resume_spill}");
        assert_eq!(
            r.schedule.as_ref().unwrap().decisions,
            full.schedule.as_ref().unwrap().decisions,
            "spill={resume_spill}"
        );
    }
}

/// Truncate the PIF run under the given representation and return
/// `(t_done, bytes)` of its checkpoint.
fn pif_snapshot(w: &Workload, cfg: SimConfig, force_spill: bool) -> (u64, Vec<u8>) {
    let opts = PifOptions {
        force_spill,
        ..Default::default()
    };
    let budget = Budget::unlimited().with_max_states(40);
    match pif_decide_governed(w, cfg, 16, &[8, 8], opts, &budget, None).unwrap() {
        PifOutcome::Truncated(t) => (t.t_done, t.checkpoint.to_bytes()),
        PifOutcome::Decided(ans) => panic!("cap 40 must truncate, got {ans}"),
    }
}

#[test]
fn pif_checkpoint_bytes_are_representation_independent_and_cross_resume() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);

    let (t_inline, by_inline) = pif_snapshot(&w, cfg, false);
    let (t_spill, by_spill) = pif_snapshot(&w, cfg, true);
    assert_eq!(t_inline, t_spill);
    assert_eq!(
        by_inline, by_spill,
        "both representations must write the same snapshot bytes"
    );

    for (bytes, resume_spill) in [(&by_inline, true), (&by_spill, false)] {
        let ck = PifCheckpoint::from_bytes(bytes).unwrap();
        let opts = PifOptions {
            force_spill: resume_spill,
            ..Default::default()
        };
        match pif_decide_governed(&w, cfg, 16, &[8, 8], opts, &Budget::unlimited(), Some(&ck))
            .unwrap()
        {
            PifOutcome::Decided(ans) => assert!(ans, "spill={resume_spill}"),
            PifOutcome::Truncated(_) => panic!("unlimited resume must decide"),
        }
    }
}
