//! The resource-governance contract of the exact solvers, end to end:
//! wherever a budget trips, the anytime bracket `[lower_bound,
//! incumbent]` contains the true optimum; a truncated run resumed from
//! its checkpoint — through on-disk bytes, at any worker count, even
//! chained through several trips — reproduces the uninterrupted result
//! bit for bit (min faults, state counts, witness schedule).

use mcp_core::budget::{request_cancel, reset_cancel};
use mcp_core::{Budget, SimConfig, TripReason, Workload};
use mcp_offline::{
    ftf_dp, ftf_dp_governed, pif_decide, pif_decide_governed, FtfCheckpoint, FtfOptions,
    FtfOutcome, FtfResult, FtfTruncated, PifCheckpoint, PifOptions, PifOutcome,
};
use std::time::Duration;

fn wl(seqs: &[&[u32]]) -> Workload {
    Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
}

/// A contended two-core workload big enough for several buckets.
fn contended(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 4) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

fn opts(jobs: usize) -> FtfOptions {
    FtfOptions {
        reconstruct: true,
        jobs,
        ..Default::default()
    }
}

fn full_run(w: &Workload, cfg: SimConfig) -> FtfResult {
    ftf_dp(w, cfg, opts(1)).unwrap()
}

/// Run governed to completion, resuming through serialized checkpoint
/// bytes every time the state cap trips; returns the final result and
/// the number of trips taken.
fn run_chained(w: &Workload, cfg: SimConfig, jobs: usize, cap_step: usize) -> (FtfResult, usize) {
    let mut trips = 0;
    let mut cap = cap_step;
    let mut snapshot: Option<Vec<u8>> = None;
    loop {
        let budget = Budget::unlimited().with_max_states(cap);
        let resume = snapshot
            .as_ref()
            .map(|bytes| FtfCheckpoint::from_bytes(bytes).expect("roundtrip"));
        match ftf_dp_governed(w, cfg, opts(jobs), &budget, resume.as_ref()).unwrap() {
            FtfOutcome::Complete(r) => return (r, trips),
            FtfOutcome::Truncated(t) => {
                assert!(matches!(t.reason, TripReason::StateCap { .. }));
                trips += 1;
                assert!(trips < 100, "must converge");
                cap += cap_step;
                snapshot = Some(t.checkpoint.to_bytes());
            }
        }
    }
}

#[test]
fn bracket_contains_the_optimum_wherever_the_cap_trips() {
    let cases = [
        (contended(14), SimConfig::new(3, 1)),
        (
            wl(&[&[1, 2, 3, 1, 2, 3], &[7, 8, 7, 8, 7, 8]]),
            SimConfig::new(3, 1),
        ),
        (wl(&[&[1, 2, 1, 2], &[9, 8, 9, 8]]), SimConfig::new(2, 0)),
    ];
    for (w, cfg) in &cases {
        let opt = full_run(w, *cfg).min_faults;
        let mut saw_truncation = false;
        for cap in [1usize, 2, 5, 10, 25, 100, 500, 5000] {
            let budget = Budget::unlimited().with_max_states(cap);
            match ftf_dp_governed(w, *cfg, opts(1), &budget, None).unwrap() {
                FtfOutcome::Complete(r) => assert_eq!(r.min_faults, opt),
                FtfOutcome::Truncated(FtfTruncated {
                    lower_bound,
                    incumbent,
                    ..
                }) => {
                    saw_truncation = true;
                    assert!(
                        lower_bound <= opt && opt <= incumbent,
                        "cap {cap}: bracket [{lower_bound}, {incumbent}] must contain {opt}"
                    );
                }
            }
        }
        assert!(saw_truncation, "at least the tiny caps must trip");
    }
}

#[test]
fn resume_reproduces_the_full_run_at_every_worker_count() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);
    let full = full_run(&w, cfg);
    for jobs in [1usize, 2, 4] {
        // Trip once mid-run, then resume without a budget.
        let budget = Budget::unlimited().with_max_states(10);
        let t = match ftf_dp_governed(&w, cfg, opts(jobs), &budget, None).unwrap() {
            FtfOutcome::Truncated(t) => t,
            FtfOutcome::Complete(_) => panic!("cap 10 must trip"),
        };
        let resumed = match ftf_dp_governed(
            &w,
            cfg,
            opts(jobs),
            &Budget::unlimited(),
            Some(&t.checkpoint),
        )
        .unwrap()
        {
            FtfOutcome::Complete(r) => r,
            FtfOutcome::Truncated(_) => panic!("unlimited resume must complete"),
        };
        assert_eq!(resumed.min_faults, full.min_faults, "jobs={jobs}");
        assert_eq!(resumed.states, full.states, "jobs={jobs}");
        assert_eq!(
            resumed.schedule.as_ref().unwrap().decisions,
            full.schedule.as_ref().unwrap().decisions,
            "witness schedule must be identical, jobs={jobs}"
        );
    }
}

#[test]
fn chained_checkpoints_converge_to_the_same_answer() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);
    let full = full_run(&w, cfg);
    for jobs in [1usize, 4] {
        let (r, trips) = run_chained(&w, cfg, jobs, 25);
        assert!(trips >= 2, "step 25 must trip several times (got {trips})");
        assert_eq!(r.min_faults, full.min_faults);
        assert_eq!(r.states, full.states);
        assert_eq!(
            r.schedule.as_ref().unwrap().decisions,
            full.schedule.as_ref().unwrap().decisions
        );
    }
}

#[test]
fn checkpoint_survives_the_disk_and_rejects_corruption() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);
    let budget = Budget::unlimited().with_max_states(10);
    let t = match ftf_dp_governed(&w, cfg, opts(1), &budget, None).unwrap() {
        FtfOutcome::Truncated(t) => t,
        FtfOutcome::Complete(_) => panic!("cap 10 must trip"),
    };

    let dir = std::env::temp_dir().join(format!("mcp_anytime_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ftf.ckpt");
    t.checkpoint.save(&path).unwrap();
    let loaded = FtfCheckpoint::load(&path).unwrap();
    assert_eq!(loaded.to_bytes(), t.checkpoint.to_bytes());

    // Any flipped byte is caught by the checksum (or the parser).
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(FtfCheckpoint::load(&path).is_err());

    // A checkpoint from a different instance is rejected by fingerprint.
    let other = wl(&[&[1, 2, 1, 2], &[9, 8, 9, 8]]);
    let err = ftf_dp_governed(
        &other,
        SimConfig::new(2, 0),
        opts(1),
        &budget,
        Some(&t.checkpoint),
    );
    assert!(err.is_err(), "foreign checkpoint must be rejected");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_deadline_and_cancellation_both_trip() {
    let w = contended(10);
    let cfg = SimConfig::new(3, 1);

    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    match ftf_dp_governed(&w, cfg, opts(1), &budget, None).unwrap() {
        FtfOutcome::Truncated(t) => assert_eq!(t.reason, TripReason::Deadline),
        FtfOutcome::Complete(_) => panic!("zero deadline must trip"),
    }

    reset_cancel();
    request_cancel();
    let budget = Budget::unlimited().with_global_cancel();
    match ftf_dp_governed(&w, cfg, opts(1), &budget, None).unwrap() {
        FtfOutcome::Truncated(t) => assert_eq!(t.reason, TripReason::Cancelled),
        FtfOutcome::Complete(_) => panic!("cancellation must trip"),
    }
    reset_cancel();

    // With the flag cleared the same budget no longer trips.
    match ftf_dp_governed(&w, cfg, opts(1), &budget, None).unwrap() {
        FtfOutcome::Complete(_) => {}
        FtfOutcome::Truncated(t) => panic!("cleared cancel flag must not trip: {:?}", t.reason),
    }
}

#[test]
fn pif_resume_matches_the_direct_decision_at_every_worker_count() {
    let w = contended(12);
    let cfg = SimConfig::new(3, 1);
    let horizon = 16;
    for bounds in [&[3u64, 3][..], &[0, 0][..], &[8, 8][..]] {
        let direct = pif_decide(&w, cfg, horizon, bounds, PifOptions::default()).unwrap();
        for jobs in [1usize, 2, 4] {
            let po = PifOptions {
                jobs,
                ..Default::default()
            };
            // Trip at the first layer boundary, roundtrip through bytes,
            // then finish without a budget.
            let t = match pif_decide_governed(
                &w,
                cfg,
                horizon,
                bounds,
                po,
                &Budget::unlimited().with_deadline(Duration::ZERO),
                None,
            )
            .unwrap()
            {
                PifOutcome::Truncated(t) => t,
                PifOutcome::Decided(ans) => {
                    // Bounds like [0,0] can be refuted before the first
                    // budget check; the direct answer must agree.
                    assert_eq!(ans, direct, "bounds {bounds:?} jobs={jobs}");
                    continue;
                }
            };
            let bytes = t.checkpoint.to_bytes();
            let resume = PifCheckpoint::from_bytes(&bytes).unwrap();
            match pif_decide_governed(
                &w,
                cfg,
                horizon,
                bounds,
                po,
                &Budget::unlimited(),
                Some(&resume),
            )
            .unwrap()
            {
                PifOutcome::Decided(ans) => {
                    assert_eq!(ans, direct, "bounds {bounds:?} jobs={jobs}")
                }
                PifOutcome::Truncated(_) => panic!("unlimited resume must decide"),
            }
        }
    }
}
