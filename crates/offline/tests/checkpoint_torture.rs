//! Adversarial hardening of the checkpoint layer (DESIGN §13).
//!
//! Contract under torture: parsing arbitrary bytes — every byte-prefix
//! truncation, random single-byte mutations, random soup — yields a
//! typed [`CheckpointError`], never a panic, wrap-around, or absurd
//! allocation; and the on-disk save path is atomic under simulated
//! crashes (the target file is never torn, even when every write
//! attempt "crashes").

use mcp_chaos::{arm_scoped, FaultPlan};
use mcp_core::{Budget, SimConfig};
use mcp_offline::{
    ftf_dp_governed, lru_faults, pif_decide_governed, CheckpointError, FtfCheckpoint, FtfOptions,
    FtfOutcome, PifCheckpoint, PifOptions, PifOutcome,
};
use mcp_workloads::random_disjoint;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A real FTF checkpoint: a governed run truncated by a tiny state cap
/// (seeds are probed until one actually truncates — the generator
/// randomizes instance size).
fn ftf_checkpoint() -> FtfCheckpoint {
    for seed in 11..64 {
        let w = random_disjoint(seed, 2, 8, 4);
        let cfg = SimConfig::new(3, 1);
        let budget = Budget::unlimited().with_max_states(2);
        if let FtfOutcome::Truncated(t) =
            ftf_dp_governed(&w, cfg, FtfOptions::default(), &budget, None).unwrap()
        {
            return t.checkpoint;
        }
    }
    panic!("no seed in range produced a truncated run");
}

/// A real PIF checkpoint: a governed decision truncated mid-horizon.
fn pif_checkpoint() -> PifCheckpoint {
    for seed in 12..64 {
        let w = random_disjoint(seed, 2, 8, 4);
        let cfg = SimConfig::new(3, 1);
        let bounds: Vec<u64> = (0..w.num_cores())
            .map(|i| lru_faults(w.sequence(i), (cfg.cache_size / w.num_cores()).max(1)))
            .collect();
        let budget = Budget::unlimited().with_max_states(2);
        if let PifOutcome::Truncated(t) =
            pif_decide_governed(&w, cfg, 6, &bounds, PifOptions::default(), &budget, None).unwrap()
        {
            return t.checkpoint;
        }
    }
    panic!("no seed in range produced a truncated run");
}

/// Parse under `catch_unwind`: the loader must never panic, whatever the
/// bytes.
fn parse_ftf(bytes: &[u8]) -> Result<FtfCheckpoint, CheckpointError> {
    catch_unwind(AssertUnwindSafe(|| FtfCheckpoint::from_bytes(bytes)))
        .expect("checkpoint parsing must never panic")
}

fn parse_pif(bytes: &[u8]) -> Result<PifCheckpoint, CheckpointError> {
    catch_unwind(AssertUnwindSafe(|| PifCheckpoint::from_bytes(bytes)))
        .expect("checkpoint parsing must never panic")
}

#[test]
fn every_byte_prefix_is_a_typed_error() {
    let ftf = ftf_checkpoint();
    let bytes = ftf.to_bytes();
    for len in 0..bytes.len() {
        assert!(
            parse_ftf(&bytes[..len]).is_err(),
            "strict prefix of {len}/{} bytes must not parse",
            bytes.len()
        );
    }
    assert_eq!(parse_ftf(&bytes).unwrap(), ftf);

    let pif = pif_checkpoint();
    let bytes = pif.to_bytes();
    for len in 0..bytes.len() {
        assert!(
            parse_pif(&bytes[..len]).is_err(),
            "strict prefix of {len}/{} bytes must not parse",
            bytes.len()
        );
    }
    assert_eq!(parse_pif(&bytes).unwrap(), pif);
}

/// FNV-1a matching the snapshot trailer — lets the test forge a valid
/// checksum over a hostile payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn forged_checksum_with_absurd_core_count_is_rejected_cheaply() {
    // Valid magic/version/kind/checksum, but a core count claiming 4 GiB
    // of positions per key: the loader must reject it from the length
    // budget instead of attempting the allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u16.to_le_bytes()); // version
    payload.push(1); // KIND_FTF
    payload.extend_from_slice(&0u64.to_le_bytes()); // fingerprint
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // cores
    payload.extend_from_slice(&1u64.to_le_bytes()); // one state entry
    payload.extend_from_slice(&[0u8; 32]); // some bytes for it to chew on
    let mut bytes = b"MCPK".to_vec();
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    match parse_ftf(&bytes) {
        Err(CheckpointError::Corrupt(msg)) => {
            assert!(msg.contains("core count"), "{msg}")
        }
        other => panic!("expected a Corrupt error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-byte mutations of a valid snapshot: typed error or — for
    /// the vanishingly rare checksum-preserving mutation — a parsed
    /// value; never a panic (the catch_unwind in the helpers proves it).
    #[test]
    fn mutated_snapshots_never_panic(idx in 0usize..4096, val in 0u8..=255) {
        let bytes = ftf_checkpoint().to_bytes();
        let mut m = bytes.clone();
        let i = idx % m.len();
        m[i] = val;
        if m == bytes {
            prop_assert!(parse_ftf(&m).is_ok());
        } else {
            // One flipped byte cannot preserve FNV-1a here; it must be
            // caught as a typed corruption.
            prop_assert!(parse_ftf(&m).is_err());
        }
        let _ = parse_pif(&m);
    }

    /// Random byte soup (with and without a valid magic) never panics.
    #[test]
    fn random_soup_never_panics(mut soup in prop::collection::vec(0u8..=255, 0..256), magic in 0u8..=1) {
        if magic == 1 && soup.len() >= 4 {
            soup[..4].copy_from_slice(b"MCPK");
        }
        let _ = parse_ftf(&soup);
        let _ = parse_pif(&soup);
    }

    /// Random truncations of a valid snapshot are typed errors.
    #[test]
    fn truncations_are_typed_errors(cut in 0usize..4096) {
        let bytes = pif_checkpoint().to_bytes();
        let len = cut % bytes.len();
        prop_assert!(parse_pif(&bytes[..len]).is_err());
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcp-ck-torture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn simulated_crash_mid_write_never_tears_the_target() {
    let path = tmp("crash.mcpk");
    let old = ftf_checkpoint();
    old.save(&path).unwrap();
    let new = pif_checkpoint(); // any different payload
    {
        let _guard = arm_scoped(FaultPlan::write_crash(0xC5A7));
        // Every attempt "crashes" (torn temp / ENOSPC / failed rename):
        // the save must give up with a typed IO error...
        let err = new.to_bytes();
        let res = mcp_chaos::io::atomic_write(&path, &err, "checkpoint.save");
        assert!(res.is_err(), "write_crash plan must defeat every retry");
    }
    // ...and the target still holds the previous complete snapshot.
    assert_eq!(FtfCheckpoint::load(&path).unwrap(), old);
    assert!(
        !mcp_chaos::io::temp_sibling(&path).exists(),
        "no staging litter left behind"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_io_faults_are_survived_or_typed_never_silent() {
    let ck = ftf_checkpoint();
    // Sweep seeds so all fault classes (ENOSPC, torn, rename-fail on the
    // write side; short read, bit flip, transient on the read side) get
    // drawn. Default plans are bounded, so saves must all succeed; loads
    // must either return the exact snapshot or a typed error.
    let mut corrupt_loads = 0;
    for seed in 0..24u64 {
        let path = tmp(&format!("fault-{seed}.mcpk"));
        let _guard = arm_scoped(FaultPlan {
            read_per_mille: 500,
            max_consecutive: 1, // reads have no corruption retry: keep it survivable
            ..FaultPlan::seeded(seed)
        });
        ck.save(&path)
            .unwrap_or_else(|e| panic!("bounded plan must not defeat save (seed {seed}): {e}"));
        match catch_unwind(AssertUnwindSafe(|| FtfCheckpoint::load(&path))) {
            Ok(Ok(loaded)) => assert_eq!(loaded, ck, "seed {seed}: silent divergence"),
            Ok(Err(CheckpointError::Corrupt(_))) => corrupt_loads += 1,
            Ok(Err(e)) => panic!("seed {seed}: unexpected error class: {e}"),
            Err(_) => panic!("seed {seed}: load panicked"),
        }
        let _ = std::fs::remove_file(&path);
    }
    assert!(corrupt_loads > 0, "the sweep never drew a corrupting fault");
}
