//! Recovery-as-policy at the library level (DESIGN §13): injected stalls
//! tripping deadlines with canonical precedence, corrupt-on-load
//! degrading to a fresh start that still reaches the reference result,
//! and a full save/load/resume chain under an armed fault plan staying
//! bit-identical at every worker count.

use mcp_chaos::{arm_scoped, FaultPlan};
use mcp_core::{Budget, SimConfig, TripReason};
use mcp_exec::Pool;
use mcp_offline::{
    ftf_dp_governed, CheckpointError, FtfCheckpoint, FtfOptions, FtfOutcome, FtfResult,
};
use mcp_workloads::random_disjoint;
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcp-chaos-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A small instance that a `max_states(2)` budget reliably truncates.
fn instance() -> (mcp_core::Workload, SimConfig) {
    for seed in 0..64 {
        let w = random_disjoint(seed, 2, 8, 4);
        let cfg = SimConfig::new(3, 1);
        let budget = Budget::unlimited().with_max_states(2);
        if matches!(
            ftf_dp_governed(&w, cfg, FtfOptions::default(), &budget, None).unwrap(),
            FtfOutcome::Truncated(_)
        ) {
            return (w, cfg);
        }
    }
    panic!("no truncating instance found");
}

fn complete(w: &mcp_core::Workload, cfg: SimConfig, jobs: usize) -> FtfResult {
    let options = FtfOptions {
        jobs,
        ..FtfOptions::default()
    };
    match ftf_dp_governed(w, cfg, options, &Budget::unlimited(), None).unwrap() {
        FtfOutcome::Complete(r) => r,
        FtfOutcome::Truncated(_) => panic!("unlimited budget cannot truncate"),
    }
}

#[test]
fn injected_stalls_trip_deadlines_with_canonical_precedence() {
    // Every task attempt stalls (or panics and is retried); the budget's
    // deadline expires under those stalls, and even with the state and
    // memory caps also exceeded, every trip reports Deadline — the
    // canonical precedence (cancelled > deadline > statecap > memcap).
    let plan = FaultPlan {
        task_per_mille: 1000,
        max_consecutive: 2,
        max_stall_ms: 6,
        ..FaultPlan::seeded(0x57A1)
    };
    let items: Vec<u64> = (0..64).collect();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let _guard = arm_scoped(plan);
    let budget = Budget::unlimited()
        .with_deadline(Duration::from_millis(1))
        .with_max_states(1)
        .with_memory_cap(1);
    let results = Pool::new(4).par_try_map_retry("chaos.stall", 4, &items, |_, _| {
        // By the time any attempt reaches here it has slept ≥ 1ms (or
        // was retried after a full stalled round): the deadline is gone.
        budget.check(10, 10)
    });
    std::panic::set_hook(hook);
    for (i, slot) in results.iter().enumerate() {
        let trip = slot
            .as_ref()
            .unwrap_or_else(|q| panic!("task {i} quarantined under a bounded plan: {q}"))
            .clone()
            .unwrap_err();
        assert_eq!(trip, TripReason::Deadline, "task {i}: wrong precedence");
    }
}

#[test]
fn corrupt_resume_degrades_to_a_fresh_start_that_matches_the_reference() {
    let (w, cfg) = instance();
    let reference = complete(&w, cfg, 1);
    let budget = Budget::unlimited().with_max_states(2);
    let t = match ftf_dp_governed(&w, cfg, FtfOptions::default(), &budget, None).unwrap() {
        FtfOutcome::Truncated(t) => t,
        FtfOutcome::Complete(_) => unreachable!("instance() guarantees truncation"),
    };
    let path = tmp("corrupt-resume.mcpk");
    t.checkpoint.save(&path).unwrap();
    // Flip one payload byte on disk: the load must be a typed Corrupt —
    // and the recovery policy (resume = None) still reaches the exact
    // reference result.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let resume = match FtfCheckpoint::load(&path) {
        Err(CheckpointError::Corrupt(_)) => None,
        other => panic!("expected a typed corruption, got {other:?}"),
    };
    let rerun = match ftf_dp_governed(
        &w,
        cfg,
        FtfOptions::default(),
        &Budget::unlimited(),
        resume.as_ref(),
    )
    .unwrap()
    {
        FtfOutcome::Complete(r) => r,
        FtfOutcome::Truncated(_) => unreachable!(),
    };
    assert_eq!(rerun.min_faults, reference.min_faults);
    assert_eq!(rerun.states, reference.states);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn faulted_save_load_resume_chain_is_identical_at_every_jobs_level() {
    let (w, cfg) = instance();
    let reference = complete(&w, cfg, 1);
    let path = tmp("chain.mcpk");
    let _guard = arm_scoped(FaultPlan::seeded(0xFA_57ED));
    for jobs in [1usize, 2, 4] {
        let options = FtfOptions {
            jobs,
            ..FtfOptions::default()
        };
        let budget = Budget::unlimited().with_max_states(2);
        let t = match ftf_dp_governed(&w, cfg, options, &budget, None).unwrap() {
            FtfOutcome::Truncated(t) => t,
            FtfOutcome::Complete(_) => unreachable!("instance() guarantees truncation"),
        };
        // Save under injected write faults: the bounded plan cannot
        // defeat the retry loop.
        t.checkpoint.save(&path).unwrap();
        // Load under injected read faults: either the exact bytes (the
        // happy path or a survived transient) or typed corruption, which
        // the recovery policy maps to a fresh start.
        let resume = match FtfCheckpoint::load(&path) {
            Ok(ck) => {
                assert_eq!(ck, t.checkpoint, "loads never silently diverge");
                Some(ck)
            }
            Err(CheckpointError::Corrupt(_)) => None,
            Err(e) => panic!("unexpected error class: {e}"),
        };
        let finished =
            match ftf_dp_governed(&w, cfg, options, &Budget::unlimited(), resume.as_ref()).unwrap()
            {
                FtfOutcome::Complete(r) => r,
                FtfOutcome::Truncated(_) => unreachable!(),
            };
        assert_eq!(finished.min_faults, reference.min_faults, "jobs={jobs}");
        assert_eq!(finished.states, reference.states, "jobs={jobs}");
    }
    let _ = std::fs::remove_file(&path);
}
