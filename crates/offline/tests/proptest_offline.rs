//! Property tests of the offline algorithms: the DP, the brute-force
//! search and Theorem 5's restricted class must agree on arbitrary tiny
//! disjoint instances; miss curves must be monotone and ordered; PIF
//! feasibility must be monotone in its bounds and antitone in time.

use mcp_core::{simulate, PageId, SimConfig, Workload};
use mcp_offline::{
    belady_faults, brute_force_min_faults, fitf_restricted_min_faults, ftf_min_faults, lru_curve,
    opt_curve, optimal_static_partition, pif_decide, PartPolicy, PifOptions, StateArena,
};
use mcp_policies::static_partition_belady;
use proptest::prelude::*;

fn tiny_disjoint() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..2, 1..5), 2..=2).prop_map(|seqs| {
        let shifted: Vec<Vec<PageId>> = seqs
            .into_iter()
            .enumerate()
            .map(|(core, s)| {
                s.into_iter()
                    .map(|v| PageId(core as u32 * 100 + v))
                    .collect()
            })
            .collect();
        Workload::new(shifted).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_brute_and_restricted_agree(
        w in tiny_disjoint(),
        k in 2usize..4,
        tau in 0u64..3,
    ) {
        let cfg = SimConfig::new(k, tau);
        let dp = ftf_min_faults(&w, cfg).unwrap();
        let brute = brute_force_min_faults(&w, cfg, 50_000_000).unwrap();
        prop_assert_eq!(dp, brute);
        let restricted = fitf_restricted_min_faults(&w, cfg, 50_000_000).unwrap();
        prop_assert_eq!(dp, restricted);
    }

    #[test]
    fn single_core_dp_is_belady_for_all_tau(
        seq in prop::collection::vec(0u32..4, 1..8),
        k in 1usize..4,
        tau in 0u64..4,
    ) {
        let pages: Vec<PageId> = seq.iter().map(|&v| PageId(v)).collect();
        let w = Workload::new(vec![pages.clone()]).unwrap();
        let dp = ftf_min_faults(&w, SimConfig::new(k, tau)).unwrap();
        prop_assert_eq!(dp, belady_faults(&pages, k));
    }

    #[test]
    fn curves_are_monotone_and_ordered(
        seq in prop::collection::vec(0u32..8, 1..60),
        k_max in 1usize..9,
    ) {
        let pages: Vec<PageId> = seq.iter().map(|&v| PageId(v)).collect();
        let lru = lru_curve(&pages, k_max);
        let opt = opt_curve(&pages, k_max);
        for window in lru.windows(2) {
            prop_assert!(window[0] >= window[1], "LRU inclusion property");
        }
        for window in opt.windows(2) {
            prop_assert!(window[0] >= window[1], "OPT monotone");
        }
        for (l, o) in lru.iter().zip(&opt) {
            prop_assert!(o <= l, "OPT never worse than LRU");
        }
        // At k >= universe both equal the cold-miss count.
        let distinct = pages.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        if k_max >= pages.iter().collect::<std::collections::HashSet<_>>().len() {
            prop_assert_eq!(lru[k_max - 1], distinct);
            prop_assert_eq!(opt[k_max - 1], distinct);
        }
    }

    #[test]
    fn optimal_partition_beats_every_enumerated_partition(
        seq0 in prop::collection::vec(0u32..4, 1..20),
        seq1 in prop::collection::vec(100u32..105, 1..20),
        k in 2usize..6,
    ) {
        let w = Workload::new(vec![
            seq0.iter().map(|&v| PageId(v)).collect(),
            seq1.iter().map(|&v| PageId(v)).collect(),
        ]).unwrap();
        let best = optimal_static_partition(&w, k, PartPolicy::Opt);
        for k0 in 1..k {
            let part = mcp_policies::Partition::from_sizes(vec![k0, k - k0]);
            let r = simulate(&w, SimConfig::new(k, 1), static_partition_belady(part)).unwrap();
            prop_assert!(best.faults <= r.total_faults(),
                "claimed optimum {} beaten by [{}, {}] = {}", best.faults, k0, k - k0, r.total_faults());
        }
    }

    #[test]
    fn pif_monotone_in_bounds_and_antitone_in_time(
        w in tiny_disjoint(),
        tau in 0u64..2,
        b0 in 0u64..4,
        b1 in 0u64..4,
        t in 1u64..12,
    ) {
        let cfg = SimConfig::new(2, tau);
        let opts = PifOptions::default();
        let feasible = pif_decide(&w, cfg, t, &[b0, b1], opts).unwrap();
        if feasible {
            // Relaxing any bound keeps feasibility.
            prop_assert!(pif_decide(&w, cfg, t, &[b0 + 1, b1], opts).unwrap());
            prop_assert!(pif_decide(&w, cfg, t, &[b0, b1 + 1], opts).unwrap());
            // Earlier checkpoints are weaker constraints.
            prop_assert!(pif_decide(&w, cfg, t - 1, &[b0, b1], opts).unwrap());
        } else {
            // Later checkpoints can only stay infeasible.
            prop_assert!(!pif_decide(&w, cfg, t + 1, &[b0, b1], opts).unwrap());
        }
    }

    #[test]
    fn packed_keys_roundtrip_in_both_representations(
        cores in 1usize..=6,
        tau in 0u64..=4,
        n in 1u64..=20,
        states in prop::collection::vec((0u64..u64::MAX, prop::collection::vec(0u32..200, 6)), 1..40),
    ) {
        // max_pos mirrors the DP's end positions: n(τ+1) + 1.
        let max_pos = n * (tau + 1) + 1;
        for force_spill in [false, true] {
            let mut arena = StateArena::new(cores, max_pos, force_spill);
            for (cfg, pos) in &states {
                let positions: Vec<u32> = pos[..cores]
                    .iter()
                    .map(|&x| 1 + x % (max_pos as u32))
                    .collect();
                let (id, _) = arena.intern(*cfg, &positions);
                // Encode → intern → decode must reproduce the key exactly.
                prop_assert_eq!(
                    arena.key(id),
                    (*cfg, positions.clone().into_boxed_slice()),
                    "roundtrip (spill={})", force_spill
                );
                prop_assert_eq!(
                    arena.pos_sum(id),
                    positions.iter().map(|&x| u64::from(x)).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn packed_canonical_order_matches_state_key_order(
        cores in 1usize..=6,
        tau in 0u64..=4,
        n in 1u64..=20,
        states in prop::collection::vec((0u64..64, prop::collection::vec(0u32..200, 6)), 2..30),
    ) {
        // The packed engine must sort states exactly as the unpacked
        // (mask, positions) lexicographic StateKey order did.
        let max_pos = n * (tau + 1) + 1;
        for force_spill in [false, true] {
            let mut arena = StateArena::new(cores, max_pos, force_spill);
            let mut ids = Vec::new();
            for (cfg, pos) in &states {
                let positions: Vec<u32> = pos[..cores]
                    .iter()
                    .map(|&x| 1 + x % (max_pos as u32))
                    .collect();
                ids.push(arena.intern(*cfg, &positions).0);
            }
            ids.sort_unstable();
            ids.dedup();
            let mut by_engine = ids.clone();
            arena.sort_ids(&mut by_engine);
            let mut by_key = ids.clone();
            by_key.sort_by_key(|&id| arena.key(id));
            prop_assert_eq!(by_engine, by_key, "order diverged (spill={})", force_spill);
        }
    }

    #[test]
    fn ftf_optimum_within_model_bounds(
        w in tiny_disjoint(),
        k in 2usize..4,
        tau in 0u64..3,
    ) {
        let opt = ftf_min_faults(&w, SimConfig::new(k, tau)).unwrap();
        prop_assert!(opt >= w.universe_size() as u64, "cold misses are unavoidable");
        prop_assert!(opt <= w.total_len() as u64);
    }
}
