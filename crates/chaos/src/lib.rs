//! # mcp-chaos — deterministic fault injection for the paging toolkit
//!
//! Every long-running computation in this workspace — governed DP sweeps,
//! checkpoint save/resume chains, tournament grids — leans on disk IO and
//! the worker pool. This crate adversarially exercises those seams with
//! *seeded, reproducible* faults so that recovery is a tested policy, not
//! luck (DESIGN §13).
//!
//! ## Model
//!
//! A [`FaultPlan`] is armed process-wide ([`arm`]/[`disarm`]). Injection
//! sites call [`write_fault`], [`read_fault`] or [`task_fault`] with a
//! `(site, index, attempt)` coordinate; the decision is a pure splitmix64
//! hash of the plan seed and that coordinate — exactly the
//! `mcp_exec::derive_seed` discipline — so a fault fires at the same
//! logical operation regardless of worker count, interleaving, or wall
//! clock. When no plan is armed every probe is a single relaxed atomic
//! load returning `None` (zero-cost in production).
//!
//! ## The bounded-adversary guarantee
//!
//! Faults only fire while `attempt < max_consecutive`. Retry loops that
//! allow more attempts than that (e.g. [`io::MAX_IO_ATTEMPTS`], the
//! exec-layer task quarantine) are therefore *guaranteed to make
//! progress* under any default plan: an injected fault is transient by
//! construction, while a real, repeated failure exhausts its attempts
//! and surfaces as a typed error. Torture plans for tests may set
//! `max_consecutive` high enough to defeat every retry and prove the
//! typed-error path.

pub mod io;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Prefix of every panic message raised by [`task_point`]; lets harnesses
/// distinguish injected panics from genuine ones.
pub const INJECTED_PANIC_PREFIX: &str = "mcp-chaos injected panic";

/// A seeded, process-wide fault-injection plan. Rates are per-mille
/// (1000 = always); the same plan produces the same fault sequence at
/// every `--jobs` level because decisions are keyed on logical
/// `(site, index, attempt)` coordinates, never on threads or time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed; every site decision derives from it via splitmix64.
    pub seed: u64,
    /// Per-mille chance a write attempt faults (torn write, ENOSPC,
    /// rename failure — picked by a second hash draw).
    pub write_per_mille: u16,
    /// Per-mille chance a read attempt faults (short read, bit flip,
    /// transient error).
    pub read_per_mille: u16,
    /// Per-mille chance a task attempt faults (panic or stall).
    pub task_per_mille: u16,
    /// Faults only fire on attempts `0..max_consecutive`; later retries
    /// of the same operation run clean. This is the bounded-adversary
    /// knob that guarantees retry loops terminate successfully.
    pub max_consecutive: u32,
    /// Upper bound on an injected stall, in milliseconds.
    pub max_stall_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            write_per_mille: 250,
            read_per_mille: 150,
            task_per_mille: 100,
            max_consecutive: 2,
            max_stall_ms: 4,
        }
    }
}

impl FaultPlan {
    /// The default plan under a different seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan whose write faults defeat every retry (rate 1000, unbounded
    /// consecutive faults): [`io::atomic_write`] always fails, proving
    /// the crash-mid-write atomicity contract. Reads and tasks run clean.
    pub fn write_crash(seed: u64) -> Self {
        FaultPlan {
            seed,
            write_per_mille: 1000,
            read_per_mille: 0,
            task_per_mille: 0,
            max_consecutive: u32::MAX,
            max_stall_ms: 0,
        }
    }

    /// Parse a plan spec: `SEED[:W,R,T[,C[,STALL_MS]]]` with decimal or
    /// `0x`-prefixed seed (the `MCP_CHAOS` env format and the
    /// `mcp chaos --plan` format).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let bad = |what: &str| format!("bad fault plan {spec:?}: {what}");
        let (seed_text, rest) = match spec.split_once(':') {
            None => (spec, None),
            Some((s, r)) => (s, Some(r)),
        };
        let seed = parse_u64(seed_text).ok_or_else(|| bad("seed must be an integer"))?;
        let mut plan = FaultPlan::seeded(seed);
        if let Some(rest) = rest {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() < 3 || parts.len() > 5 {
                return Err(bad("expected W,R,T[,C[,STALL_MS]] after the colon"));
            }
            let mille = |text: &str, what: &str| -> Result<u16, String> {
                match parse_u64(text) {
                    Some(v) if v <= 1000 => Ok(v as u16),
                    _ => Err(bad(&format!("{what} must be a per-mille rate (0..=1000)"))),
                }
            };
            plan.write_per_mille = mille(parts[0], "write rate")?;
            plan.read_per_mille = mille(parts[1], "read rate")?;
            plan.task_per_mille = mille(parts[2], "task rate")?;
            if let Some(c) = parts.get(3) {
                plan.max_consecutive = parse_u64(c)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| bad("max consecutive must be an integer"))?;
            }
            if let Some(ms) = parts.get(4) {
                plan.max_stall_ms =
                    parse_u64(ms).ok_or_else(|| bad("stall ms must be an integer"))?;
            }
        }
        Ok(plan)
    }
}

fn parse_u64(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        cleaned.parse().ok()
    }
}

/// A write-attempt fault, decided by [`write_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Simulated crash mid-write: only `keep_per_256/256` of the bytes
    /// reach the temp file before the "crash".
    Torn { keep_per_256: u8 },
    /// The write fails up front (disk full).
    Enospc,
    /// The payload lands in the temp file but the publishing rename fails.
    RenameFail,
}

/// A read-attempt fault, decided by [`read_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadFault {
    /// The read returns only a `keep_per_256/256` prefix of the file.
    Short { keep_per_256: u8 },
    /// One bit of the returned buffer flips (position derived from
    /// `salt`); the downstream checksum must catch it.
    BitFlip { salt: u64 },
    /// The read itself errors (transient EIO); retryable.
    Transient,
}

/// A task-attempt fault, decided by [`task_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFault {
    /// Panic with an [`INJECTED_PANIC_PREFIX`] message.
    Panic,
    /// Sleep for the given duration (trips tight deadlines).
    Stall(Duration),
}

// ---------------------------------------------------------------------------
// Process-wide arming

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
/// Serializes armed sections across threads of one process: tests and the
/// torture harness hold this (via [`arm_scoped`]) so concurrent tests
/// never observe each other's plans.
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// Is any fault plan armed? Single relaxed atomic load — the fast path
/// every injection probe takes first.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm `plan` process-wide. Prefer [`arm_scoped`] in tests.
pub fn arm(plan: FaultPlan) {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm: every probe returns `None` again.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The currently armed plan, if any.
pub fn current_plan() -> Option<FaultPlan> {
    if !armed() {
        return None;
    }
    *PLAN.read().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard from [`arm_scoped`]: disarms on drop and holds the global
/// arm lock for its lifetime.
pub struct ArmGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm `plan` for a lexical scope: takes the global arm lock (so
/// concurrently running tests serialize instead of cross-contaminating),
/// arms, and disarms when the guard drops.
pub fn arm_scoped(plan: FaultPlan) -> ArmGuard {
    let lock = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    arm(plan);
    ArmGuard { _lock: lock }
}

/// Arm from the `MCP_CHAOS` environment variable (format:
/// [`FaultPlan::parse`]) if it is set and valid. Returns the armed plan.
/// Binaries call this at startup so end-to-end tests can inject faults
/// into a spawned process.
pub fn arm_from_env() -> Option<FaultPlan> {
    let spec = std::env::var("MCP_CHAOS").ok()?;
    match FaultPlan::parse(&spec) {
        Ok(plan) => {
            arm(plan);
            Some(plan)
        }
        Err(e) => {
            eprintln!("warning: ignoring MCP_CHAOS: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Decisions

/// splitmix64 — the same finalizer `mcp_exec::derive_seed` uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over arbitrary bytes; names injection sites.
pub fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The pure decision hash for one `(class, site, index, attempt)`
/// coordinate under `plan`. Distinct classes (write/read/task) draw from
/// independent streams.
fn decision(plan: &FaultPlan, class: u64, site: &str, index: u64, attempt: u32) -> u64 {
    splitmix64(
        plan.seed
            ^ site_hash(site).rotate_left(17)
            ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (attempt as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ class.wrapping_mul(0xA076_1D64_78BD_642F),
    )
}

fn fires(h: u64, per_mille: u16, attempt: u32, plan: &FaultPlan) -> bool {
    attempt < plan.max_consecutive && h % 1000 < per_mille as u64
}

/// Should the `attempt`-th try of write operation `index` at `site`
/// fault, and how? `None` when disarmed or the draw misses.
pub fn write_fault(site: &str, index: u64, attempt: u32) -> Option<WriteFault> {
    let plan = current_plan()?;
    let h = decision(&plan, 1, site, index, attempt);
    if !fires(h, plan.write_per_mille, attempt, &plan) {
        return None;
    }
    Some(match (h >> 10) % 3 {
        0 => WriteFault::Torn {
            keep_per_256: (h >> 32) as u8,
        },
        1 => WriteFault::Enospc,
        _ => WriteFault::RenameFail,
    })
}

/// Should the `attempt`-th try of read operation `index` at `site` fault,
/// and how?
pub fn read_fault(site: &str, index: u64, attempt: u32) -> Option<ReadFault> {
    let plan = current_plan()?;
    let h = decision(&plan, 2, site, index, attempt);
    if !fires(h, plan.read_per_mille, attempt, &plan) {
        return None;
    }
    Some(match (h >> 10) % 3 {
        0 => ReadFault::Short {
            keep_per_256: (h >> 32) as u8,
        },
        1 => ReadFault::BitFlip { salt: h >> 20 },
        _ => ReadFault::Transient,
    })
}

/// Should the `attempt`-th try of task `index` at `site` fault, and how?
pub fn task_fault(site: &str, index: u64, attempt: u32) -> Option<TaskFault> {
    let plan = current_plan()?;
    let h = decision(&plan, 3, site, index, attempt);
    if !fires(h, plan.task_per_mille, attempt, &plan) {
        return None;
    }
    Some(match (h >> 10) % 2 {
        0 => TaskFault::Panic,
        _ => TaskFault::Stall(Duration::from_millis(
            1 + (h >> 32) % plan.max_stall_ms.max(1),
        )),
    })
}

/// Execute a task-site probe: no-op when disarmed; panics (with
/// [`INJECTED_PANIC_PREFIX`]) or stalls when the plan says so. Retry
/// layers pass the attempt number so injected faults clear after
/// `max_consecutive` attempts.
#[inline]
pub fn task_point(site: &str, index: u64, attempt: u32) {
    if !armed() {
        return;
    }
    match task_fault(site, index, attempt) {
        None => {}
        Some(TaskFault::Stall(d)) => std::thread::sleep(d),
        Some(TaskFault::Panic) => {
            panic!("{INJECTED_PANIC_PREFIX}: site={site} index={index} attempt={attempt}")
        }
    }
}

/// Is `message` (a caught panic payload) an injected panic?
pub fn is_injected_panic(message: &str) -> bool {
    message.starts_with(INJECTED_PANIC_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_probes_are_none() {
        assert!(!armed());
        assert!(write_fault("t", 0, 0).is_none());
        assert!(read_fault("t", 0, 0).is_none());
        assert!(task_fault("t", 0, 0).is_none());
        task_point("t", 0, 0); // must be a no-op, not a panic
    }

    #[test]
    fn decisions_are_deterministic_and_site_scoped() {
        let _guard = arm_scoped(FaultPlan::seeded(0xC5A0));
        let probe = |site: &str| {
            (0..200u64)
                .map(|i| write_fault(site, i, 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(probe("a"), probe("a"), "same coordinates, same faults");
        assert_ne!(probe("a"), probe("b"), "sites draw independent streams");
        let hits = probe("a").iter().filter(|f| f.is_some()).count();
        // 250‰ over 200 draws: loose 3-sigma-ish band, deterministic anyway.
        assert!((20..=80).contains(&hits), "hit rate off: {hits}/200");
    }

    #[test]
    fn faults_stop_after_max_consecutive_attempts() {
        let plan = FaultPlan {
            write_per_mille: 1000,
            read_per_mille: 1000,
            task_per_mille: 1000,
            max_consecutive: 2,
            ..FaultPlan::seeded(7)
        };
        let _guard = arm_scoped(plan);
        for i in 0..50 {
            assert!(write_fault("s", i, 0).is_some());
            assert!(write_fault("s", i, 1).is_some());
            assert!(write_fault("s", i, 2).is_none(), "attempt 2 must run clean");
            assert!(read_fault("s", i, 2).is_none());
            assert!(task_fault("s", i, 2).is_none());
        }
    }

    #[test]
    fn injected_panics_carry_the_prefix() {
        let plan = FaultPlan {
            task_per_mille: 1000,
            max_stall_ms: 0, // degenerate stalls still 1ms; find a panic draw
            ..FaultPlan::seeded(3)
        };
        let _guard = arm_scoped(plan);
        let idx = (0..500u64)
            .find(|&i| matches!(task_fault("panic-site", i, 0), Some(TaskFault::Panic)))
            .expect("some draw panics");
        let err = std::panic::catch_unwind(|| task_point("panic-site", idx, 0)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(is_injected_panic(&msg), "{msg}");
    }

    #[test]
    fn plan_specs_parse() {
        assert_eq!(FaultPlan::parse("7").unwrap(), FaultPlan::seeded(7));
        assert_eq!(
            FaultPlan::parse("0xC5:1000,0,0,9,12").unwrap(),
            FaultPlan {
                seed: 0xC5,
                write_per_mille: 1000,
                read_per_mille: 0,
                task_per_mille: 0,
                max_consecutive: 9,
                max_stall_ms: 12,
            }
        );
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("1:2").is_err());
        assert!(FaultPlan::parse("1:2000,0,0").is_err(), "rate > 1000");
    }
}
