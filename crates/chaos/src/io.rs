//! Self-healing file IO: atomic writes (temp sibling + fsync + rename)
//! and whole-file reads, both with bounded retry, deterministic backoff,
//! and chaos injection points.
//!
//! The atomicity contract: after [`atomic_write`] returns — success *or*
//! error, including a simulated crash on any attempt — the target path
//! either holds its previous complete contents or the new complete
//! contents, never a torn prefix. Torn writes land in a `.tmp` sibling
//! that is never the target.
//!
//! Retry interacts with the bounded adversary of [`crate::FaultPlan`]:
//! [`MAX_IO_ATTEMPTS`] exceeds the default `max_consecutive`, so any
//! default plan's injected faults are survived transparently; only a
//! torture plan (or a real, persistent disk error) exhausts the retries
//! and surfaces a typed `io::Error`.

use crate::{read_fault, site_hash, write_fault, ReadFault, WriteFault};
use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Attempts per IO operation (first try + retries). Strictly greater
/// than the default [`crate::FaultPlan::max_consecutive`] so default
/// plans cannot defeat the retry loop.
pub const MAX_IO_ATTEMPTS: u32 = 4;

/// Deterministic backoff before retry `attempt + 1`: a fixed, doubling
/// micro-sleep — no clocks or randomness, so fault/retry schedules are
/// reproducible.
fn backoff(attempt: u32) {
    std::thread::sleep(Duration::from_micros(200u64 << attempt.min(8)));
}

fn injected(what: impl std::fmt::Display) -> io::Error {
    io::Error::other(format!("mcp-chaos injected {what}"))
}

/// Was this error manufactured by an armed fault plan (as opposed to a
/// genuine OS error)?
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().contains("mcp-chaos injected")
}

/// The temp sibling `atomic_write` stages into: same directory (so the
/// rename cannot cross filesystems), suffixed `.tmp`.
pub fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Stable per-path operation index: distinct paths draw independent
/// fault streams under the same site name.
fn path_index(path: &Path) -> u64 {
    site_hash(&path.to_string_lossy())
}

/// Atomically replace `path` with `bytes`: write a temp sibling, fsync,
/// rename over the target. Transient failures (injected or real) are
/// retried up to [`MAX_IO_ATTEMPTS`] with deterministic backoff; the
/// target is never left torn.
pub fn atomic_write(path: &Path, bytes: &[u8], site: &str) -> io::Result<()> {
    let index = path_index(path);
    let tmp = temp_sibling(path);
    let mut last: Option<io::Error> = None;
    for attempt in 0..MAX_IO_ATTEMPTS {
        match write_once(path, &tmp, bytes, site, index, attempt) {
            Ok(()) => return Ok(()),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < MAX_IO_ATTEMPTS {
                    backoff(attempt);
                }
            }
        }
    }
    // Give up: clean the staging file so no `.tmp` litter survives, and
    // surface the last error. The target is untouched by construction.
    let _ = fs::remove_file(&tmp);
    Err(last.expect("at least one attempt ran"))
}

fn write_once(
    path: &Path,
    tmp: &Path,
    bytes: &[u8],
    site: &str,
    index: u64,
    attempt: u32,
) -> io::Result<()> {
    let fault = write_fault(site, index, attempt);
    if let Some(WriteFault::Enospc) = fault {
        return Err(injected("ENOSPC before write"));
    }
    let mut f = File::create(tmp)?;
    if let Some(WriteFault::Torn { keep_per_256 }) = fault {
        // Simulated crash mid-write: a strict prefix reaches the temp
        // file, then the "process dies". The target path is untouched.
        let keep = bytes.len() * keep_per_256 as usize / 256;
        f.write_all(&bytes[..keep])?;
        let _ = f.sync_all();
        return Err(injected(format_args!(
            "crash mid-write (torn temp file, {keep}/{} bytes)",
            bytes.len()
        )));
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Some(WriteFault::RenameFail) = fault {
        return Err(injected("rename failure after staging"));
    }
    fs::rename(tmp, path)?;
    Ok(())
}

/// Read the whole file at `path`. Transient (injected) errors are
/// retried with backoff; injected *corruption* — short reads and bit
/// flips — is returned as corrupted bytes, exercising the caller's
/// checksum/typed-error path rather than the retry path.
pub fn read(path: &Path, site: &str) -> io::Result<Vec<u8>> {
    let index = path_index(path);
    let mut last: Option<io::Error> = None;
    for attempt in 0..MAX_IO_ATTEMPTS {
        let fault = read_fault(site, index, attempt);
        if let Some(ReadFault::Transient) = fault {
            last = Some(injected("transient read error"));
            if attempt + 1 < MAX_IO_ATTEMPTS {
                backoff(attempt);
            }
            continue;
        }
        let mut f = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                // Genuine open errors (NotFound, permissions) are not
                // transient; surface them immediately.
                return Err(e);
            }
        };
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        match fault {
            Some(ReadFault::Short { keep_per_256 }) => {
                let keep = bytes.len() * keep_per_256 as usize / 256;
                bytes.truncate(keep);
            }
            Some(ReadFault::BitFlip { salt }) if !bytes.is_empty() => {
                let bit = salt % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            _ => {}
        }
        return Ok(bytes);
    }
    Err(last.expect("loop only exhausts via transient faults"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arm_scoped, FaultPlan};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcp-chaos-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plain_round_trip() {
        let dir = tmp_dir("plain");
        let p = dir.join("file.bin");
        atomic_write(&p, b"hello", "test.write").unwrap();
        assert_eq!(read(&p, "test.read").unwrap(), b"hello");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_plan_faults_are_survived_transparently() {
        let dir = tmp_dir("survive");
        let _guard = arm_scoped(FaultPlan::seeded(0xBEEF));
        // Many distinct paths so the 250‰ write rate certainly fires on
        // some first attempts; every write must still succeed.
        for i in 0..64 {
            let p = dir.join(format!("f{i}.bin"));
            let payload = vec![i as u8; 64 + i];
            atomic_write(&p, &payload, "test.write").unwrap();
            let bytes = fs::read(&p).unwrap();
            assert_eq!(bytes, payload, "target must hold complete contents");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_plan_never_tears_the_target() {
        let dir = tmp_dir("crash");
        let p = dir.join("ck.bin");
        atomic_write(&p, b"old complete contents", "test.write").unwrap();
        {
            let _guard = arm_scoped(FaultPlan::write_crash(11));
            let err = atomic_write(&p, b"new contents", "test.write").unwrap_err();
            assert!(is_injected(&err), "{err}");
        }
        assert_eq!(
            fs::read(&p).unwrap(),
            b"old complete contents",
            "a crashed write must leave the previous contents intact"
        );
        assert!(
            !temp_sibling(&p).exists(),
            "no staging litter after giving up"
        );
        // Disarmed, the same write goes through.
        atomic_write(&p, b"new contents", "test.write").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"new contents");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_corruption_is_returned_not_retried() {
        let dir = tmp_dir("corrupt");
        let p = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255).collect();
        atomic_write(&p, &payload, "test.write").unwrap();
        let plan = FaultPlan {
            read_per_mille: 1000,
            write_per_mille: 0,
            task_per_mille: 0,
            max_consecutive: u32::MAX,
            ..FaultPlan::seeded(0)
        };
        // Scan seeds until attempt 0 draws a corrupting (non-transient)
        // fault for this path, then require the corruption to surface.
        for seed in 0..64 {
            let _guard = arm_scoped(FaultPlan { seed, ..plan });
            match read_fault("test.read", super::path_index(&p), 0) {
                Some(ReadFault::Transient) | None => continue,
                Some(_) => {
                    let bytes = read(&p, "test.read").unwrap();
                    assert_ne!(bytes, payload, "corruption must reach the caller");
                    return;
                }
            }
        }
        panic!("no corrupting draw in 64 seeds");
    }
}
