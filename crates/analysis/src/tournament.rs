//! Regret and pairwise-dominance reporting for strategy tournaments.
//!
//! The tournament runner (CLI `mcp tournament`, fed by `mcp-batch`)
//! produces a fault count per *(cell group × strategy)*, where a group is
//! one `(workload, K, τ)` combination all strategies compete on. This
//! module turns that matrix into the standard [`Report`] surface so the
//! markdown/JSON/CSV renderers and their byte-stability guarantees are
//! shared with the experiments.

use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, QuantileSketch};

/// The raw outcome matrix of a tournament.
#[derive(Clone, Debug)]
pub struct TournamentOutcome {
    /// Competing strategy family names (column order).
    pub strategies: Vec<String>,
    /// Group labels, e.g. `zipf-shared/s1 K=16 tau=4` (row order).
    pub groups: Vec<String>,
    /// `faults[group][strategy]`: total fault count, or `None` when the
    /// family was inapplicable to that group's workload.
    pub faults: Vec<Vec<Option<u64>>>,
}

/// Groups with per-cell rows beyond this count report only the summary
/// tables (the JSON stays bounded; the full matrix is recoverable by
/// re-running the same seeded grid).
const PER_CELL_ROW_CAP: usize = 64;

/// Build the tournament report: per-cell fault counts (small grids),
/// per-strategy regret vs the best strategy in each group, and the
/// pairwise-dominance matrix.
pub fn tournament_report(o: &TournamentOutcome) -> Report {
    let s = o.strategies.len();
    let mut tables = Vec::new();
    let mut notes = Vec::new();

    // Per-cell fault counts.
    if o.groups.len() <= PER_CELL_ROW_CAP {
        let mut cols = vec!["cell".to_string()];
        cols.extend(o.strategies.iter().cloned());
        let mut table = Table::new(
            "per-cell fault counts",
            &cols.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for (g, label) in o.groups.iter().enumerate() {
            let mut row = vec![label.clone()];
            for f in &o.faults[g] {
                row.push(match f {
                    Some(n) => n.to_string(),
                    None => "n/a".into(),
                });
            }
            table.row(row);
        }
        tables.push(table);
    } else {
        notes.push(format!(
            "per-cell table omitted ({} groups > {PER_CELL_ROW_CAP}); summaries below cover all cells",
            o.groups.len()
        ));
    }

    // Regret vs the best strategy in each group. A strategy's regret in a
    // group is faults / best-faults (best.max(1), the repo's ratio
    // convention); groups where the strategy is inapplicable don't count
    // against it.
    let mut summary = Table::new(
        "per-strategy regret vs the best strategy in each cell",
        &[
            "strategy",
            "cells",
            "wins",
            "avg regret",
            "worst regret",
            "total faults",
        ],
    );
    for (si, name) in o.strategies.iter().enumerate() {
        let mut cells = 0u64;
        let mut wins = 0u64;
        let mut total = 0u64;
        let mut sum_regret = 0.0f64;
        let mut worst_regret = 0.0f64;
        for g in 0..o.groups.len() {
            let Some(f) = o.faults[g][si] else { continue };
            let best = o.faults[g].iter().flatten().min().copied().unwrap_or(0);
            cells += 1;
            total += f;
            if f == best {
                wins += 1;
            }
            let regret = f as f64 / best.max(1) as f64;
            sum_regret += regret;
            worst_regret = worst_regret.max(regret);
        }
        summary.row(vec![
            name.clone(),
            cells.to_string(),
            wins.to_string(),
            fmt(if cells == 0 {
                0.0
            } else {
                sum_regret / cells as f64
            }),
            fmt(worst_regret),
            total.to_string(),
        ]);
    }
    tables.push(summary);

    // Pairwise dominance: D[a][b] = number of groups where a's faults are
    // strictly below b's (both defined).
    let mut cols = vec!["strictly beats ->".to_string()];
    cols.extend(o.strategies.iter().cloned());
    let mut dom = Table::new(
        "pairwise dominance (row strictly beats column in N cells)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for a in 0..s {
        let mut row = vec![o.strategies[a].clone()];
        for b in 0..s {
            if a == b {
                row.push("-".into());
                continue;
            }
            let n = (0..o.groups.len())
                .filter(|&g| matches!((o.faults[g][a], o.faults[g][b]), (Some(fa), Some(fb)) if fa < fb))
                .count();
            row.push(n.to_string());
        }
        dom.row(row);
    }
    tables.push(dom);

    // Fault spread across cells, per strategy, via the same streaming
    // quantile sketch the serve layer uses for latency percentiles
    // (α = 1% relative error; the spread shows whether a family's losses
    // are broad or concentrated in a few pathological cells).
    let mut spread = Table::new(
        "per-strategy fault spread across cells (sketch quantiles, α = 1%)",
        &["strategy", "cells", "p50", "p90", "p99"],
    );
    for (si, name) in o.strategies.iter().enumerate() {
        let mut sk = QuantileSketch::default_latency();
        for g in 0..o.groups.len() {
            if let Some(f) = o.faults[g][si] {
                sk.add(f as f64);
            }
        }
        let (p50, p90, p99) = sk.p50_p90_p99();
        spread.row(vec![
            name.clone(),
            sk.count().to_string(),
            fmt(p50),
            fmt(p90),
            fmt(p99),
        ]);
    }
    tables.push(spread);

    notes.push(
        "regret = faults / best-in-cell faults; wins = cells where the strategy attains the best \
         count (ties count for every attainer)"
            .into(),
    );
    Report {
        id: "TOURNAMENT".into(),
        title: "Strategy tournament: regret and pairwise dominance".into(),
        claim: "Relative strategy quality on benchmark-distribution workloads (beyond-worst-case \
                evaluation)"
            .into(),
        tables,
        verdict: Verdict::Confirmed,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> TournamentOutcome {
        TournamentOutcome {
            strategies: vec!["lru".into(), "mru".into(), "sacrifice".into()],
            groups: vec!["g0".into(), "g1".into()],
            // g0: lru 10, mru 20, sacrifice n/a ; g1: lru 8, mru 4, sacrifice 4.
            faults: vec![
                vec![Some(10), Some(20), None],
                vec![Some(8), Some(4), Some(4)],
            ],
        }
    }

    #[test]
    fn regret_and_wins_are_per_group_minima() {
        let report = tournament_report(&outcome());
        let summary = &report.tables[1];
        // lru: cells 2, wins 1 (g0), regrets 1.0 and 2.0 -> avg 1.5 worst 2.0.
        assert_eq!(summary.rows[0][..3], ["lru", "2", "1"]);
        assert_eq!(summary.rows[0][3], fmt(1.5));
        assert_eq!(summary.rows[0][4], fmt(2.0));
        assert_eq!(summary.rows[0][5], "18");
        // sacrifice: one applicable cell, tied win there.
        assert_eq!(summary.rows[2][..3], ["sacrifice", "1", "1"]);
    }

    #[test]
    fn dominance_counts_strict_beats_on_shared_cells() {
        let report = tournament_report(&outcome());
        let dom = &report.tables[2];
        // lru beats mru only in g0; mru beats lru only in g1; sacrifice
        // beats lru in g1, never beaten by mru (tie in g1).
        assert_eq!(dom.rows[0][..], ["lru", "-", "1", "0"]);
        assert_eq!(dom.rows[1][..], ["mru", "1", "-", "0"]);
        assert_eq!(dom.rows[2][..], ["sacrifice", "1", "0", "-"]);
    }

    #[test]
    fn per_cell_table_lists_na_for_inapplicable() {
        let report = tournament_report(&outcome());
        let cells = &report.tables[0];
        assert_eq!(cells.rows[0][..], ["g0", "10", "20", "n/a"]);
    }

    #[test]
    fn fault_spread_uses_applicable_cells_only() {
        let report = tournament_report(&outcome());
        let spread = report.tables.last().unwrap();
        assert!(spread.title.contains("fault spread"));
        // sacrifice is applicable in one cell (4 faults): every quantile
        // of a single-item stream is within 1% of 4.
        assert_eq!(spread.rows[2][0], "sacrifice");
        assert_eq!(spread.rows[2][1], "1");
        for cell in &spread.rows[2][2..] {
            let v: f64 = cell.parse().unwrap();
            assert!((v - 4.0).abs() <= 0.04 + 1e-9, "{v}");
        }
        // lru: two cells {8, 10}. Under the rank-⌊q(n-1)⌋+1 convention
        // every q < 1 of a 2-item stream resolves to the first item, 8.
        let p50: f64 = spread.rows[0][2].parse().unwrap();
        let p99: f64 = spread.rows[0][4].parse().unwrap();
        assert!((p50 - 8.0).abs() <= 0.08 + 1e-9, "{p50}");
        assert!((p99 - 8.0).abs() <= 0.08 + 1e-9, "{p99}");
    }
}
