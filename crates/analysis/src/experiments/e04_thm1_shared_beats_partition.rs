//! E04 — Theorem 1.1: shared LRU beats *every* static partition — even
//! the offline-optimal partition with per-part OPT — by `Ω(n)` on the
//! rotating distinct-period sequence.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, grows_linearly};
use mcp_core::{simulate, SimConfig};
use mcp_offline::{optimal_static_partition, PartPolicy};
use mcp_policies::shared_lru;
use mcp_workloads::thm1_rotating;

/// See module docs.
pub struct E04;

impl Experiment for E04 {
    fn id(&self) -> &'static str {
        "E04"
    }
    fn title(&self) -> &'static str {
        "Shared LRU beats the offline-optimal static partition (Theorem 1.1)"
    }
    fn claim(&self) -> &'static str {
        "There is R with sP^OPT_OPT / S_LRU = Omega(n)"
    }

    fn run(&self, scale: Scale) -> Report {
        let (p, k, tau) = (2usize, 4usize, 1u64);
        let xs: Vec<usize> = match scale {
            Scale::Quick => vec![2, 4, 8, 16],
            Scale::Full => vec![4, 16, 64, 256],
        };
        let mut table = Table::new(
            "S_LRU vs sP^OPT_OPT on the rotating distinct-period sequence (p=2, K=4, tau=1)",
            &[
                "x",
                "n",
                "S_LRU faults",
                "sP^OPT_OPT faults",
                "K+p",
                "ratio",
            ],
        );
        let mut points = Vec::new();
        let mut lru_always_cold = true;
        let rows = mcp_exec::Pool::global().par_map(&xs, |_, &x| {
            let w = thm1_rotating(p, k, tau, x);
            let n = w.total_len();
            let cfg = SimConfig::new(k, tau);
            let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
            let part = optimal_static_partition(&w, k, PartPolicy::Opt);
            (n, lru, part.faults)
        });
        for (&x, &(n, lru, part_faults)) in xs.iter().zip(&rows) {
            let r = ratio(part_faults, lru);
            points.push((n as f64, r));
            lru_always_cold &= lru <= (k + p) as u64;
            table.row(vec![
                x.to_string(),
                n.to_string(),
                lru.to_string(),
                part_faults.to_string(),
                (k + p).to_string(),
                fmt(r),
            ]);
        }
        let linear = grows_linearly(&points);
        let mut notes = vec![
            "At most one core is in its distinct period at a time, so the shared cache \
             absorbs the whole rotation; any static split starves someone."
                .into(),
        ];
        if lru_always_cold {
            notes.push("S_LRU faulted at most K + p times in every run (cold misses only).".into());
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if linear && lru_always_cold {
                Verdict::Confirmed
            } else if linear {
                Verdict::Mixed("ratio grows but S_LRU exceeded K+p".into())
            } else {
                Verdict::Mixed("ratio did not grow linearly".into())
            },
            notes,
        }
    }
}
