//! E08 — Lemma 4: shared LRU is `Ω(p(τ+1))` worse than offline on the
//! disjoint cyclic workload, because offline can sacrifice one sequence —
//! throttling its fault rate to one per `τ+1` steps — while parking every
//! other working set.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_policies::{shared_lru, SacrificeOffline};
use mcp_workloads::lemma4_cyclic;

/// See module docs.
pub struct E08;

impl Experiment for E08 {
    fn id(&self) -> &'static str {
        "E08"
    }
    fn title(&self) -> &'static str {
        "LRU's competitive ratio grows as p(tau+1) (Lemma 4)"
    }
    fn claim(&self) -> &'static str {
        "There is R with S_LRU / S_OPT = Omega(p(tau+1))"
    }

    fn run(&self, scale: Scale) -> Report {
        let n_per_core = match scale {
            Scale::Quick => 3_000usize,
            Scale::Full => 30_000usize,
        };
        let mut table = Table::new(
            "S_LRU vs the sacrificing offline strategy on per-core cycles (K = p^2)",
            &[
                "p",
                "K",
                "tau",
                "S_LRU",
                "S_OFF",
                "ratio",
                "p(tau+1)",
                "ratio/p(tau+1)",
            ],
        );
        let mut normalized = Vec::new();
        let mut lru_thrashes = true;
        let sweep: Vec<(usize, u64)> = crate::grid::grid2(&[2usize, 4], &[0u64, 1, 3, 7]);
        let rows = mcp_exec::Pool::global().par_map(&sweep, |_, &(p, tau)| {
            let k = p * p;
            let w = lemma4_cyclic(p, k, n_per_core);
            let cfg = SimConfig::new(k, tau);
            let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
            let off = simulate(&w, cfg, SacrificeOffline::new(p - 1))
                .unwrap()
                .total_faults();
            (lru, off)
        });
        for (&(p, tau), &(lru, off)) in sweep.iter().zip(&rows) {
            let k = p * p;
            let r = ratio(lru, off);
            let bound = (p as u64 * (tau + 1)) as f64;
            normalized.push(r / bound);
            lru_thrashes &= lru == (p * n_per_core) as u64;
            table.row(vec![
                p.to_string(),
                k.to_string(),
                tau.to_string(),
                lru.to_string(),
                off.to_string(),
                fmt(r),
                fmt(bound),
                fmt(r / bound),
            ]);
        }
        // The Omega(p(tau+1)) shape: the normalized ratio stays bounded
        // away from zero across the whole sweep.
        let min_norm = normalized.iter().copied().fold(f64::INFINITY, f64::min);
        let ok = min_norm >= 0.3 && lru_thrashes;
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed(format!(
                    "normalized ratio fell to {min_norm:.2} (expected bounded away from 0)"
                ))
            },
            notes: vec![
                "S_LRU faults on every request (each core cycles K/p + 1 pages in a cache \
                 that LRU splits evenly); the offline strategy gives p-1 cores their whole \
                 working set and rations the last core to one fault per tau+1 steps."
                    .into(),
            ],
        }
    }
}
