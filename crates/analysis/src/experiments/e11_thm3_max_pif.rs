//! E11 — Theorem 3: MAX-PIF is APX-hard via a gap-preserving reduction
//! from MAX-4-PARTITION. The experiment verifies the 4-PARTITION variant
//! of the gadget, the gap structure (a broken group strands at most one
//! of its four sequences), and exact MAX-PIF on a tiny instance.

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_hardness::{
    known_no_4partition, planted_yes, reduce_to_pif, run_gadget, PartitionInstance,
};
use mcp_offline::{max_pif, PifOptions};

/// See module docs.
pub struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "E11"
    }
    fn title(&self) -> &'static str {
        "The 4-PARTITION -> MAX-PIF gap reduction (Theorem 3)"
    }
    fn claim(&self) -> &'static str {
        "OPT_PIF <= OPT_4PART + 3n/4: each solved group satisfies all 4 sequences, \
         each unsolved group at most 3"
    }

    fn run(&self, scale: Scale) -> Report {
        let mut table = Table::new(
            "gap-reduction checks",
            &["check", "instance", "result", "pass"],
        );
        let mut all_ok = true;

        // The gadget is exact on planted 4-PARTITION yes-instances.
        let planted_cases: Vec<(usize, u64)> = match scale {
            Scale::Quick => vec![(1, 30), (2, 30)],
            Scale::Full => vec![(1, 30), (2, 30), (4, 50)],
        };
        for (groups_n, b) in planted_cases {
            let inst = planted_yes(4, groups_n, b, 5 + groups_n as u64);
            let red = reduce_to_pif(&inst, 1);
            let faults = run_gadget(&red, &inst.solve().unwrap());
            let pass = faults == red.bounds;
            all_ok &= pass;
            table.row(vec![
                "gadget exact (g=4)".into(),
                format!("n={}, B={b}", inst.len()),
                format!("{}", pass),
                pass.to_string(),
            ]);
        }

        // Gap structure: run the gadget with a deliberately wrong grouping
        // whose group sums are B-1 and B+1 — the satisfied count must drop
        // below 4·groups but stay at least 3·groups.
        let inst = PartitionInstance::new(vec![7, 8, 7, 8, 7, 8, 8, 7], 4, 30).unwrap();
        let red = reduce_to_pif(&inst, 1);
        let bad = vec![vec![0, 2, 4, 7], vec![1, 3, 5, 6]]; // sums 28 and 32
        let faults = run_gadget(&red, &bad);
        let satisfied = faults
            .iter()
            .zip(&red.bounds)
            .filter(|(f, b)| f <= b)
            .count();
        let gap_ok = (5..8).contains(&satisfied);
        all_ok &= gap_ok;
        table.row(vec![
            "broken grouping strands <= 1/group".into(),
            format!("sums 28/32 vs B=30, satisfied={satisfied}/8"),
            satisfied.to_string(),
            gap_ok.to_string(),
        ]);

        // The solver certifies the handcrafted no-instance (all-even items
        // against an odd target).
        let no = known_no_4partition();
        let pass = !no.is_yes();
        all_ok &= pass;
        table.row(vec![
            "solver rejects no-instance".into(),
            "{6,6,6,4,4,4,4,4}, B=19".into(),
            no.is_yes().to_string(),
            pass.to_string(),
        ]);

        // Exact MAX-PIF on a tiny single-group instance.
        if scale == Scale::Full {
            let tiny = PartitionInstance::new(vec![3, 3, 3, 4], 4, 13).unwrap();
            let red = reduce_to_pif(&tiny, 1);
            let opts = PifOptions {
                full_transitions: false,
                max_expansions: 80_000_000,
                ..Default::default()
            };
            match max_pif(&red.workload, red.cfg, red.checkpoint, &red.bounds, opts) {
                Ok(m) => {
                    let pass = m == 4;
                    all_ok &= pass;
                    table.row(vec![
                        "exact MAX-PIF (honest schedules)".into(),
                        "n=4, B=13".into(),
                        m.to_string(),
                        pass.to_string(),
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        "exact MAX-PIF (honest schedules)".into(),
                        "n=4, B=13".into(),
                        format!("skipped: {e}"),
                        "n/a".into(),
                    ]);
                }
            }
        }

        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a gap check failed".into())
            },
            notes: vec![
                "The gap is what makes MAX-PIF APX-hard: any (1-ε)-approximation would \
                 decide MAX-4-PARTITION within the preserved gap."
                    .into(),
            ],
        }
    }
}
