//! E10 — Theorem 2: PARTIAL-INDIVIDUAL-FAULTS is NP-complete, by
//! reduction from 3-PARTITION. The experiment machine-checks the
//! reduction: yes-instances yield PIF-feasible instances with the proof's
//! gadget schedule meeting every bound exactly; the bounds are tight
//! (any single decrement is infeasible per the exact DP); and the solver
//! certifies the handcrafted no-instance.

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_hardness::{
    known_no_3partition, planted_yes, reduce_to_pif, run_gadget, PartitionInstance,
};
use mcp_offline::{pif_decide, PifOptions};

/// See module docs.
pub struct E10;

impl Experiment for E10 {
    fn id(&self) -> &'static str {
        "E10"
    }
    fn title(&self) -> &'static str {
        "The 3-PARTITION -> PIF reduction, machine-checked (Theorem 2)"
    }
    fn claim(&self) -> &'static str {
        "3-PARTITION has a solution iff the reduced PIF instance is feasible \
         (K = 4p/3, t = B(tau+1)+4tau+5, b_i = B-s_i+4)"
    }

    fn run(&self, scale: Scale) -> Report {
        let mut table = Table::new(
            "reduction checks",
            &["check", "instance", "result", "expected", "pass"],
        );
        let mut all_ok = true;
        let mut check = |table: &mut Table, name: &str, inst: &str, got: String, want: String| {
            let pass = got == want;
            all_ok &= pass;
            table.row(vec![name.into(), inst.into(), got, want, pass.to_string()]);
            pass
        };

        // (⇒) + DP agreement on the smallest instance.
        let tiny = PartitionInstance::new(vec![2, 2, 2], 3, 6).unwrap();
        let red = reduce_to_pif(&tiny, 1);
        let groups = tiny.solve().unwrap();
        let faults = run_gadget(&red, &groups);
        check(
            &mut table,
            "gadget meets bounds exactly",
            "n=3, B=6, tau=1",
            format!("{faults:?}"),
            format!("{:?}", red.bounds),
        );
        let opts = PifOptions {
            full_transitions: true,
            max_expansions: 60_000_000,
            ..Default::default()
        };
        let feasible =
            pif_decide(&red.workload, red.cfg, red.checkpoint, &red.bounds, opts).unwrap();
        check(
            &mut table,
            "Algorithm 2 accepts",
            "n=3, B=6",
            feasible.to_string(),
            "true".into(),
        );
        for i in 0..3 {
            let mut tight = red.bounds.clone();
            tight[i] -= 1;
            let f = pif_decide(&red.workload, red.cfg, red.checkpoint, &tight, opts).unwrap();
            check(
                &mut table,
                "tightened bound rejected",
                &format!("b_{i} - 1"),
                f.to_string(),
                "false".into(),
            );
        }

        // (⇒) at larger planted sizes: the gadget stays exact.
        let sizes: Vec<(usize, u64, u64)> = match scale {
            Scale::Quick => vec![(2, 20, 1), (3, 25, 2)],
            Scale::Full => vec![(2, 20, 1), (3, 25, 2), (5, 40, 3), (8, 60, 2)],
        };
        for (groups_n, b, tau) in sizes {
            let inst = planted_yes(3, groups_n, b, 42 + groups_n as u64);
            let red = reduce_to_pif(&inst, tau);
            let solution = inst.solve().unwrap();
            let faults = run_gadget(&red, &solution);
            check(
                &mut table,
                "gadget exact on planted yes",
                &format!("n={}, B={b}, tau={tau}", inst.len()),
                (faults == red.bounds).to_string(),
                "true".into(),
            );
        }

        // No-instances: the solver certifies them.
        let no = known_no_3partition();
        check(
            &mut table,
            "solver rejects no-instance",
            "{4,4,4,4,4,6}, B=13",
            no.is_yes().to_string(),
            "false".into(),
        );

        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a reduction check failed".into())
            },
            notes: vec![
                "Full PIF-DP equivalence is checked at n = 3 (the DP is exponential in p); \
                 larger instances are verified constructively via the gadget schedule."
                    .into(),
            ],
        }
    }
}
