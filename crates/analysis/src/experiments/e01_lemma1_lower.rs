//! E01 — Lemma 1, lower bound: with a fixed static partition, any
//! deterministic online eviction policy is `Ω(max_j k_j)` worse than
//! per-part OPT on the adversarial sequence.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_policies::{static_partition_belady, static_partition_lru, Partition};
use mcp_workloads::lemma1_lower;

/// See module docs.
pub struct E01;

impl Experiment for E01 {
    fn id(&self) -> &'static str {
        "E01"
    }
    fn title(&self) -> &'static str {
        "Static partition, online eviction vs per-part OPT (Lemma 1 lower bound)"
    }
    fn claim(&self) -> &'static str {
        "There is a sequence with sP^B_A / sP^B_OPT = Ω(max_j k_j) for any \
         deterministic online A and fixed static partition B"
    }

    fn run(&self, scale: Scale) -> Report {
        let (ks, n_per_core) = match scale {
            Scale::Quick => (vec![4usize, 8], 2_000usize),
            Scale::Full => (vec![4usize, 8, 16, 32], 20_000usize),
        };
        let mut table = Table::new(
            "sP^B_LRU vs sP^B_OPT on the Lemma 1 adversary (p = 2, B = [K-1, 1], tau = 0)",
            &[
                "K",
                "max_k",
                "LRU faults",
                "OPT faults",
                "ratio",
                "ratio/max_k",
            ],
        );
        let mut ok = true;
        let rows = mcp_exec::Pool::global().par_map(&ks, |_, &k| {
            let sizes = vec![k - 1, 1];
            let max_k = k - 1;
            let w = lemma1_lower(&sizes, n_per_core);
            let cfg = SimConfig::new(k, 0);
            let lru = simulate(
                &w,
                cfg,
                static_partition_lru(Partition::from_sizes(sizes.clone())),
            )
            .unwrap()
            .total_faults();
            let opt = simulate(
                &w,
                cfg,
                static_partition_belady(Partition::from_sizes(sizes.clone())),
            )
            .unwrap()
            .total_faults();
            (max_k, lru, opt, ratio(lru, opt))
        });
        for (&k, &(max_k, lru, opt, r)) in ks.iter().zip(&rows) {
            // The adversary achieves the bound asymptotically: demand at
            // least half of max_k, and Lemma 1's matching upper bound
            // caps it at max_k.
            if r < 0.5 * max_k as f64 || r > max_k as f64 + 0.01 {
                ok = false;
            }
            table.row(vec![
                k.to_string(),
                max_k.to_string(),
                lru.to_string(),
                opt.to_string(),
                fmt(r),
                fmt(r / max_k as f64),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("some ratio fell outside [max_k/2, max_k]".into())
            },
            notes: vec![
                "The largest part's core chases its own evictions over max_k + 1 pages; \
                 per-part OPT faults once per max_k requests."
                    .into(),
            ],
        }
    }
}
