//! The experiment registry: one module per claim of the paper (E01–E15),
//! plus extension experiments (X01–X06) exploring questions the paper
//! raises but does not settle.
//!
//! The paper is theoretical — it has no tables or figures — so each
//! "experiment" empirically regenerates one *stated bound*: the measured
//! ratio (or equality, or feasibility) is compared against the claim,
//! sweeping the parameter the bound depends on.

use crate::report::Report;

pub mod e01_lemma1_lower;
pub mod e02_lemma1_upper;
pub mod e03_lemma2_static_partition;
pub mod e04_thm1_shared_beats_partition;
pub mod e05_thm1_shared_upper;
pub mod e06_thm1_staged_dynamic;
pub mod e07_lemma3_equivalence;
pub mod e08_lemma4_lru_ratio;
pub mod e09_fitf_not_optimal;
pub mod e10_thm2_np_reduction;
pub mod e11_thm3_max_pif;
pub mod e12_thm6_ftf_scaling;
pub mod e13_thm7_pif_scaling;
pub mod e14_thm4_honesty;
pub mod e15_thm5_fitf_class;
pub mod x01_objectives_diverge;
pub mod x02_randomized_marking;
pub mod x03_fairness_profile;
pub mod x04_scheduling_power;
pub mod x05_capacity_drop;
pub mod x06_joint_assignment;

/// How big to run: `Quick` for CI/tests (seconds), `Full` for the
/// recorded EXPERIMENTS.md numbers (minutes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps, seconds per experiment.
    Quick,
    /// The sweeps recorded in EXPERIMENTS.md.
    Full,
}

/// A runnable reproduction of one paper claim.
pub trait Experiment: Sync + Send {
    /// Stable id, e.g. `"E08"`.
    fn id(&self) -> &'static str;
    /// Short human title.
    fn title(&self) -> &'static str;
    /// The paper claim being reproduced.
    fn claim(&self) -> &'static str;
    /// Run and report.
    fn run(&self, scale: Scale) -> Report;
}

/// All experiments, in id order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(e01_lemma1_lower::E01),
        Box::new(e02_lemma1_upper::E02),
        Box::new(e03_lemma2_static_partition::E03),
        Box::new(e04_thm1_shared_beats_partition::E04),
        Box::new(e05_thm1_shared_upper::E05),
        Box::new(e06_thm1_staged_dynamic::E06),
        Box::new(e07_lemma3_equivalence::E07),
        Box::new(e08_lemma4_lru_ratio::E08),
        Box::new(e09_fitf_not_optimal::E09),
        Box::new(e10_thm2_np_reduction::E10),
        Box::new(e11_thm3_max_pif::E11),
        Box::new(e12_thm6_ftf_scaling::E12),
        Box::new(e13_thm7_pif_scaling::E13),
        Box::new(e14_thm4_honesty::E14),
        Box::new(e15_thm5_fitf_class::E15),
        Box::new(x01_objectives_diverge::X01),
        Box::new(x02_randomized_marking::X02),
        Box::new(x03_fairness_profile::X03),
        Box::new(x04_scheduling_power::X04),
        Box::new(x05_capacity_drop::X05),
        Box::new(x06_joint_assignment::X06),
    ]
}

/// Ratio helper guarding division by zero.
pub(crate) fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den.max(1) as f64
}
