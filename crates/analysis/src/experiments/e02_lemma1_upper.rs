//! E02 — Lemma 1, upper bound: under any fixed static partition, LRU (a
//! marking/conservative policy) is at most `max_j k_j` worse than
//! per-part OPT, on every workload.
//!
//! This experiment runs on the `mcp-batch` engine by default: all
//! `(config × seed × strategy × τ)` cells go through one
//! [`mcp_batch::run_cells`] grid. The per-run path (a fresh `Simulator`
//! per cell, exactly the pre-batch code) is kept behind [`E02Engine`] so
//! the parity test can assert the JSON report is byte-equal between the
//! two at every `--jobs` level.

use super::{ratio, Experiment, Scale};
use crate::grid::grid2;
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_batch::CellSpec;
use mcp_core::{simulate, SimConfig, Workload};
use mcp_policies::{static_partition_lru, Partition};
use mcp_workloads::{phased, uniform, zipf};

/// See module docs.
pub struct E02;

/// Which execution engine [`E02::run_with`] uses. The report is
/// byte-identical either way (asserted by `tests/e02_batch_parity.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum E02Engine {
    /// One fresh `Simulator` per cell (the pre-batch code path).
    PerRun,
    /// The `mcp-batch` structure-of-arrays grid.
    Batch,
}

const TAUS: [u64; 2] = [0, 2];
const STRATEGIES: [&str; 2] = ["partition", "partition-opt"];

fn configs() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("uniform", 2, 4),
        ("uniform", 3, 6),
        ("zipf(0.9)", 2, 6),
        ("phased", 3, 9),
    ]
}

fn generate(kind: &str, p: usize, k: usize, n: usize, seed: u64) -> Workload {
    match kind {
        "uniform" => uniform(p, n, (k * 2) as u32, seed),
        "zipf(0.9)" => zipf(p, n, (k * 3) as u32, 0.9, seed),
        _ => phased(p, n, k as u32, n / 8, seed),
    }
}

impl E02 {
    /// Run under an explicit engine (the trait's [`Experiment::run`] uses
    /// [`E02Engine::Batch`]).
    pub fn run_with(scale: Scale, engine: E02Engine) -> Report {
        let seeds: Vec<u64> = match scale {
            Scale::Quick => (0..5).collect(),
            Scale::Full => (0..25).collect(),
        };
        let n = match scale {
            Scale::Quick => 400,
            Scale::Full => 2_000,
        };
        let mut table = Table::new(
            "worst observed sP^B_LRU / sP^B_OPT across random workloads",
            &["workload", "p", "K", "max_k", "worst ratio", "bound met"],
        );
        let mut all_ok = true;
        for (kind, p, k) in configs() {
            let sizes = Partition::equal(k, p);
            let max_k = sizes.max_part();
            let per_seed = match engine {
                E02Engine::PerRun => per_run_worst(kind, p, k, n, &seeds, &sizes),
                E02Engine::Batch => batch_worst(kind, p, k, n, &seeds),
            };
            let worst = per_seed.into_iter().fold(0.0f64, f64::max);
            let ok = worst <= max_k as f64 + 1e-9;
            all_ok &= ok;
            table.row(vec![
                kind.into(),
                p.to_string(),
                k.to_string(),
                max_k.to_string(),
                fmt(worst),
                ok.to_string(),
            ]);
        }
        Report {
            id: "E02".into(),
            title: E02.title().into(),
            claim: E02.claim().into(),
            tables: vec![table],
            verdict: if all_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a ratio exceeded max_k".into())
            },
            notes: vec![
                "Realistic traffic sits far below the worst case: the bound binds only on \
                 adversarial eviction-chasing sequences (see E01)."
                    .into(),
            ],
        }
    }
}

/// The pre-batch path: per-seed workloads and fresh simulators, one cell
/// at a time inside the seed-level `par_map`.
fn per_run_worst(
    kind: &str,
    p: usize,
    k: usize,
    n: usize,
    seeds: &[u64],
    sizes: &Partition,
) -> Vec<f64> {
    mcp_exec::Pool::global().par_map(seeds, |_, &seed| {
        let w = generate(kind, p, k, n, seed);
        let mut worst: f64 = 0.0;
        for tau in TAUS {
            let cfg = SimConfig::new(k, tau);
            let lru = simulate(&w, cfg, static_partition_lru(sizes.clone()))
                .unwrap()
                .total_faults();
            let opt = simulate(
                &w,
                cfg,
                mcp_policies::static_partition_belady(sizes.clone()),
            )
            .unwrap()
            .total_faults();
            worst = worst.max(ratio(lru, opt));
        }
        worst
    })
}

/// The batch path: materialize each seed's workload once, enumerate the
/// `(seed × strategy × τ)` grid, and run it through `mcp_batch`.
/// `build_family("partition"/"partition-opt")` constructs exactly the
/// `Partition::equal(k, p)` strategies the per-run path builds.
fn batch_worst(kind: &str, p: usize, k: usize, n: usize, seeds: &[u64]) -> Vec<f64> {
    let workloads: Vec<Workload> =
        mcp_exec::Pool::global().par_map(seeds, |_, &seed| generate(kind, p, k, n, seed));
    let cells: Vec<CellSpec> = grid2(&(0..seeds.len()).collect::<Vec<_>>(), &STRATEGIES)
        .into_iter()
        .flat_map(|(wi, family)| {
            TAUS.map(|tau| CellSpec {
                workload: wi,
                family: family.to_string(),
                cache_size: k,
                tau,
                seed: 0, // both families are deterministic
                capacity: None,
            })
        })
        .collect();
    let results = mcp_batch::run_cells(&workloads, &cells);
    // Cell layout: per seed, [lru τ0, lru τ2, opt τ0, opt τ2]. Fold each
    // seed's worst in the per-run path's τ order.
    let stride = STRATEGIES.len() * TAUS.len();
    (0..seeds.len())
        .map(|si| {
            let base = si * stride;
            let faults = |i: usize| {
                results[base + i]
                    .as_ref()
                    .expect("cells valid")
                    .total_faults()
            };
            let mut worst: f64 = 0.0;
            for (ti, _) in TAUS.iter().enumerate() {
                worst = worst.max(ratio(faults(ti), faults(TAUS.len() + ti)));
            }
            worst
        })
        .collect()
}

impl Experiment for E02 {
    fn id(&self) -> &'static str {
        "E02"
    }
    fn title(&self) -> &'static str {
        "Static-partition LRU within max_k of per-part OPT (Lemma 1 upper bound)"
    }
    fn claim(&self) -> &'static str {
        "For every R and fixed static partition B, sP^B_LRU / sP^B_OPT <= max_j k_j"
    }

    fn run(&self, scale: Scale) -> Report {
        E02::run_with(scale, E02Engine::Batch)
    }
}
