//! E02 — Lemma 1, upper bound: under any fixed static partition, LRU (a
//! marking/conservative policy) is at most `max_j k_j` worse than
//! per-part OPT, on every workload.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_policies::{static_partition_belady, static_partition_lru, Partition};
use mcp_workloads::{phased, uniform, zipf};

/// See module docs.
pub struct E02;

impl Experiment for E02 {
    fn id(&self) -> &'static str {
        "E02"
    }
    fn title(&self) -> &'static str {
        "Static-partition LRU within max_k of per-part OPT (Lemma 1 upper bound)"
    }
    fn claim(&self) -> &'static str {
        "For every R and fixed static partition B, sP^B_LRU / sP^B_OPT <= max_j k_j"
    }

    fn run(&self, scale: Scale) -> Report {
        let seeds: Vec<u64> = match scale {
            Scale::Quick => (0..5).collect(),
            Scale::Full => (0..25).collect(),
        };
        let mut table = Table::new(
            "worst observed sP^B_LRU / sP^B_OPT across random workloads",
            &["workload", "p", "K", "max_k", "worst ratio", "bound met"],
        );
        let mut all_ok = true;
        let configs: Vec<(&str, usize, usize)> = vec![
            ("uniform", 2, 4),
            ("uniform", 3, 6),
            ("zipf(0.9)", 2, 6),
            ("phased", 3, 9),
        ];
        for (kind, p, k) in configs {
            let sizes = Partition::equal(k, p);
            let max_k = sizes.max_part();
            let per_seed = mcp_exec::Pool::global().par_map(&seeds, |_, &seed| {
                let n = match scale {
                    Scale::Quick => 400,
                    Scale::Full => 2_000,
                };
                let w = match kind {
                    "uniform" => uniform(p, n, (k * 2) as u32, seed),
                    "zipf(0.9)" => zipf(p, n, (k * 3) as u32, 0.9, seed),
                    _ => phased(p, n, k as u32, n / 8, seed),
                };
                let mut worst: f64 = 0.0;
                for tau in [0u64, 2] {
                    let cfg = SimConfig::new(k, tau);
                    let lru = simulate(&w, cfg, static_partition_lru(sizes.clone()))
                        .unwrap()
                        .total_faults();
                    let opt = simulate(&w, cfg, static_partition_belady(sizes.clone()))
                        .unwrap()
                        .total_faults();
                    worst = worst.max(ratio(lru, opt));
                }
                worst
            });
            let worst = per_seed.into_iter().fold(0.0f64, f64::max);
            let ok = worst <= max_k as f64 + 1e-9;
            all_ok &= ok;
            table.row(vec![
                kind.into(),
                p.to_string(),
                k.to_string(),
                max_k.to_string(),
                fmt(worst),
                ok.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a ratio exceeded max_k".into())
            },
            notes: vec![
                "Realistic traffic sits far below the worst case: the bound binds only on \
                 adversarial eviction-chasing sequences (see E01)."
                    .into(),
            ],
        }
    }
}
