//! E06 — Theorem 1.3: dynamic partitions that change only `O(1)` (or
//! `o(n)`) times lose `Ω(n)` (resp. `ω(1)`) against shared LRU on the
//! rotating distinct-period sequence.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, grows_linearly};
use mcp_core::{simulate, SimConfig, Time};
use mcp_policies::{shared_lru, Lru, Partition, StagedPartition};
use mcp_workloads::thm1_rotating;

/// See module docs.
pub struct E06;

fn staged(
    stages: usize,
    horizon: Time,
    k: usize,
    p: usize,
    alternate: bool,
) -> StagedPartition<Lru> {
    let step = (horizon / stages as u64).max(1);
    let plan: Vec<(Time, Partition)> = (0..stages)
        .map(|s| {
            let start = 1 + s as u64 * step;
            let part = if alternate && s % 2 == 1 && k / 2 >= 2 {
                let mut sizes = Partition::equal(k, p).sizes().to_vec();
                sizes[0] += 1;
                sizes[1] -= 1;
                Partition::from_sizes(sizes)
            } else {
                Partition::equal(k, p)
            };
            (start, part)
        })
        .collect();
    StagedPartition::uniform(plan, Lru::new)
}

impl Experiment for E06 {
    fn id(&self) -> &'static str {
        "E06"
    }
    fn title(&self) -> &'static str {
        "Rarely-changing dynamic partitions lose to shared LRU (Theorem 1.3)"
    }
    fn claim(&self) -> &'static str {
        "Any dynamic partition with o(n) changes has dP^D_A / S_LRU = omega(1); \
         with O(1) stages, Omega(n)"
    }

    fn run(&self, scale: Scale) -> Report {
        let (p, k, tau) = (2usize, 4usize, 1u64);
        let xs: Vec<usize> = match scale {
            Scale::Quick => vec![2, 4, 8, 16],
            Scale::Full => vec![4, 16, 64, 256],
        };
        let mut tables = Vec::new();
        let mut verdict_ok = true;
        for (label, stages, alternate) in [
            ("1 stage (static)", 1usize, false),
            ("4 stages, alternating", 4usize, true),
        ] {
            let mut table = Table::new(
                format!("dP[{label}]_LRU vs S_LRU on the rotating sequence (p=2, K=4, tau=1)"),
                &["x", "n", "dP faults", "S_LRU faults", "ratio"],
            );
            let mut points = Vec::new();
            let rows = mcp_exec::Pool::global().par_map(&xs, |_, &x| {
                let w = thm1_rotating(p, k, tau, x);
                let n = w.total_len();
                let cfg = SimConfig::new(k, tau);
                // Horizon upper bound: every request costing tau+1.
                let horizon = (n as u64) * (tau + 1);
                let dp = simulate(&w, cfg, staged(stages, horizon, k, p, alternate))
                    .unwrap()
                    .total_faults();
                let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
                (n, dp, lru)
            });
            for (&x, &(n, dp, lru)) in xs.iter().zip(&rows) {
                let r = ratio(dp, lru);
                points.push((n as f64, r));
                table.row(vec![
                    x.to_string(),
                    n.to_string(),
                    dp.to_string(),
                    lru.to_string(),
                    fmt(r),
                ]);
            }
            verdict_ok &= grows_linearly(&points);
            tables.push(table);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables,
            verdict: if verdict_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("some staged ratio did not grow linearly".into())
            },
            notes: vec![
                "Each stage's partition caps some core at K/p cells while its distinct \
                 period cycles K/p + 1 pages; only a partition that changes on the \
                 rotation's own cadence could keep up."
                    .into(),
            ],
        }
    }
}
