//! X06 (extension) — is the paper's fixed jobs-to-cores assignment free?
//! Hassidim's model optimizes the assignment *jointly* with the cache
//! partition; the SPAA'11 model takes the assignment as given. We compare
//! round-robin (the fixed-assignment baseline) against the greedy joint
//! optimizer on job mixes with page sharing, with the exhaustive joint
//! optimum as ground truth at tiny scale. The gap comes from co-locating
//! jobs that share pages — a sequential core reuses one quota over time,
//! so splitting sharers across cores duplicates their working set.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::Workload;
use mcp_offline::{evaluate_assignment, joint_exhaustive, joint_greedy, PartPolicy};

/// See module docs.
pub struct X06;

/// Cap on `cores^jobs` below which the exhaustive joint search runs.
const EXHAUSTIVE_CAP: usize = 5_000;

/// A job cycling `wss` pages starting at `base`, `n` requests long.
fn job(base: u32, wss: u32, n: usize) -> Vec<u32> {
    (0..n).map(|i| base + i as u32 % wss).collect()
}

/// Job mixes: `(name, jobs, cores, K)`. Jobs are encoded as a `Workload`
/// whose "cores" are the job pool, not machine cores.
fn cases(scale: Scale) -> Vec<(&'static str, Workload, usize, usize)> {
    let mut c = vec![
        // Two pairs of identical (page-sharing) jobs. Round-robin splits
        // both pairs across the cores; the joint optimizer co-locates.
        (
            "two sharing pairs",
            Workload::from_u32(vec![
                job(0, 3, 24),
                job(0, 3, 24),
                job(10, 3, 24),
                job(10, 3, 24),
            ])
            .unwrap(),
            2,
            6,
        ),
        // Three sharing pairs, listed pair-adjacent so `j mod 3` places
        // every pair on two different cores.
        (
            "three sharing pairs",
            Workload::from_u32(vec![
                job(0, 2, 16),
                job(0, 2, 16),
                job(10, 2, 16),
                job(10, 2, 16),
                job(20, 2, 16),
                job(20, 2, 16),
            ])
            .unwrap(),
            3,
            6,
        ),
        // Disjoint jobs with mixed demand: assignment is (nearly) free,
        // the joint search should find no improvement worth reporting.
        (
            "disjoint mixed demand",
            Workload::from_u32(vec![job(0, 4, 24), job(10, 1, 24), job(20, 2, 24)]).unwrap(),
            2,
            7,
        ),
    ];
    if scale == Scale::Full {
        c.push((
            "sharing triples",
            Workload::from_u32(vec![
                job(0, 3, 30),
                job(0, 3, 30),
                job(0, 3, 30),
                job(40, 3, 30),
                job(40, 3, 30),
                job(40, 3, 30),
            ])
            .unwrap(),
            2,
            6,
        ));
    }
    c
}

/// The fixed-assignment baseline: job `j` on core `j mod cores`.
fn round_robin(q: usize, cores: usize) -> Vec<usize> {
    (0..q).map(|j| j % cores).collect()
}

impl Experiment for X06 {
    fn id(&self) -> &'static str {
        "X06"
    }
    fn title(&self) -> &'static str {
        "Extension: joint assignment + partition vs a fixed assignment"
    }
    fn claim(&self) -> &'static str {
        "(Extension) Jointly optimizing the jobs-to-cores assignment with the cache \
         partition strictly beats round-robin when jobs share pages, and the greedy \
         joint optimizer matches the exhaustive joint optimum at tiny scale"
    }

    fn run(&self, scale: Scale) -> Report {
        let cases = cases(scale);
        let mut table = Table::new(
            "predicted faults: round-robin assignment vs greedy and exhaustive joint search",
            &[
                "instance",
                "jobs",
                "cores",
                "K",
                "round-robin",
                "greedy joint",
                "exhaustive",
                "RR/greedy",
                "greedy=exhaustive",
            ],
        );

        let rows = mcp_exec::Pool::global().par_map(&cases, |_, (_, jobs, cores, k)| {
            let rr = evaluate_assignment(
                jobs,
                &round_robin(jobs.num_cores(), *cores),
                *cores,
                *k,
                PartPolicy::Opt,
            );
            let greedy = joint_greedy(jobs, *cores, *k, PartPolicy::Opt);
            let exact = joint_exhaustive(jobs, *cores, *k, PartPolicy::Opt, EXHAUSTIVE_CAP);
            (rr.faults, greedy.faults, exact.map(|s| s.faults))
        });

        let mut sound = true;
        let mut saw_gap = false;
        let mut exact_checked = 0usize;
        let mut all_matched = true;
        for ((name, jobs, cores, k), (rr, greedy, exact)) in cases.iter().zip(&rows) {
            sound &= greedy <= rr;
            saw_gap |= greedy < rr;
            let matches = match exact {
                Some(opt) => {
                    exact_checked += 1;
                    // Greedy can only over-shoot the exhaustive optimum; a
                    // value below it would mean a broken evaluator.
                    sound &= *greedy >= *opt;
                    all_matched &= *greedy == *opt;
                    (*greedy == *opt).to_string()
                }
                None => "-".into(),
            };
            table.row(vec![
                (*name).into(),
                jobs.num_cores().to_string(),
                cores.to_string(),
                k.to_string(),
                rr.to_string(),
                greedy.to_string(),
                exact.map_or_else(|| "-".into(), |f| f.to_string()),
                fmt(ratio(*rr, *greedy)),
                matches,
            ]);
        }

        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if sound && saw_gap && exact_checked > 0 && all_matched {
                Verdict::Confirmed
            } else if sound && saw_gap {
                Verdict::Mixed("greedy beat round-robin but missed the exhaustive optimum".into())
            } else if sound {
                Verdict::Mixed("joint search never beat round-robin on these mixes".into())
            } else {
                Verdict::Mixed(
                    "greedy exceeded round-robin or fell below the exhaustive optimum".into(),
                )
            },
            notes: vec![
                "Faults are the per-part curve-DP prediction (exact for disjoint jobs, a \
                 sharing-blind upper bound otherwise); co-locating sharers makes the \
                 prediction exact again because each core's concatenated sequence then \
                 owns its pages."
                    .into(),
                "Splitting a heavy job's pair across cores is NOT the win: a sequential \
                 core reuses one cache quota over time, so stacking heavy jobs is free. \
                 The gap is entirely page sharing — the axis the SPAA'11 fixed-assignment \
                 model cannot exploit."
                    .into(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_confirms_with_exhaustive_cross_check() {
        let report = X06.run(Scale::Quick);
        assert_eq!(report.verdict, Verdict::Confirmed, "{report:?}");
        // Every Quick row is tiny enough for the exhaustive search.
        for row in &report.tables[0].rows {
            assert_ne!(row[6], "-", "{row:?}");
            assert_eq!(row[8], "true", "{row:?}");
        }
    }

    #[test]
    fn round_robin_is_what_the_baseline_claims() {
        assert_eq!(round_robin(5, 2), vec![0, 1, 0, 1, 0]);
    }
}
