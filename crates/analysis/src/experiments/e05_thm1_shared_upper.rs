//! E05 — Theorem 1.2: `S_LRU ≤ K · sP^OPT_OPT` for every workload — the
//! matching upper bound for E04, checked over synthetic traffic.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_offline::{optimal_static_partition, PartPolicy};
use mcp_policies::shared_lru;
use mcp_workloads::{lemma4_cyclic, phased, uniform, zipf};

/// See module docs.
pub struct E05;

impl Experiment for E05 {
    fn id(&self) -> &'static str {
        "E05"
    }
    fn title(&self) -> &'static str {
        "Shared LRU within K of the best static partition (Theorem 1.2)"
    }
    fn claim(&self) -> &'static str {
        "For all R, S_LRU / sP^OPT_OPT <= K"
    }

    fn run(&self, scale: Scale) -> Report {
        let seeds: Vec<u64> = match scale {
            Scale::Quick => (0..4).collect(),
            Scale::Full => (0..20).collect(),
        };
        let n = match scale {
            Scale::Quick => 400,
            Scale::Full => 3_000,
        };
        let mut table = Table::new(
            "worst observed S_LRU / sP^OPT_OPT",
            &["workload", "p", "K", "tau", "worst ratio", "K", "bound met"],
        );
        let mut all_ok = true;
        let cases: Vec<(&str, usize, usize, u64)> = vec![
            ("uniform", 2, 4, 0),
            ("uniform", 3, 6, 2),
            ("zipf(1.0)", 2, 6, 1),
            ("phased", 3, 6, 0),
            ("lemma4-cycles", 2, 4, 3),
        ];
        for (kind, p, k, tau) in cases {
            let per_seed = mcp_exec::Pool::global().par_map(&seeds, |_, &seed| {
                let w = match kind {
                    "uniform" => uniform(p, n, (2 * k) as u32, seed),
                    "zipf(1.0)" => zipf(p, n, (3 * k) as u32, 1.0, seed),
                    "phased" => phased(p, n, k as u32, n / 10, seed),
                    _ => lemma4_cyclic(p, k, n),
                };
                let cfg = SimConfig::new(k, tau);
                let lru = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
                let part = optimal_static_partition(&w, k, PartPolicy::Opt);
                ratio(lru, part.faults)
            });
            let worst = per_seed.into_iter().fold(0.0f64, f64::max);
            let ok = worst <= k as f64 + 1e-9;
            all_ok &= ok;
            table.row(vec![
                kind.into(),
                p.to_string(),
                k.to_string(),
                tau.to_string(),
                fmt(worst),
                k.to_string(),
                ok.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a ratio exceeded K".into())
            },
            notes: vec![
                "The shared-phase argument: a shared phase of S_LRU cannot end before some \
                 per-core phase ends, so S_LRU <= K * Σ_j φ_j <= K * sP^OPT_OPT."
                    .into(),
            ],
        }
    }
}
