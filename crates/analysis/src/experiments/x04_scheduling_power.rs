//! X04 (extension) — the model gap the paper's introduction turns on:
//! Hassidim's offline algorithm may *delay sequences arbitrarily*; this
//! paper's may not. On small instances we compute exhaustive optima in
//! both models and measure exactly what the scheduling freedom is worth —
//! on aligned-thrash workloads it cuts faults by up to 2× (time-slicing
//! the cache), which is precisely why the paper argues the conservative
//! model needs its own theory.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{SimConfig, Workload};
use mcp_offline::{brute_force_min_faults, sched_min, Objective};

/// See module docs.
pub struct X04;

impl Experiment for X04 {
    fn id(&self) -> &'static str {
        "X04"
    }
    fn title(&self) -> &'static str {
        "Extension: what Hassidim's scheduling freedom is worth"
    }
    fn claim(&self) -> &'static str {
        "(Extension) Allowing the offline algorithm to stall sequences strictly \
         reduces the optimal fault count on aligned contended workloads"
    }

    fn run(&self, scale: Scale) -> Report {
        let nodes = 120_000_000usize;
        let mut table = Table::new(
            "exhaustive fault optima: no-scheduling model vs scheduling-capable model",
            &[
                "instance",
                "K",
                "tau",
                "OPT (no sched)",
                "OPT (sched)",
                "gap",
                "sched helps",
            ],
        );
        let cases: Vec<(&str, Vec<Vec<u32>>, usize, u64)> = {
            let mut c = vec![
                // Aligned thrash: both cores need 2 pages, K = 2 holds 2.
                (
                    "aligned pairs",
                    vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
                    2,
                    1,
                ),
                // Already-fitting working sets: scheduling has nothing to add.
                ("fits", vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]], 4, 1),
                ("single hot", vec![vec![1, 1, 1, 1], vec![7, 8, 7, 8]], 3, 1),
            ];
            if scale == Scale::Full {
                c.push((
                    "aligned pairs tau2",
                    vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
                    2,
                    2,
                ));
                c.push((
                    "aligned triples",
                    vec![vec![1, 2, 1, 2, 1], vec![7, 8, 7, 8, 7]],
                    2,
                    1,
                ));
            }
            c
        };
        let mut saw_gap = false;
        let mut sound = true;
        let optima = mcp_exec::Pool::global().par_map(&cases, |_, (_, seqs, k, tau)| {
            let w = Workload::from_u32(seqs.clone()).unwrap();
            let cfg = SimConfig::new(*k, *tau);
            let plain = brute_force_min_faults(&w, cfg, nodes).unwrap();
            let horizon = (w.total_len() as u64 + 4) * (tau + 1) + 10;
            let sched = sched_min(&w, cfg, Objective::Faults, horizon, Some(plain), nodes).unwrap();
            (plain, sched)
        });
        for ((name, _, k, tau), &(plain, sched)) in cases.iter().zip(&optima) {
            sound &= sched <= plain;
            let helps = sched < plain;
            saw_gap |= helps;
            table.row(vec![
                (*name).into(),
                k.to_string(),
                tau.to_string(),
                plain.to_string(),
                sched.to_string(),
                fmt(ratio(plain, sched)),
                helps.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if sound && saw_gap {
                Verdict::Confirmed
            } else if sound {
                Verdict::Mixed("scheduling never helped on these instances".into())
            } else {
                Verdict::Mixed("scheduling-capable optimum exceeded the plain optimum".into())
            },
            notes: vec![
                "With stalling, the offline algorithm time-slices the cache: one core runs \
                 alone with its whole working set, then the other — impossible in the \
                 paper's model, where aligned demand forces universal thrashing. This is \
                 the exact power Hassidim's offline comparator wields against LRU."
                    .into(),
            ],
        }
    }
}
