//! E07 — Lemma 3: the LRU-mimicking dynamic partition serves every
//! disjoint workload *exactly* like shared LRU (same faults at the same
//! times).

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_core::{simulate, SimConfig};
use mcp_policies::{shared_lru, LruMimicPartition};
use mcp_workloads::random_disjoint;

/// See module docs.
pub struct E07;

impl Experiment for E07 {
    fn id(&self) -> &'static str {
        "E07"
    }
    fn title(&self) -> &'static str {
        "A dynamic partition exactly equals shared LRU on disjoint workloads (Lemma 3)"
    }
    fn claim(&self) -> &'static str {
        "There is a dynamic partition D with dP^D_LRU(R) = S_LRU(R) for all disjoint R"
    }

    fn run(&self, scale: Scale) -> Report {
        let seeds: u64 = match scale {
            Scale::Quick => 60,
            Scale::Full => 400,
        };
        let mut table = Table::new(
            "exact equality of fault sequences, random disjoint workloads",
            &[
                "tau",
                "K rule",
                "cases",
                "equal fault counts",
                "equal fault times",
            ],
        );
        let mut all_equal = true;
        type KRule = fn(usize) -> usize;
        let k_rules: [(&str, KRule); 2] = [("K = p", |p| p), ("K = 2p + 1", |p| 2 * p + 1)];
        let seed_ids: Vec<u64> = (0..seeds).collect();
        for (tau, (k_rule, k_of)) in crate::grid::grid2(&[0u64, 1, 3], &k_rules) {
            let outcomes = mcp_exec::Pool::global().par_map(&seed_ids, |_, &seed| {
                let w = random_disjoint(seed * 7 + tau, 4, 40, 6);
                let k = k_of(w.num_cores());
                let cfg = SimConfig::new(k, tau);
                let shared = simulate(&w, cfg, shared_lru()).unwrap();
                let mimic = simulate(&w, cfg, LruMimicPartition::new()).unwrap();
                (
                    shared.faults == mimic.faults,
                    shared.fault_times == mimic.fault_times,
                )
            });
            let cases = outcomes.len() as u64;
            let eq_counts = outcomes.iter().filter(|(c, _)| *c).count() as u64;
            let eq_times = outcomes.iter().filter(|(_, t)| *t).count() as u64;
            all_equal &= cases == eq_counts && cases == eq_times;
            table.row(vec![
                tau.to_string(),
                k_rule.into(),
                cases.to_string(),
                eq_counts.to_string(),
                eq_times.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_equal {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a case diverged from S_LRU".into())
            },
            notes: vec![
                "The mimic reassigns one cell per fault — from the core owning the globally \
                 least-recently-used page to the faulting core — so the partition is pure \
                 bookkeeping over S_LRU's decisions."
                    .into(),
            ],
        }
    }
}
