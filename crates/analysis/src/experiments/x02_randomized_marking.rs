//! X02 (extension) — randomization against the Lemma 1 adversary: the
//! eviction-chasing sequence that forces *every deterministic* policy to
//! fault on each request (E01) only degrades a randomized marking policy
//! to `O(log k)` of OPT, the classic sequential separation, here observed
//! inside the multicore engine's partitioned setting.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_policies::{
    static_partition_belady, static_partition_lru, Marking, MarkingTie, Partition, StaticPartition,
};
use mcp_workloads::lemma1_lower;

/// See module docs.
pub struct X02;

fn harmonic(k: usize) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

impl Experiment for X02 {
    fn id(&self) -> &'static str {
        "X02"
    }
    fn title(&self) -> &'static str {
        "Extension: randomized marking evades the deterministic adversary"
    }
    fn claim(&self) -> &'static str {
        "(Extension) On Lemma 1's adversary, randomized MARK stays near the \
         sequential 2·H_k bound while deterministic LRU pays the full max_k"
    }

    fn run(&self, scale: Scale) -> Report {
        let (ks, n_per_core, trials) = match scale {
            Scale::Quick => (vec![4usize, 8], 3_000usize, 3u64),
            Scale::Full => (vec![4usize, 8, 16], 20_000usize, 10u64),
        };
        let mut table = Table::new(
            "deterministic vs randomized eviction on the eviction-chasing adversary (p=2, B=[K-1,1])",
            &["K", "max_k", "LRU ratio", "MARK(rand) ratio (mean)", "2·H_k", "rand << det"],
        );
        let mut all_separated = true;
        let per_k = mcp_exec::Pool::global().par_map(&ks, |_, &k| {
            let sizes = vec![k - 1, 1];
            let w = lemma1_lower(&sizes, n_per_core);
            let cfg = SimConfig::new(k, 0);
            let part = Partition::from_sizes(sizes.clone());
            let opt = simulate(&w, cfg, static_partition_belady(part.clone()))
                .unwrap()
                .total_faults();
            let lru = simulate(&w, cfg, static_partition_lru(part.clone()))
                .unwrap()
                .total_faults();
            let mut rand_ratios = Vec::new();
            for seed in 0..trials {
                let strat = StaticPartition::uniform(part.clone(), move || {
                    Marking::new(MarkingTie::Random(seed))
                });
                let faults = simulate(&w, cfg, strat).unwrap().total_faults();
                rand_ratios.push(ratio(faults, opt));
            }
            (ratio(lru, opt), crate::stats::mean(&rand_ratios))
        });
        for (&k, &(lru_ratio, rand_mean)) in ks.iter().zip(&per_k) {
            let max_k = k - 1;
            let bound = 2.0 * harmonic(max_k);
            // The deterministic adversary is tuned for LRU; randomized
            // marking must beat it decisively (strictly below half the
            // deterministic ratio once k is nontrivial).
            let separated = rand_mean < lru_ratio / 2.0 || max_k <= 3;
            all_separated &= separated;
            table.row(vec![
                k.to_string(),
                max_k.to_string(),
                fmt(lru_ratio),
                fmt(rand_mean),
                fmt(bound),
                separated.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_separated {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("randomized marking did not separate from LRU".into())
            },
            notes: vec![
                "The adversary requests the page a *deterministic* policy just evicted; \
                 against randomized MARK each request hits with probability 1 - 1/k-ish, \
                 reproducing the classical determinism-vs-randomization gap inside the \
                 multicore engine."
                    .into(),
            ],
        }
    }
}
