//! X03 (extension) — the fairness lens the paper's conclusion proposes:
//! "perhaps other measures such as fairness or relative progress of
//! sequences should be considered over minimizing faults globally."
//!
//! On the Lemma 4 workload the fault-frugal offline strategy is *maximally
//! unfair* — it starves one core to near-stall — while thrash-everything
//! LRU is perfectly fair. This quantifies the tension: total faults and
//! fairness (Jain index over per-core slowdowns) pull strategies in
//! opposite directions on contended workloads.

use super::{Experiment, Scale};
use crate::fairness;
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_policies::{shared_lru, static_partition_lru, Partition, SacrificeOffline, SharedFitf};
use mcp_workloads::lemma4_cyclic;

/// See module docs.
pub struct X03;

impl Experiment for X03 {
    fn id(&self) -> &'static str {
        "X03"
    }
    fn title(&self) -> &'static str {
        "Extension: total faults and fairness pull in opposite directions"
    }
    fn claim(&self) -> &'static str {
        "(Extension) On contended workloads the fault-minimizing strategy is the \
         least fair and the fairest strategy faults the most"
    }

    fn run(&self, scale: Scale) -> Report {
        let (p, k, tau) = (4usize, 16usize, 3u64);
        let n = match scale {
            Scale::Quick => 2_000usize,
            Scale::Full => 20_000usize,
        };
        let w = lemma4_cyclic(p, k, n);
        let cfg = SimConfig::new(k, tau);

        let mut table = Table::new(
            format!("fault count vs fairness on per-core cycles (p={p}, K={k}, tau={tau})"),
            &[
                "strategy",
                "faults",
                "Jain(slowdown)",
                "slowdown spread",
                "min progress@mid",
            ],
        );
        let mut measured: Vec<(String, u64, f64)> = Vec::new();
        let names = ["S_LRU", "sP[equal]_LRU", "S_FITF", "S_OFF (sacrifice)"];
        let strategy_ids: Vec<usize> = (0..names.len()).collect();
        let results = mcp_exec::Pool::global().par_map(&strategy_ids, |_, &i| match i {
            0 => simulate(&w, cfg, shared_lru()).unwrap(),
            1 => simulate(&w, cfg, static_partition_lru(Partition::equal(k, p))).unwrap(),
            2 => simulate(&w, cfg, SharedFitf::new()).unwrap(),
            _ => simulate(&w, cfg, SacrificeOffline::new(p - 1)).unwrap(),
        });
        let runs: Vec<(&str, mcp_core::SimResult)> = names.iter().copied().zip(results).collect();
        for (name, r) in &runs {
            let s = fairness::summarize(r);
            let mid = r.makespan / 2;
            let min_progress = fairness::relative_progress(r, mid)
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            measured.push((name.to_string(), r.total_faults(), s.jain_slowdown));
            table.row(vec![
                name.to_string(),
                r.total_faults().to_string(),
                fmt(s.jain_slowdown),
                fmt(s.spread),
                fmt(min_progress),
            ]);
        }
        // The tension: the strategy with the fewest faults must have the
        // lowest Jain index, and the fairest must fault the most.
        let min_faults = measured.iter().min_by_key(|(_, f, _)| *f).unwrap();
        let max_faults = measured.iter().max_by_key(|(_, f, _)| *f).unwrap();
        let tension = min_faults.2 < max_faults.2;
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if tension {
                Verdict::Confirmed
            } else {
                Verdict::Mixed(format!(
                    "no tension: fewest-fault strategy {} is at least as fair as {}",
                    min_faults.0, max_faults.0
                ))
            },
            notes: vec![
                "The sacrificing strategy wins on faults by starving one core (its mid-run \
                 progress collapses); LRU loses on faults but degrades all cores equally — \
                 exactly the tradeoff the conclusion says a better evaluation framework \
                 must arbitrate."
                    .into(),
            ],
        }
    }
}
