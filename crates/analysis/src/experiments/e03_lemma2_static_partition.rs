//! E03 — Lemma 2: a *fixed* online static partition loses `Ω(n)` against
//! the offline-chosen static partition `sP^OPT_LRU`.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, grows_linearly};
use mcp_core::{simulate, SimConfig};
use mcp_offline::{optimal_static_partition, PartPolicy};
use mcp_policies::{static_partition_lru, Partition};
use mcp_workloads::lemma2;

/// See module docs.
pub struct E03;

impl Experiment for E03 {
    fn id(&self) -> &'static str {
        "E03"
    }
    fn title(&self) -> &'static str {
        "Online static partitions are not competitive (Lemma 2)"
    }
    fn claim(&self) -> &'static str {
        "For any online static partition B there is R with \
         sP^B_A / sP^OPT_LRU = Omega(n)"
    }

    fn run(&self, scale: Scale) -> Report {
        let ns: Vec<usize> = match scale {
            Scale::Quick => vec![300, 600, 1200, 2400],
            Scale::Full => vec![1_000, 4_000, 16_000, 64_000],
        };
        let sizes = vec![2usize, 2, 2];
        let k = 6;
        let mut table = Table::new(
            "sP^[2,2,2]_LRU vs sP^OPT_LRU on the Lemma 2 adversary (p = 3, K = 6, tau = 0)",
            &[
                "n/core",
                "sP^B faults",
                "sP^OPT faults",
                "opt partition",
                "ratio",
                "ratio/n",
            ],
        );
        let mut points = Vec::new();
        let rows = mcp_exec::Pool::global().par_map(&ns, |_, &n| {
            let w = lemma2(&sizes, n);
            let cfg = SimConfig::new(k, 0);
            let fixed = simulate(
                &w,
                cfg,
                static_partition_lru(Partition::from_sizes(sizes.clone())),
            )
            .unwrap()
            .total_faults();
            let opt = optimal_static_partition(&w, k, PartPolicy::Lru);
            (fixed, opt)
        });
        for (&n, (fixed, opt)) in ns.iter().zip(&rows) {
            let r = ratio(*fixed, opt.faults);
            points.push(((3 * n) as f64, r));
            table.row(vec![
                n.to_string(),
                fixed.to_string(),
                opt.faults.to_string(),
                opt.partition.to_string(),
                fmt(r),
                fmt(r / (3 * n) as f64),
            ]);
        }
        let linear = grows_linearly(&points);
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if linear {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("ratio did not grow linearly in n".into())
            },
            notes: vec![
                "The offline partition moves the idle core's spare cell to the thrashing core, \
                 whose cycle then fits; the fixed partition keeps thrashing forever."
                    .into(),
            ],
        }
    }
}
