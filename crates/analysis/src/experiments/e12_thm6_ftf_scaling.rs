//! E12 — Theorem 6: Algorithm 1 solves FINAL-TOTAL-FAULTS in
//! `O(n^{K+p}(τ+1)^p)` time — polynomial in the sequence length for fixed
//! `K`, `p`. The experiment measures state counts and wall time while
//! sweeping `n` (and `τ`), and fits the growth exponent: it must look
//! polynomial (bounded exponent), not exponential (exploding exponent).

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, growth_exponent};
use crate::timing::Stopwatch;
use mcp_core::{SimConfig, Workload};
use mcp_offline::{ftf_dp, FtfOptions};

/// See module docs.
pub struct E12;

/// Two cores alternating over two private pages each, length `n` per core
/// — a fixed-universe family whose DP cost isolates the `n` dependence.
fn family(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 2) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 2) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "E12"
    }
    fn title(&self) -> &'static str {
        "Algorithm 1 scales polynomially in n (Theorem 6)"
    }
    fn claim(&self) -> &'static str {
        "FTF is solvable in O(n^{K+p} (tau+1)^p) time for fixed K, p"
    }

    fn run(&self, scale: Scale) -> Report {
        let ns: Vec<usize> = match scale {
            Scale::Quick => vec![4, 8, 16, 32],
            Scale::Full => vec![4, 8, 16, 32, 64, 128],
        };
        let mut tables = Vec::new();
        let n_exponent;
        {
            let mut table = Table::new(
                "DP states and wall time vs n (p=2, K=2, w=4, tau=1)",
                &[
                    "n/core",
                    "opt faults",
                    "states (raw DP)",
                    "states (pruned)",
                    "time (ms)",
                    "states/s",
                ],
            );
            let mut points = Vec::new();
            let rows = mcp_exec::Pool::global().par_map(&ns, |_, &n| {
                let w = family(n);
                let cfg = SimConfig::new(2, 1);
                let sw = Stopwatch::start();
                let raw = ftf_dp(
                    &w,
                    cfg,
                    FtfOptions {
                        prune: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                let ms = sw.ms();
                let pruned = ftf_dp(&w, cfg, FtfOptions::default()).unwrap();
                assert_eq!(raw.min_faults, pruned.min_faults);
                (raw.min_faults, raw.states, pruned.states, ms)
            });
            for (&n, &(min_faults, raw_states, pruned_states, ms)) in ns.iter().zip(&rows) {
                // Fit the exponent on the *raw* DP — the object Theorem 6
                // bounds; pruning is our engineering ablation on top.
                points.push((n as f64, raw_states as f64));
                // 0 under --no-timing (stopwatches read 0), keeping the
                // JSON reports bit-comparable across runs.
                let rate = if ms > 0.0 {
                    raw_states as f64 / (ms / 1e3)
                } else {
                    0.0
                };
                table.row(vec![
                    n.to_string(),
                    min_faults.to_string(),
                    raw_states.to_string(),
                    pruned_states.to_string(),
                    fmt(ms),
                    fmt(rate),
                ]);
            }
            n_exponent = growth_exponent(&points);
            tables.push(table);
        }
        {
            let mut table = Table::new(
                "DP states vs tau (p=2, K=2, w=4, n=16)",
                &["tau", "states", "time (ms)"],
            );
            let taus = [0u64, 1, 2, 4, 8];
            let rows = mcp_exec::Pool::global().par_map(&taus, |_, &tau| {
                let w = family(16);
                let sw = Stopwatch::start();
                let r = ftf_dp(&w, SimConfig::new(2, tau), FtfOptions::default()).unwrap();
                (r.states, sw.ms())
            });
            for (&tau, &(states, ms)) in taus.iter().zip(&rows) {
                table.row(vec![tau.to_string(), states.to_string(), fmt(ms)]);
            }
            tables.push(table);
        }
        // Theorem 6's bound for K=2, p=2 is n^4 (tau+1)^2; branch-and-
        // bound pruning keeps the measured exponent well below that, but
        // it must stay bounded (polynomial), far under exponential growth.
        let ok = n_exponent.is_finite() && n_exponent < 6.0;
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables,
            verdict: if ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed(format!(
                    "fitted n-exponent {n_exponent:.2} looks superpolynomial"
                ))
            },
            notes: vec![format!(
                "fitted states ~ n^{}, against Theorem 6's n^{{K+p}} = n^4 ceiling",
                fmt(n_exponent)
            )],
        }
    }
}
