//! E14 — Theorem 4: on disjoint workloads, forcing faults (voluntary
//! evictions) never reduces the optimal fault count. Checked by
//! exhaustively enumerating tiny disjoint workloads and comparing the DP
//! optimum over honest schedules against the DP optimum over the full
//! transition relation (which includes every dishonest schedule).

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_core::{PageId, SimConfig, Workload};
use mcp_offline::{ftf_dp, FtfOptions};

/// See module docs.
pub struct E14;

/// Every disjoint 2-core workload where each core's sequence has length
/// `len` over its private `alphabet`-page universe.
pub(crate) fn enumerate_tiny(len: usize, alphabet: u32) -> Vec<Workload> {
    let seqs_per_core: Vec<Vec<PageId>> = {
        let mut out = Vec::new();
        let count = (alphabet as usize).pow(len as u32);
        for code in 0..count {
            let mut c = code;
            let mut seq = Vec::with_capacity(len);
            for _ in 0..len {
                seq.push(PageId((c % alphabet as usize) as u32));
                c /= alphabet as usize;
            }
            out.push(seq);
        }
        out
    };
    let mut workloads = Vec::new();
    for a in &seqs_per_core {
        for b in &seqs_per_core {
            let b_shifted: Vec<PageId> = b.iter().map(|p| PageId(p.0 + 100)).collect();
            workloads.push(Workload::new(vec![a.clone(), b_shifted]).unwrap());
        }
    }
    workloads
}

impl Experiment for E14 {
    fn id(&self) -> &'static str {
        "E14"
    }
    fn title(&self) -> &'static str {
        "Honesty is WLOG: forcing faults never helps (Theorem 4)"
    }
    fn claim(&self) -> &'static str {
        "For disjoint R there is an honest optimal algorithm: \
         min over honest schedules == min over all schedules"
    }

    fn run(&self, scale: Scale) -> Report {
        let (len, alphabet, taus, ks): (usize, u32, Vec<u64>, Vec<usize>) = match scale {
            Scale::Quick => (3, 2, vec![0, 1], vec![2, 3]),
            Scale::Full => (4, 2, vec![0, 1, 2], vec![2, 3]),
        };
        let workloads = enumerate_tiny(len, alphabet);
        let mut table = Table::new(
            format!(
                "exhaustive check over all {} disjoint 2-core workloads (len {len}, {alphabet} pages/core)",
                workloads.len()
            ),
            &["K", "tau", "workloads", "honest == unrestricted", "honest better", "honest worse"],
        );
        let mut all_equal = true;
        for &k in &ks {
            for &tau in &taus {
                let cfg = SimConfig::new(k, tau);
                let (mut eq, mut better, mut worse) = (0u64, 0u64, 0u64);
                for w in &workloads {
                    let honest = ftf_dp(w, cfg, FtfOptions::default()).unwrap().min_faults;
                    let full = ftf_dp(
                        w,
                        cfg,
                        FtfOptions {
                            lazy: false,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .min_faults;
                    match honest.cmp(&full) {
                        std::cmp::Ordering::Equal => eq += 1,
                        std::cmp::Ordering::Less => better += 1,
                        std::cmp::Ordering::Greater => worse += 1,
                    }
                }
                all_equal &= better == 0 && worse == 0;
                table.row(vec![
                    k.to_string(),
                    tau.to_string(),
                    workloads.len().to_string(),
                    eq.to_string(),
                    better.to_string(),
                    worse.to_string(),
                ]);
            }
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_equal {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("a workload separated honest from unrestricted optima".into())
            },
            notes: vec![
                "\"honest better\" would indicate a bug (honest schedules are a subset); \
                 \"honest worse\" would falsify Theorem 4."
                    .into(),
            ],
        }
    }
}
