//! E15 — Theorem 5: on disjoint workloads there is an optimal offline
//! algorithm that, on each fault, picks a *sequence* and evicts that
//! sequence's furthest-in-the-future page. Checked exhaustively on tiny
//! workloads: the best schedule within this restricted class must match
//! the unrestricted DP optimum.

use super::e14_thm4_honesty::enumerate_tiny;
use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_core::SimConfig;
use mcp_offline::{fitf_restricted_min_faults, ftf_min_faults};

/// See module docs.
pub struct E15;

impl Experiment for E15 {
    fn id(&self) -> &'static str {
        "E15"
    }
    fn title(&self) -> &'static str {
        "Per-sequence FITF eviction contains an optimal algorithm (Theorem 5)"
    }
    fn claim(&self) -> &'static str {
        "For disjoint R some optimal offline algorithm always evicts a page that is \
         furthest-in-the-future within its own sequence"
    }

    fn run(&self, scale: Scale) -> Report {
        let (len, alphabet, taus, ks): (usize, u32, Vec<u64>, Vec<usize>) = match scale {
            Scale::Quick => (3, 2, vec![0, 1], vec![2, 3]),
            Scale::Full => (4, 2, vec![0, 1, 2], vec![2, 3]),
        };
        let workloads = enumerate_tiny(len, alphabet);
        let mut table = Table::new(
            format!(
                "exhaustive check over all {} disjoint 2-core workloads (len {len}, {alphabet} pages/core)",
                workloads.len()
            ),
            &["K", "tau", "workloads", "restricted == OPT", "restricted worse"],
        );
        let mut all_equal = true;
        for &k in &ks {
            for &tau in &taus {
                let cfg = SimConfig::new(k, tau);
                let (mut eq, mut worse) = (0u64, 0u64);
                for w in &workloads {
                    let restricted = fitf_restricted_min_faults(w, cfg, 100_000_000).unwrap();
                    let opt = ftf_min_faults(w, cfg).unwrap();
                    debug_assert!(restricted >= opt, "restricted class cannot beat OPT");
                    if restricted == opt {
                        eq += 1;
                    } else {
                        worse += 1;
                    }
                }
                all_equal &= worse == 0;
                table.row(vec![
                    k.to_string(),
                    tau.to_string(),
                    workloads.len().to_string(),
                    eq.to_string(),
                    worse.to_string(),
                ]);
            }
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if all_equal {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("the restricted class missed the optimum somewhere".into())
            },
            notes: vec![
                "The restriction prunes the victim space from K to at most p choices per \
                 fault — the structural fact behind the paper's O(p^n)-time exact search."
                    .into(),
            ],
        }
    }
}
