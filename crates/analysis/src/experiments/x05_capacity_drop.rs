//! X05 (extension) — the capacity-drop adversary. The paper's competitive
//! bounds fix the cache size `K` for the whole run; Peserico's dynamic
//! model lets `K(t)` vary. A single mid-run drop below the combined
//! working set makes shared LRU's fault count exceed `K · OPT_K` — the
//! classic fixed-`K` competitive bound — even though LRU was fault-optimal
//! before the drop. Measured against the `K(t)`-aware exhaustive optimum
//! (which suffers the same thrashing) the ratio collapses back to ~1: the
//! bound is not broken by LRU misbehaving but by the fixed-`K` comparator
//! becoming the wrong yardstick. Small rows are cross-checked against the
//! exhaustive `K(t)`-aware oracle.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, simulate_with_capacity, CapacitySchedule, SimConfig, Time, Workload};
use mcp_oracle::oracle_min_faults_with_capacity;
use mcp_policies::shared_lru;

/// See module docs.
pub struct X05;

/// One adversary configuration: `p` cores, each cycling a private working
/// set of `wss` pages for `n` requests, cache `K = k` dropping to
/// `drop_to` at `drop_at`. `oracle` marks rows small enough for the
/// exhaustive `K(t)`-aware search.
struct Case {
    name: &'static str,
    p: usize,
    wss: usize,
    n: usize,
    k: usize,
    drop_to: usize,
    drop_at: Time,
    oracle: bool,
}

/// Disjoint per-core cycles: core `j` loops pages `100j .. 100j+wss`.
fn cyclic_workload(p: usize, wss: usize, n: usize) -> Workload {
    let seqs: Vec<Vec<u32>> = (0..p)
        .map(|j| (0..n).map(|i| (100 * j + i % wss) as u32).collect())
        .collect();
    Workload::from_u32(seqs).unwrap()
}

const ORACLE_NODES: usize = 20_000_000;

impl Experiment for X05 {
    fn id(&self) -> &'static str {
        "X05"
    }
    fn title(&self) -> &'static str {
        "Extension: a capacity drop breaks the fixed-K competitive bound"
    }
    fn claim(&self) -> &'static str {
        "(Extension) Under a mid-run capacity drop K(t), shared LRU's faults exceed \
         K * OPT_K (the fixed-K competitive bound) while staying within K times the \
         K(t)-aware optimum"
    }

    fn run(&self, scale: Scale) -> Report {
        let cases: Vec<Case> = {
            let mut c = vec![
                // Working sets fit K; the drop to p forces universal
                // thrashing. Small enough for the exhaustive K(t) oracle.
                Case {
                    name: "tiny drop-to-p",
                    p: 2,
                    wss: 2,
                    n: 6,
                    k: 4,
                    drop_to: 2,
                    drop_at: 4,
                    oracle: true,
                },
                // Partial drop: K(t) stays above p but below the combined
                // working set.
                Case {
                    name: "tiny partial drop",
                    p: 2,
                    wss: 2,
                    n: 6,
                    k: 4,
                    drop_to: 3,
                    drop_at: 4,
                    oracle: true,
                },
                // Long enough post-drop tail that S_LRU > K * OPT_K: the
                // fixed-K bound breaks, and the row is still oracle-sized.
                Case {
                    name: "bound breaker",
                    p: 2,
                    wss: 2,
                    n: 12,
                    k: 4,
                    drop_to: 2,
                    drop_at: 4,
                    oracle: true,
                },
                // Same shape at scale (oracle skipped): the ratio over the
                // fixed-K optimum grows linearly with the tail.
                Case {
                    name: "long tail",
                    p: 2,
                    wss: 3,
                    n: 60,
                    k: 6,
                    drop_to: 2,
                    drop_at: 9,
                    oracle: false,
                },
            ];
            if scale == Scale::Full {
                c.push(Case {
                    name: "four cores",
                    p: 4,
                    wss: 2,
                    n: 80,
                    k: 8,
                    drop_to: 4,
                    drop_at: 11,
                    oracle: false,
                });
                c.push(Case {
                    name: "very long tail",
                    p: 2,
                    wss: 3,
                    n: 300,
                    k: 6,
                    drop_to: 2,
                    drop_at: 9,
                    oracle: false,
                });
            }
            c
        };

        let mut table = Table::new(
            "shared LRU under a capacity drop vs the fixed-K and K(t)-aware optima",
            &[
                "instance",
                "K(t)",
                "LRU fixed",
                "LRU K(t)",
                "OPT fixed",
                "OPT K(t)",
                "LRU/K*OPT_K",
                "breaks fixed bound",
                "LRU/K*OPT_K(t)",
            ],
        );

        let rows = mcp_exec::Pool::global().par_map(&cases, |_, case| {
            let w = cyclic_workload(case.p, case.wss, case.n);
            let cfg = SimConfig::new(case.k, 0);
            let schedule =
                CapacitySchedule::new(case.k, vec![(case.drop_at, case.drop_to)]).unwrap();
            let lru_fixed = simulate(&w, cfg, shared_lru()).unwrap().total_faults();
            let lru_cap = simulate_with_capacity(&w, cfg, schedule.clone(), shared_lru())
                .unwrap()
                .total_faults();
            // Each core's working set fits its share of K (p * wss <= K),
            // so the fixed-K optimum is exactly the cold misses.
            let opt_fixed = (case.p * case.wss) as u64;
            let opt_cap = if case.oracle {
                oracle_min_faults_with_capacity(&w, cfg, &schedule, ORACLE_NODES)
            } else {
                None
            };
            (schedule, lru_fixed, lru_cap, opt_fixed, opt_cap)
        });

        let mut broke_with_oracle = false;
        let mut sound = true;
        for (case, (schedule, lru_fixed, lru_cap, opt_fixed, opt_cap)) in cases.iter().zip(&rows) {
            assert!(
                case.p * case.wss <= case.k,
                "X05 cases must have working sets that fit K"
            );
            let bound = case.k as u64 * opt_fixed;
            let breaks = *lru_cap > bound;
            let vs_dynamic = match opt_cap {
                Some(opt) => {
                    // Soundness: the oracle lower-bounds LRU, the drop can
                    // only cost the optimum (K(t) <= K pointwise), and the
                    // K(t)-aware comparator restores the K-factor bound.
                    sound &= lru_cap >= opt && *opt >= *opt_fixed;
                    sound &= *lru_cap <= case.k as u64 * opt;
                    broke_with_oracle |= breaks;
                    fmt(ratio(*lru_cap, case.k as u64 * opt))
                }
                None if case.oracle => {
                    sound = false; // search budget blown on a row we claim to verify
                    "budget".into()
                }
                None => "-".into(),
            };
            table.row(vec![
                case.name.into(),
                schedule.to_string(),
                lru_fixed.to_string(),
                lru_cap.to_string(),
                opt_fixed.to_string(),
                opt_cap.map_or_else(|| "-".into(), |f| f.to_string()),
                fmt(ratio(*lru_cap, bound)),
                breaks.to_string(),
                vs_dynamic,
            ]);
        }

        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if sound && broke_with_oracle {
                Verdict::Confirmed
            } else if sound {
                Verdict::Mixed("no oracle-checked row exceeded K * OPT_K".into())
            } else {
                Verdict::Mixed(
                    "a soundness invariant failed (LRU below the K(t) oracle, a drop that \
                     lowered the optimum, or the dynamic K-factor bound broke)"
                        .into(),
                )
            },
            notes: vec![
                "OPT fixed is the cold-miss count: every working set fits K, so the fixed-K \
                 optimum faults exactly once per distinct page."
                    .into(),
                "The break is a comparator artifact, not an LRU pathology: against the \
                 K(t)-aware exhaustive optimum (which must also serve the post-drop thrash) \
                 the ratio stays at ~1. Fixed-K competitive analysis silently assumes the \
                 adversary and the algorithm rent the same cache."
                    .into(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_confirms_and_cross_checks() {
        let report = X05.run(Scale::Quick);
        assert_eq!(report.verdict, Verdict::Confirmed, "{report:?}");
        // The bound-breaker row must be oracle-checked: its dynamic-bound
        // column is a ratio, not "-".
        let table = &report.tables[0];
        let breaker = table
            .rows
            .iter()
            .find(|r| r[0] == "bound breaker")
            .expect("bound breaker row present");
        assert_eq!(breaker[7], "true", "{breaker:?}");
        assert_ne!(breaker[8], "-", "{breaker:?}");
    }
}
