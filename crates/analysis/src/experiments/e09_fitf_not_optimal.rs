//! E09 — end of Section 4: Furthest-In-The-Future is *not* optimal in
//! multicore paging; the paper pinpoints the crossover at `τ > K/p` on
//! the Lemma 4 workload. Here S_FITF is compared against the exact DP
//! optimum (Algorithm 1) on instances small enough to solve exactly.

use super::{ratio, Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::fmt;
use mcp_core::{simulate, SimConfig};
use mcp_offline::{ftf_dp, ftf_min_faults, FtfOptions};
use mcp_policies::SharedFitf;
use mcp_workloads::lemma4_cyclic;

/// See module docs.
pub struct E09;

impl Experiment for E09 {
    fn id(&self) -> &'static str {
        "E09"
    }
    fn title(&self) -> &'static str {
        "FITF is not optimal once tau exceeds K/p (Section 4)"
    }
    fn claim(&self) -> &'static str {
        "S_FITF(R) > S_OPT(R) on the Lemma 4 sequence when tau > K/p"
    }

    fn run(&self, scale: Scale) -> Report {
        let (p, k) = (2usize, 4usize);
        let n_per_core = match scale {
            Scale::Quick => 8usize,
            Scale::Full => 12usize,
        };
        let taus: Vec<u64> = vec![0, 1, 2, 3, 4, 5];
        let crossover = (k / p) as u64;
        let mut table = Table::new(
            format!("S_FITF vs exact OPT on per-core 3-cycles (p=2, K=4, n/core={n_per_core})"),
            &[
                "tau",
                "tau > K/p",
                "S_FITF",
                "OPT (DP)",
                "ratio",
                "FITF suboptimal",
            ],
        );
        let mut seen_suboptimal_past_crossover = false;
        let mut optimal_at_or_below = true;
        for tau in taus {
            let w = lemma4_cyclic(p, k, n_per_core);
            let cfg = SimConfig::new(k, tau);
            let fitf = simulate(&w, cfg, SharedFitf::new()).unwrap().total_faults();
            let opt = match ftf_min_faults(&w, cfg) {
                Ok(v) => v,
                Err(_) => {
                    // State-space blowup guard: retry with a bigger cap.
                    ftf_dp(
                        &w,
                        cfg,
                        FtfOptions {
                            max_states: 30_000_000,
                            ..Default::default()
                        },
                    )
                    .map(|r| r.min_faults)
                    .expect("instance sized to be solvable")
                }
            };
            let sub = fitf > opt;
            if tau > crossover {
                seen_suboptimal_past_crossover |= sub;
            } else {
                optimal_at_or_below &= true; // informational only
            }
            table.row(vec![
                tau.to_string(),
                (tau > crossover).to_string(),
                fitf.to_string(),
                opt.to_string(),
                fmt(ratio(fitf, opt)),
                sub.to_string(),
            ]);
        }
        let _ = optimal_at_or_below;
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if seen_suboptimal_past_crossover {
                Verdict::Confirmed
            } else {
                Verdict::Mixed("FITF matched OPT even past the tau > K/p crossover".into())
            },
            notes: vec![
                "OPT exploits delays: sacrificing one sequence desynchronizes the demand \
                 periods, something next-use-distance eviction never does."
                    .into(),
            ],
        }
    }
}
