//! E13 — Theorem 7: Algorithm 2 decides PARTIAL-INDIVIDUAL-FAULTS in
//! `O(n^{K+2p+1}(τ+1)^{p+1})` time — again polynomial in `n` for fixed
//! `K`, `p`. Measured like E12, on feasible and infeasible bound vectors.

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use crate::stats::{fmt, growth_exponent};
use crate::timing::Stopwatch;
use mcp_core::{SimConfig, Workload};
use mcp_offline::{pif_decide_with_stats, PifOptions};

/// See module docs.
pub struct E13;

fn family(n: usize) -> Workload {
    Workload::from_u32([
        (0..n).map(|i| (i % 2) as u32).collect::<Vec<_>>(),
        (0..n).map(|i| 10 + (i % 2) as u32).collect::<Vec<_>>(),
    ])
    .unwrap()
}

impl Experiment for E13 {
    fn id(&self) -> &'static str {
        "E13"
    }
    fn title(&self) -> &'static str {
        "Algorithm 2 scales polynomially in n (Theorem 7)"
    }
    fn claim(&self) -> &'static str {
        "PIF is decidable in O(n^{K+2p+1} (tau+1)^{p+1}) time for fixed K, p"
    }

    fn run(&self, scale: Scale) -> Report {
        let ns: Vec<usize> = match scale {
            Scale::Quick => vec![4, 8, 16],
            Scale::Full => vec![4, 8, 16, 32, 64],
        };
        let opts = PifOptions {
            full_transitions: false,
            ..Default::default()
        };
        let mut table = Table::new(
            "PIF decision wall time vs n (p=2, K=2, w=4, tau=1, honest transitions)",
            &[
                "n/core",
                "generous bounds",
                "time (ms)",
                "tight bounds",
                "time (ms)",
                "states/s",
            ],
        );
        let mut points = Vec::new();
        let rows = mcp_exec::Pool::global().par_map(&ns, |_, &n| {
            let w = family(n);
            let cfg = SimConfig::new(2, 1);
            let horizon = (2 * n) as u64;

            let sw = Stopwatch::start();
            let (generous, gs) =
                pif_decide_with_stats(&w, cfg, horizon, &[n as u64, n as u64], opts).unwrap();
            let t1 = sw.ms();

            let sw = Stopwatch::start();
            let (tight, ts) = pif_decide_with_stats(&w, cfg, horizon, &[1, 1], opts).unwrap();
            let t2 = sw.ms();

            (generous, t1, tight, t2, gs.expansions + ts.expansions)
        });
        for (&n, &(generous, t1, tight, t2, expansions)) in ns.iter().zip(&rows) {
            points.push((n as f64, (t1 + t2).max(1e-3)));
            // Vector expansions per second across both decisions; 0 under
            // --no-timing so JSON reports stay bit-comparable.
            let rate = if t1 + t2 > 0.0 {
                expansions as f64 / ((t1 + t2) / 1e3)
            } else {
                0.0
            };
            table.row(vec![
                n.to_string(),
                generous.to_string(),
                fmt(t1),
                tight.to_string(),
                fmt(t2),
                fmt(rate),
            ]);
        }
        let exponent = growth_exponent(&points);
        let ok = exponent.is_finite() && exponent < 8.0;
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if ok {
                Verdict::Confirmed
            } else {
                Verdict::Mixed(format!(
                    "fitted time exponent {exponent:.2} looks superpolynomial"
                ))
            },
            notes: vec![format!(
                "fitted time ~ n^{}, against Theorem 7's n^{{K+2p+1}} = n^7 ceiling \
                 (bound pruning keeps the practical cost far lower)",
                fmt(exponent)
            )],
        }
    }
}
