//! X01 (extension) — fault-count vs makespan: the paper optimizes total
//! faults where Hassidim's model optimizes makespan. On small instances
//! we compute the exhaustive optimum of each objective *and* the
//! lexicographic optima in both orders: a Pareto conflict (no schedule
//! achieves both optima simultaneously) shows the objectives genuinely
//! diverge in the no-scheduling model.

use super::{Experiment, Scale};
use crate::report::{Report, Table, Verdict};
use mcp_core::{SimConfig, Workload};
use mcp_offline::{
    brute_force_faults_then_makespan, brute_force_makespan_then_faults, brute_force_min_faults,
    brute_force_min_makespan,
};

/// See module docs.
pub struct X01;

impl Experiment for X01 {
    fn id(&self) -> &'static str {
        "X01"
    }
    fn title(&self) -> &'static str {
        "Extension: fault-minimal and makespan-minimal schedules diverge"
    }
    fn claim(&self) -> &'static str {
        "(Extension, not a paper theorem) No schedule is simultaneously \
         fault-optimal and makespan-optimal on some instances of the \
         no-scheduling model"
    }

    fn run(&self, scale: Scale) -> Report {
        let nodes = 80_000_000usize;
        let mut table = Table::new(
            "exhaustive single-objective and lexicographic optima",
            &[
                "instance",
                "K",
                "tau",
                "min F",
                "min M",
                "best M among F-opt",
                "best F among M-opt",
                "Pareto conflict",
            ],
        );
        let cases: Vec<(&str, Vec<Vec<u32>>, usize, u64)> = {
            // The conflict instances were located by exhaustive search
            // over small workloads; the harmony rows show conflicts are
            // not universal.
            let mut c = vec![
                (
                    "harmony: cycles 3+2",
                    vec![vec![1, 2, 3, 1, 2, 3], vec![11, 12, 11, 12, 11, 12]],
                    3,
                    2,
                ),
                (
                    "harmony: pairs",
                    vec![vec![1, 2, 1, 2], vec![7, 8, 7, 8]],
                    3,
                    1,
                ),
                (
                    "conflict: skewed cycles",
                    vec![vec![1, 2, 0, 1, 2, 0], vec![11, 12, 11, 11, 12, 12]],
                    3,
                    3,
                ),
            ];
            if scale == Scale::Full {
                c.push((
                    "conflict: three cores",
                    vec![
                        vec![0, 1, 0],
                        vec![12, 12, 10, 12, 11, 10],
                        vec![20, 22, 20, 22, 22],
                    ],
                    4,
                    3,
                ));
            }
            c
        };
        let mut saw_conflict = false;
        let mut consistent = true;
        for (name, seqs, k, tau) in cases {
            let w = Workload::from_u32(seqs).unwrap();
            let cfg = SimConfig::new(k, tau);
            let min_f = brute_force_min_faults(&w, cfg, nodes).unwrap();
            let min_m = brute_force_min_makespan(&w, cfg, nodes).unwrap();
            let (f1, m_of_fopt) = brute_force_faults_then_makespan(&w, cfg, nodes).unwrap();
            let (m1, f_of_mopt) = brute_force_makespan_then_faults(&w, cfg, nodes).unwrap();
            consistent &= f1 == min_f && m1 == min_m;
            consistent &= m_of_fopt >= min_m && f_of_mopt >= min_f;
            // A conflict exists iff even the best fault-optimal schedule
            // pays extra makespan, or equivalently the best makespan-
            // optimal schedule pays extra faults.
            let conflict = m_of_fopt > min_m;
            consistent &= conflict == (f_of_mopt > min_f);
            saw_conflict |= conflict;
            table.row(vec![
                name.into(),
                k.to_string(),
                tau.to_string(),
                min_f.to_string(),
                min_m.to_string(),
                m_of_fopt.to_string(),
                f_of_mopt.to_string(),
                conflict.to_string(),
            ]);
        }
        Report {
            id: self.id().into(),
            title: self.title().into(),
            claim: self.claim().into(),
            tables: vec![table],
            verdict: if consistent && saw_conflict {
                Verdict::Confirmed
            } else if consistent {
                Verdict::Mixed("no Pareto conflict on these instances".into())
            } else {
                Verdict::Mixed("lexicographic optima inconsistent with single objectives".into())
            },
            notes: vec![
                "`Pareto conflict = true` rows prove no schedule attains both optima: \
                 minimizing faults globally can serialize one core's misses, inflating \
                 completion time — and symmetrically."
                    .into(),
            ],
        }
    }
}
