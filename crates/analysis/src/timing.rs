//! Wall-clock measurement for experiment reports, with a process-wide
//! deterministic mode.
//!
//! Scaling experiments (E12, E13) put measured milliseconds in their
//! tables, which makes two otherwise-identical runs differ byte-for-byte.
//! The `repro --no-timing` flag flips [`set_deterministic`], after which
//! every [`Stopwatch`] reports exactly `0` — so `--json` reports become
//! bit-comparable across runs and `--jobs` settings (the determinism
//! gate in `tests/repro_determinism.rs` relies on this).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static DETERMINISTIC: AtomicBool = AtomicBool::new(false);

/// Enable/disable deterministic timing (every stopwatch reads 0).
pub fn set_deterministic(on: bool) {
    DETERMINISTIC.store(on, Ordering::Relaxed);
}

/// Whether deterministic timing is on.
pub fn is_deterministic() -> bool {
    DETERMINISTIC.load(Ordering::Relaxed)
}

/// A start-to-read wall-clock timer honoring the deterministic mode.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed milliseconds (0 in deterministic mode).
    pub fn ms(&self) -> f64 {
        if is_deterministic() {
            0.0
        } else {
            self.started.elapsed().as_secs_f64() * 1e3
        }
    }

    /// Elapsed seconds (0 in deterministic mode).
    pub fn secs(&self) -> f64 {
        if is_deterministic() {
            0.0
        } else {
            self.started.elapsed().as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_mode_zeroes_readings() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.ms() > 0.0);
        set_deterministic(true);
        assert_eq!(sw.ms(), 0.0);
        assert_eq!(sw.secs(), 0.0);
        set_deterministic(false);
        assert!(sw.secs() > 0.0);
    }
}
