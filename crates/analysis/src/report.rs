//! Experiment reports: tables plus a pass/fail verdict against the
//! paper's claim, renderable as aligned text, Markdown, or CSV.

use std::fmt::Write as _;

/// One result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned monospace text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "  {}", fmt_row(&self.columns, &widths));
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", fmt_row(&underline, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "  {}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Did the measurement match the paper's claim?
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The measured shape matches the claim.
    Confirmed,
    /// Partially matches; the string explains the gap.
    Mixed(String),
    /// The claim could not be checked (explains why).
    Skipped(String),
    /// The run was cut short by a resource budget (deadline, Ctrl-C);
    /// the string names the trip. Not a failure: what *was* measured is
    /// still valid, the claim is simply not fully evaluated.
    Truncated(String),
}

/// A complete experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id, e.g. `"E08"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper's claim being reproduced.
    pub claim: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Whether the claim held.
    pub verdict: Verdict,
    /// Free-form observations.
    pub notes: Vec<String>,
}

impl Report {
    /// Render the whole report as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {}: {} ===", self.id, self.title);
        let _ = writeln!(out, "claim: {}", self.claim);
        for t in &self.tables {
            let _ = writeln!(out, "\n{}", t.to_text());
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        let _ = writeln!(out, "verdict: {:?}", self.verdict);
        out
    }

    /// Render the whole report as compact JSON, mirroring the layout a
    /// `serde` derive would produce (`Verdict::Confirmed` → `"Confirmed"`,
    /// `Verdict::Mixed(s)` → `{"Mixed": s}`).
    pub fn to_json(&self) -> String {
        self.render_json(None)
    }

    /// Render the whole report as indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.render_json(Some(2))
    }

    fn render_json(&self, indent: Option<usize>) -> String {
        let mut w = JsonWriter::new(indent);
        w.begin_object();
        w.key("id");
        w.string(&self.id);
        w.key("title");
        w.string(&self.title);
        w.key("claim");
        w.string(&self.claim);
        w.key("tables");
        w.begin_array();
        for t in &self.tables {
            w.value_slot();
            w.begin_object();
            w.key("title");
            w.string(&t.title);
            w.key("columns");
            w.string_array(&t.columns);
            w.key("rows");
            w.begin_array();
            for row in &t.rows {
                w.value_slot();
                w.string_array(row);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("verdict");
        match &self.verdict {
            Verdict::Confirmed => w.string("Confirmed"),
            Verdict::Mixed(s) => {
                w.begin_object();
                w.key("Mixed");
                w.string(s);
                w.end_object();
            }
            Verdict::Skipped(s) => {
                w.begin_object();
                w.key("Skipped");
                w.string(s);
                w.end_object();
            }
            Verdict::Truncated(s) => {
                w.begin_object();
                w.key("Truncated");
                w.string(s);
                w.end_object();
            }
        }
        w.key("notes");
        w.string_array(&self.notes);
        w.end_object();
        w.out
    }

    /// Render the whole report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}: {}\n", self.id, self.title);
        let _ = writeln!(out, "*Claim:* {}\n", self.claim);
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.to_markdown());
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}\n");
        }
        let _ = writeln!(out, "**Verdict:** {:?}\n", self.verdict);
        out
    }
}

/// Tiny structural JSON writer used by [`Report::to_json`]; comma and
/// indent bookkeeping only, since the report schema is fixed.
struct JsonWriter {
    out: String,
    indent: Option<usize>,
    depth: usize,
    has_items: Vec<bool>,
}

impl JsonWriter {
    fn new(indent: Option<usize>) -> Self {
        JsonWriter {
            out: String::new(),
            indent,
            depth: 0,
            has_items: Vec::new(),
        }
    }

    fn newline_indent(&mut self) {
        if let Some(n) = self.indent {
            self.out.push('\n');
            for _ in 0..self.depth * n {
                self.out.push(' ');
            }
        }
    }

    /// Open a slot for the next element of the enclosing container.
    fn value_slot(&mut self) {
        if let Some(filled) = self.has_items.last_mut() {
            if *filled {
                self.out.push(',');
            }
            *filled = true;
            self.newline_indent();
        }
    }

    fn key(&mut self, k: &str) {
        self.value_slot();
        self.raw_string(k);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
    }

    fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.has_items.push(false);
    }

    fn end_object(&mut self) {
        self.depth -= 1;
        if self.has_items.pop() == Some(true) {
            self.newline_indent();
        }
        self.out.push('}');
    }

    fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.has_items.push(false);
    }

    fn end_array(&mut self) {
        self.depth -= 1;
        if self.has_items.pop() == Some(true) {
            self.newline_indent();
        }
        self.out.push(']');
    }

    fn string(&mut self, s: &str) {
        self.raw_string(s);
    }

    fn string_array(&mut self, items: &[String]) {
        self.begin_array();
        for item in items {
            self.value_slot();
            self.raw_string(item);
        }
        self.end_array();
    }

    fn raw_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["x", "faults"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["200".into(), "3".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        assert!(text.contains("  x  faults"));
        assert!(text.contains("200       3"));
    }

    #[test]
    fn markdown_structure() {
        let md = sample().to_markdown();
        assert!(md.contains("| x | faults |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 200 | 3 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("q", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn report_rendering() {
        let r = Report {
            id: "E00".into(),
            title: "demo".into(),
            claim: "it works".into(),
            tables: vec![sample()],
            verdict: Verdict::Confirmed,
            notes: vec!["fine".into()],
        };
        let text = r.to_text();
        assert!(text.contains("=== E00: demo ==="));
        assert!(text.contains("verdict: Confirmed"));
        let md = r.to_markdown();
        assert!(md.contains("## E00: demo"));
    }
}
