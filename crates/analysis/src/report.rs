//! Experiment reports: tables plus a pass/fail verdict against the
//! paper's claim, renderable as aligned text, Markdown, or CSV.

use serde::Serialize;
use std::fmt::Write as _;

/// One result table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned monospace text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "  {}", fmt_row(&self.columns, &widths));
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", fmt_row(&underline, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "  {}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Did the measurement match the paper's claim?
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The measured shape matches the claim.
    Confirmed,
    /// Partially matches; the string explains the gap.
    Mixed(String),
    /// The claim could not be checked (explains why).
    Skipped(String),
}

/// A complete experiment report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Experiment id, e.g. `"E08"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper's claim being reproduced.
    pub claim: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Whether the claim held.
    pub verdict: Verdict,
    /// Free-form observations.
    pub notes: Vec<String>,
}

impl Report {
    /// Render the whole report as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {}: {} ===", self.id, self.title);
        let _ = writeln!(out, "claim: {}", self.claim);
        for t in &self.tables {
            let _ = writeln!(out, "\n{}", t.to_text());
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        let _ = writeln!(out, "verdict: {:?}", self.verdict);
        out
    }

    /// Render the whole report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}: {}\n", self.id, self.title);
        let _ = writeln!(out, "*Claim:* {}\n", self.claim);
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.to_markdown());
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}\n");
        }
        let _ = writeln!(out, "**Verdict:** {:?}\n", self.verdict);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["x", "faults"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["200".into(), "3".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        assert!(text.contains("  x  faults"));
        assert!(text.contains("200       3"));
    }

    #[test]
    fn markdown_structure() {
        let md = sample().to_markdown();
        assert!(md.contains("| x | faults |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 200 | 3 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("q", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn report_rendering() {
        let r = Report {
            id: "E00".into(),
            title: "demo".into(),
            claim: "it works".into(),
            tables: vec![sample()],
            verdict: Verdict::Confirmed,
            notes: vec!["fine".into()],
        };
        let text = r.to_text();
        assert!(text.contains("=== E00: demo ==="));
        assert!(text.contains("verdict: Confirmed"));
        let md = r.to_markdown();
        assert!(md.contains("## E00: demo"));
    }
}
