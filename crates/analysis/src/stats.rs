//! Small statistics helpers for the experiment reports: growth-rate fits
//! and summary aggregates — plus the streaming [`QuantileSketch`] behind
//! the serve layer's latency percentiles and the tournament fault-spread
//! table.

use std::collections::BTreeMap;

/// Arithmetic mean. Empty input yields `NaN`.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of positive values. Empty input yields `NaN`.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Least-squares slope of `y` against `x`.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let mx = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    sxy / sxx
}

/// Fitted exponent `e` of a power law `y ≈ c·x^e`, from the slope of the
/// log-log regression. Requires strictly positive data.
pub fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    slope(&logged)
}

/// `true` if `ys` grows at least linearly in `xs` (fitted exponent ≥
/// `0.9`), the check used for the paper's `Ω(n)` separations.
pub fn grows_linearly(points: &[(f64, f64)]) -> bool {
    growth_exponent(points) >= 0.9
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// A streaming quantile sketch with a provable *relative*-error bound
/// (the DDSketch construction): values are counted in logarithmic
/// buckets `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, so any reported
/// quantile `v̂` satisfies `|v̂ - v| ≤ α·v` for the true rank item `v`.
///
/// Memory is `O(log(max/min)/α)` buckets regardless of stream length;
/// storage is a `BTreeMap` so iteration order — and therefore every
/// reported value — is deterministic. Values `≤ 1e-9` (and non-finite
/// inputs) collapse into an exact zero bucket. Built for the serve
/// layer's latency percentiles (p50/p90/p99 over nanoseconds) but
/// generic over any nonnegative measure.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    buckets: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
}

impl QuantileSketch {
    /// Values at or below this threshold land in the exact zero bucket.
    const MIN_TRACKED: f64 = 1e-9;

    /// A sketch with relative-error bound `alpha` (`0 < alpha < 1`).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        QuantileSketch {
            alpha,
            ln_gamma: ((1.0 + alpha) / (1.0 - alpha)).ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
        }
    }

    /// The default sketch for latency metrics: α = 1% relative error.
    pub fn default_latency() -> Self {
        QuantileSketch::new(0.01)
    }

    /// The configured relative-error bound α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Record one observation. Non-finite and `≤ 1e-9` values count in
    /// the exact zero bucket.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() || v <= Self::MIN_TRACKED {
            self.zero += 1;
            return;
        }
        let i = (v.ln() / self.ln_gamma).ceil() as i32;
        *self.buckets.entry(i).or_insert(0) += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self`. Both sketches must share the same α.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < f64::EPSILON,
            "cannot merge sketches with different alphas ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        self.count += other.count;
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
    }

    /// The `q`-quantile estimate (`0 ≤ q ≤ 1`), i.e. an α-relative
    /// approximation of the item at rank `⌊q·(n-1)⌋` of the sorted
    /// stream. `None` on an empty sketch or out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * (self.count - 1) as f64).floor() as u64 + 1;
        if rank <= self.zero {
            return Some(0.0);
        }
        let mut cum = self.zero;
        for (&i, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let gamma = self.ln_gamma.exp();
                return Some((self.ln_gamma * i as f64).exp() * 2.0 / (1.0 + gamma));
            }
        }
        None // unreachable: cum totals self.count >= rank
    }

    /// The standard latency triple `(p50, p90, p99)`; zeros when empty.
    pub fn p50_p90_p99(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50).unwrap_or(0.0),
            self.quantile(0.90).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn slope_of_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_of_square() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((growth_exponent(&pts) - 2.0).abs() < 1e-6);
        assert!(grows_linearly(&pts));
    }

    #[test]
    fn constant_does_not_grow() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 7.0)).collect();
        assert!(!grows_linearly(&pts));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234"); // ties round to even
        assert_eq!(fmt(3.17459), "3.17");
        assert_eq!(fmt(0.01234), "0.0123");
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
    }

    #[test]
    fn sketch_brackets_exact_quantiles() {
        let mut sk = QuantileSketch::new(0.01);
        let mut vals: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 0.37).collect();
        for &v in &vals {
            sk.add(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&vals, q);
            let est = sk.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= 0.01 * exact + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(sk.count(), 10_000);
    }

    #[test]
    fn sketch_zero_and_empty_behaviour() {
        let sk = QuantileSketch::default_latency();
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.p50_p90_p99(), (0.0, 0.0, 0.0));
        let mut sk = QuantileSketch::new(0.05);
        sk.add(0.0);
        sk.add(-3.0);
        sk.add(f64::NAN);
        sk.add(100.0);
        assert_eq!(sk.quantile(0.0), Some(0.0));
        // Ranks ⌊q(n-1)⌋+1 ≤ 3 sit in the zero bucket; only q = 1 reaches
        // the single positive observation.
        assert_eq!(sk.quantile(0.99), Some(0.0));
        let top = sk.quantile(1.0).unwrap();
        assert!((top - 100.0).abs() <= 0.05 * 100.0, "{top}");
        assert!(sk.quantile(1.5).is_none());
    }

    #[test]
    fn sketch_merge_equals_single_stream() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut whole = QuantileSketch::new(0.02);
        for i in 1..=500 {
            let v = (i * i) as f64;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "merge must be lossless");
        }
    }

    #[test]
    #[should_panic(expected = "different alphas")]
    fn sketch_merge_rejects_alpha_mismatch() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }
}
