//! Small statistics helpers for the experiment reports: growth-rate fits
//! and summary aggregates.

/// Arithmetic mean. Empty input yields `NaN`.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of positive values. Empty input yields `NaN`.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Least-squares slope of `y` against `x`.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let mx = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    sxy / sxx
}

/// Fitted exponent `e` of a power law `y ≈ c·x^e`, from the slope of the
/// log-log regression. Requires strictly positive data.
pub fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    slope(&logged)
}

/// `true` if `ys` grows at least linearly in `xs` (fitted exponent ≥
/// `0.9`), the check used for the paper's `Ω(n)` separations.
pub fn grows_linearly(points: &[(f64, f64)]) -> bool {
    growth_exponent(points) >= 0.9
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn slope_of_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_of_square() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((growth_exponent(&pts) - 2.0).abs() < 1e-6);
        assert!(grows_linearly(&pts));
    }

    #[test]
    fn constant_does_not_grow() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 7.0)).collect();
        assert!(!grows_linearly(&pts));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234"); // ties round to even
        assert_eq!(fmt(3.17459), "3.17");
        assert_eq!(fmt(0.01234), "0.0123");
    }
}
