//! Fairness and relative-progress metrics.
//!
//! The paper's conclusion argues that minimizing total faults may be the
//! wrong lens for multicore paging and that "other measures such as
//! fairness or relative progress of sequences should be considered". This
//! module provides those measures over a finished [`SimResult`], derived
//! exactly from the model's timing rules (a core's m-th request issues at
//! `m + τ·(faults among its first m−1 requests)`).

use mcp_core::{SimResult, Time};

/// Completion time of core `core`'s last request: `n_j + τ · faults_j`
/// (cores never wait on each other in this model). Returns 0 for an empty
/// sequence.
pub fn core_completion(result: &SimResult, core: usize) -> Time {
    let n = (result.faults[core] + result.hits[core]) as Time;
    if n == 0 {
        return 0;
    }
    n + result.config.tau * result.faults[core]
}

/// Per-core slowdown: completion time divided by the all-hit ideal `n_j`.
/// 1.0 means the core never faulted; `1 + τ` is the worst possible.
pub fn slowdowns(result: &SimResult) -> Vec<f64> {
    (0..result.faults.len())
        .map(|core| {
            let n = result.faults[core] + result.hits[core];
            if n == 0 {
                1.0
            } else {
                core_completion(result, core) as f64 / n as f64
            }
        })
        .collect()
}

/// Number of requests core `core` has completed issuing by time `t`.
pub fn progress_at(result: &SimResult, core: usize, t: Time) -> u64 {
    let n = result.faults[core] + result.hits[core];
    let tau = result.config.tau;
    // The m-th request (1-based) issues at m + tau * (faults among the
    // first m-1). Walk the fault times, which are exactly the issue times
    // of the faulting requests.
    let mut served = 0u64;
    let mut delay = 0u64; // tau * faults so far
    let mut fault_iter = result.fault_times[core].iter().peekable();
    while served < n {
        let issue = served + 1 + delay;
        if issue > t {
            break;
        }
        if let Some(&&ft) = fault_iter.peek() {
            if ft == issue {
                fault_iter.next();
                delay += tau;
            } else {
                debug_assert!(ft > issue, "fault times must align with issue cadence");
            }
        }
        served += 1;
    }
    served
}

/// Relative progress of every core at time `t`, as a fraction of its
/// sequence length (1.0 = finished; empty sequences report 1.0).
pub fn relative_progress(result: &SimResult, t: Time) -> Vec<f64> {
    (0..result.faults.len())
        .map(|core| {
            let n = result.faults[core] + result.hits[core];
            if n == 0 {
                1.0
            } else {
                progress_at(result, core, t) as f64 / n as f64
            }
        })
        .collect()
}

/// Jain's fairness index over a vector of nonnegative values:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`, 1 meaning perfectly equal.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

/// A fairness summary of a finished run.
#[derive(Clone, Debug)]
pub struct FairnessSummary {
    /// Per-core slowdowns.
    pub slowdowns: Vec<f64>,
    /// Jain index of the slowdowns (1 = perfectly fair).
    pub jain_slowdown: f64,
    /// Max/min slowdown ratio (1 = perfectly fair).
    pub spread: f64,
    /// Completion time of the whole run (max core completion) — the
    /// makespan objective of Hassidim's model.
    pub makespan: Time,
}

/// Summarize the fairness of a run.
///
/// ```
/// use mcp_analysis::fairness::summarize;
/// use mcp_core::{simulate, SimConfig, Workload};
/// use mcp_policies::shared_lru;
///
/// let w = Workload::from_u32([vec![1; 8], vec![7, 8, 9, 7, 8, 9, 7, 8]]).unwrap();
/// let r = simulate(&w, SimConfig::new(4, 3), shared_lru()).unwrap();
/// let s = summarize(&r);
/// assert!(s.jain_slowdown <= 1.0 && s.spread >= 1.0);
/// ```
pub fn summarize(result: &SimResult) -> FairnessSummary {
    let slow = slowdowns(result);
    let max = slow.iter().copied().fold(f64::MIN, f64::max);
    let min = slow.iter().copied().fold(f64::MAX, f64::min);
    FairnessSummary {
        jain_slowdown: jain_index(&slow),
        spread: if min > 0.0 { max / min } else { f64::INFINITY },
        slowdowns: slow,
        makespan: result.makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcp_core::{simulate, SimConfig, Workload};
    use mcp_policies::shared_lru;

    fn run(seqs: &[&[u32]], k: usize, tau: u64) -> SimResult {
        let w = Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap();
        simulate(&w, SimConfig::new(k, tau), shared_lru()).unwrap()
    }

    #[test]
    fn completion_matches_engine_makespan() {
        let r = run(&[&[1, 2, 3, 1], &[7, 7, 7, 7]], 3, 2);
        let max_completion = (0..2).map(|c| core_completion(&r, c)).max().unwrap();
        assert_eq!(max_completion, r.makespan);
    }

    #[test]
    fn slowdown_bounds() {
        let r = run(&[&[1, 1, 1, 1], &[7, 8, 9, 10]], 5, 3);
        let s = slowdowns(&r);
        // Core 0: one cold fault in 4 requests: 1 + 3/4.
        assert!((s[0] - 1.75).abs() < 1e-9);
        // Core 1: all faults: 1 + tau.
        assert!((s[1] - 4.0).abs() < 1e-9);
        for v in s {
            assert!((1.0..=4.0).contains(&v));
        }
    }

    #[test]
    fn progress_is_monotone_and_exact() {
        let r = run(&[&[1, 2, 1, 2, 1], &[7, 8, 7, 8, 7]], 2, 2);
        for core in 0..2 {
            let mut prev = 0;
            for t in 0..=r.makespan + 2 {
                let now = progress_at(&r, core, t);
                assert!(now >= prev);
                prev = now;
            }
            assert_eq!(
                progress_at(&r, core, r.makespan + 2),
                5,
                "all requests issued"
            );
            assert_eq!(progress_at(&r, core, 0), 0);
        }
    }

    #[test]
    fn jain_index_properties() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[1.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[]) == 1.0);
    }

    #[test]
    fn summary_shapes() {
        let r = run(&[&[1, 1, 1, 1], &[7, 8, 9, 10]], 5, 3);
        let s = summarize(&r);
        assert!(s.jain_slowdown < 1.0, "unequal slowdowns must show up");
        assert!(s.spread > 2.0);
        assert_eq!(s.makespan, r.makespan);
    }

    #[test]
    fn relative_progress_hits_one_at_makespan_plus_tail() {
        let r = run(&[&[1, 2, 3], &[7, 7, 7]], 4, 1);
        let final_progress = relative_progress(&r, r.makespan + 1);
        assert!(final_progress.iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }
}
