//! # mcp-analysis — the experiment harness
//!
//! The paper has no empirical section, so its "tables and figures" are the
//! bounds it proves. Each experiment (E01–E15, see [`experiments`])
//! regenerates one claim: it sweeps the parameter the bound depends on,
//! compares the measured ratio/equality/feasibility against the claim, and
//! renders a [`report::Report`] with a machine-checked verdict. The
//! `repro` binary runs them (`repro --list`, `repro E08`, `repro all`).

#![warn(missing_docs)]

pub mod experiments;
pub mod fairness;
pub mod grid;
pub mod report;
pub mod stats;
pub mod timing;
pub mod tournament;

pub use experiments::{registry, Experiment, Scale};
pub use grid::{grid2, grid3, grid4};
pub use report::{Report, Table, Verdict};
pub use stats::QuantileSketch;
pub use tournament::{tournament_report, TournamentOutcome};
