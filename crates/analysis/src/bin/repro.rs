//! `repro` — regenerate the paper's claimed bounds.
//!
//! ```text
//! repro --list              list experiments
//! repro E08 E04             run selected experiments (quick scale)
//! repro all                 run everything
//! repro all --full          the sweeps recorded in EXPERIMENTS.md
//! repro all --jobs 4        run experiments on 4 worker threads
//! repro all --markdown out/ write per-experiment markdown files
//! ```
//!
//! Experiments run concurrently on the [`mcp_exec`] pool; finished
//! reports print in ID order as each ordered prefix completes, and the
//! output is bit-identical for every `--jobs` value (add `--no-timing`
//! to also zero the measured-milliseconds table cells in E12/E13).

use mcp_analysis::{registry, Scale, Verdict};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }

    let experiments = registry();

    if args.iter().any(|a| a == "--list") {
        for e in &experiments {
            println!("{}  {}", e.id(), e.title());
        }
        return;
    }

    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if args.iter().any(|a| a == "--no-timing") {
        mcp_analysis::timing::set_deterministic(true);
    }
    let jobs: usize = match option_value(&args, "--jobs") {
        Ok(v) => match v.map(|s| s.parse::<usize>()) {
            None => mcp_exec::resolved_jobs(),
            Some(Ok(n)) if n >= 1 => n,
            Some(_) => usage_error("--jobs needs a positive integer"),
        },
        Err(msg) => usage_error(&msg),
    };
    mcp_exec::set_jobs(Some(jobs));
    let markdown_dir = dir_option(&args, "--markdown");
    let json_dir = dir_option(&args, "--json");

    let run_all = args.iter().any(|a| a == "all");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "all" && !is_option_value(&args, a))
        .map(|a| a.to_uppercase())
        .collect();

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| run_all || wanted.iter().any(|w| w == e.id()))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
    if let Some(dir) = &markdown_dir {
        std::fs::create_dir_all(dir).expect("create markdown output dir");
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }

    // Fan the experiment fleet out over the pool. Workers write the
    // per-experiment report files (independent paths); the caller thread
    // prints each finished report in ID order as soon as every earlier
    // report is also done.
    let wall = mcp_analysis::timing::Stopwatch::start();
    let pool = mcp_exec::Pool::new(jobs);
    let stdout = std::io::stdout();
    let results = pool.par_map_emit(
        &selected,
        |_, e| {
            let sw = mcp_analysis::timing::Stopwatch::start();
            let report = e.run(scale);
            let secs = sw.secs();
            if let Some(dir) = &markdown_dir {
                let path = dir.join(format!("{}.md", report.id));
                std::fs::write(&path, report.to_markdown()).expect("write markdown report");
            }
            if let Some(dir) = &json_dir {
                let path = dir.join(format!("{}.json", report.id));
                std::fs::write(&path, report.to_json_pretty()).expect("write json report");
            }
            let confirmed = matches!(report.verdict, Verdict::Confirmed);
            (report.to_text(), secs, confirmed)
        },
        |_, (text, secs, _)| {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{text}");
            let _ = writeln!(out, "({secs:.2}s)\n");
        },
    );

    let confirmed = results.iter().filter(|(_, _, ok)| *ok).count();
    let failures = results.len() - confirmed;
    let cpu: f64 = results.iter().map(|(_, secs, _)| *secs).sum();
    println!(
        "total: {confirmed}/{} confirmed · wall-clock {:.2}s (cpu {cpu:.2}s) · jobs={jobs}",
        results.len(),
        wall.secs(),
    );
    if failures > 0 {
        eprintln!("{failures} experiment(s) did not confirm their claim");
        std::process::exit(1);
    }
}

/// The value following `--<name>`, or an error if the option is present
/// with no value (or with another option where its value belongs).
fn option_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{name} needs a value")),
        },
    }
}

/// Whether `token` is the value slot of some `--option value` pair.
fn is_option_value(args: &[String], token: &String) -> bool {
    args.iter()
        .position(|a| std::ptr::eq(a, token))
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .map(|prev| matches!(prev.as_str(), "--markdown" | "--json" | "--jobs"))
        .unwrap_or(false)
}

fn dir_option(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    match option_value(args, name) {
        Ok(v) => v.map(std::path::PathBuf::from),
        Err(_) => usage_error(&format!("{name} needs a directory argument")),
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro <IDS>|all [--full] [--jobs N] [--no-timing] [--markdown DIR] [--json DIR]"
    );
    std::process::exit(2);
}

fn print_help() {
    println!(
        "repro — regenerate every bound claimed in 'Paging for Multicore Processors'\n\n\
         usage:\n  repro --list\n  repro <IDS>... [--full] [--jobs N] [--no-timing] [--markdown DIR] [--json DIR]\n  repro all [--full] [--jobs N] [--no-timing] [--markdown DIR] [--json DIR]\n\n\
         Scales: default quick (seconds/experiment); --full matches EXPERIMENTS.md.\n\
         Parallelism: --jobs N (default MCP_JOBS or the hardware); reports still\n\
         print in ID order and are bit-identical for every jobs value.\n\
         --no-timing zeroes measured-time table cells for byte-comparable output."
    );
}
