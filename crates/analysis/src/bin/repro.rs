//! `repro` — regenerate the paper's claimed bounds.
//!
//! ```text
//! repro --list              list experiments
//! repro E08 E04             run selected experiments (quick scale)
//! repro all                 run everything
//! repro all --full          the sweeps recorded in EXPERIMENTS.md
//! repro all --jobs 4        run experiments on 4 worker threads
//! repro all --markdown out/ write per-experiment markdown files
//! repro all --deadline 60s  stop starting new experiments after 60s
//! ```
//!
//! Experiments run concurrently on the [`mcp_exec`] pool; finished
//! reports print in ID order as each ordered prefix completes, and the
//! output is bit-identical for every `--jobs` value (add `--no-timing`
//! to also zero the measured-milliseconds table cells in E12/E13).
//!
//! Robustness contract: a panicking experiment is contained to its own
//! slot (reported FAILED with the panic message; the rest of the fleet
//! completes). Past `--deadline`, or after Ctrl-C, experiments not yet
//! started report `Truncated` instead of running. Exit codes: 0 all
//! confirmed, 1 any failure, 2 usage error, 3 partial (truncations but
//! no failures).

use mcp_analysis::{registry, Report, Scale, Verdict};
use std::io::Write;
use std::time::Instant;

/// Exit code for "ran with truncations but nothing failed".
const EXIT_PARTIAL: i32 = 3;

/// Per-experiment attempt budget: a panicking experiment is retried in
/// deterministic order, so faults injected by a bounded `MCP_CHAOS` plan
/// always clear; an experiment that fails every attempt is quarantined
/// (reported FAILED) while the rest of the fleet completes.
const EXPERIMENT_ATTEMPTS: u32 = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }

    let experiments = registry();

    if args.iter().any(|a| a == "--list") {
        for e in &experiments {
            println!("{}  {}", e.id(), e.title());
        }
        return;
    }

    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if args.iter().any(|a| a == "--no-timing") {
        mcp_analysis::timing::set_deterministic(true);
    }
    let jobs: usize = match option_value(&args, "--jobs") {
        Ok(v) => match v.map(|s| s.parse::<usize>()) {
            None => mcp_exec::resolved_jobs(),
            Some(Ok(n)) if n >= 1 => n,
            Some(_) => usage_error("--jobs needs a positive integer"),
        },
        Err(msg) => usage_error(&msg),
    };
    mcp_exec::set_jobs(Some(jobs));
    let deadline: Option<Instant> = match option_value(&args, "--deadline") {
        Ok(None) => None,
        Ok(Some(v)) => match mcp_core::budget::parse_duration(&v) {
            Ok(d) => Some(Instant::now() + d),
            Err(e) => usage_error(&format!("--deadline: {e}")),
        },
        Err(msg) => usage_error(&msg),
    };
    let markdown_dir = dir_option(&args, "--markdown");
    let json_dir = dir_option(&args, "--json");

    let run_all = args.iter().any(|a| a == "all");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "all" && !is_option_value(&args, a))
        .map(|a| a.to_uppercase())
        .collect();

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| run_all || wanted.iter().any(|w| w == e.id()))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
    for dir in [&markdown_dir, &json_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro: creating output dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // A Ctrl-C flips the process-wide cancel flag; experiments that have
    // not started yet report Truncated instead of running.
    mcp_core::budget::install_ctrlc_handler();
    // MCP_CHAOS arms a deterministic fault plan (injected panics/stalls
    // around experiments, faulted report writes); the retry budget below
    // clears any bounded plan's faults.
    mcp_chaos::arm_from_env();
    // Test hook: force the named experiment's worker to panic, exercising
    // the fault-containment path from the outside.
    let force_panic = std::env::var("MCP_REPRO_PANIC").ok();

    // Fan the experiment fleet out over the pool. Workers write the
    // per-experiment report files (independent paths); the caller thread
    // prints each finished report in ID order as soon as every earlier
    // report is also done. A panic inside one experiment is contained to
    // its slot: the rest of the fleet still completes and the panic is
    // reported as a FAILED entry.
    let wall = mcp_analysis::timing::Stopwatch::start();
    let pool = mcp_exec::Pool::new(jobs);
    let stdout = std::io::stdout();
    let results = pool.par_try_map_retry_emit(
        "repro.experiment",
        EXPERIMENT_ATTEMPTS,
        &selected,
        |_, e| {
            if force_panic.as_deref() == Some(e.id()) {
                panic!("MCP_REPRO_PANIC: injected fault in {}", e.id());
            }
            let truncation = if mcp_core::budget::cancel_requested() {
                Some("cancelled before start (Ctrl-C)".to_string())
            } else if deadline.is_some_and(|d| Instant::now() >= d) {
                Some("deadline reached before start".to_string())
            } else {
                None
            };
            let sw = mcp_analysis::timing::Stopwatch::start();
            let report = match truncation {
                Some(reason) => truncated_report(e.id(), e.title(), e.claim(), reason),
                None => e.run(scale),
            };
            let secs = sw.secs();
            // Atomic report writes (temp + fsync + rename): a fault or
            // crash mid-write never leaves a torn file at the target. A
            // genuine write failure panics with the path — contained to
            // this slot and reported FAILED, the fleet completes.
            if let Some(dir) = &markdown_dir {
                let path = dir.join(format!("{}.md", report.id));
                mcp_chaos::io::atomic_write(&path, report.to_markdown().as_bytes(), "repro.report")
                    .unwrap_or_else(|e| panic!("writing report {}: {e}", path.display()));
            }
            if let Some(dir) = &json_dir {
                let path = dir.join(format!("{}.json", report.id));
                mcp_chaos::io::atomic_write(
                    &path,
                    report.to_json_pretty().as_bytes(),
                    "repro.report",
                )
                .unwrap_or_else(|e| panic!("writing report {}: {e}", path.display()));
            }
            let status = match report.verdict {
                Verdict::Confirmed => Status::Confirmed,
                Verdict::Truncated(_) => Status::Truncated,
                _ => Status::NotConfirmed,
            };
            (report.to_text(), secs, status)
        },
        |i, slot| {
            let mut out = stdout.lock();
            match slot {
                Ok((text, secs, _)) => {
                    let _ = writeln!(out, "{text}");
                    let _ = writeln!(out, "({secs:.2}s)\n");
                }
                Err(quarantined) => {
                    let _ = writeln!(out, "=== {}: FAILED ===", selected[i].id());
                    let _ = writeln!(out, "{quarantined}\n");
                }
            }
        },
    );

    let confirmed = results
        .iter()
        .filter(|r| matches!(r, Ok((_, _, Status::Confirmed))))
        .count();
    let truncated = results
        .iter()
        .filter(|r| matches!(r, Ok((_, _, Status::Truncated))))
        .count();
    let failures = results.len() - confirmed - truncated;
    let cpu: f64 = results
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|(_, secs, _)| *secs))
        .sum();
    let breakdown = if failures > 0 || truncated > 0 {
        format!(" ({failures} failed, {truncated} truncated)")
    } else {
        String::new()
    };
    println!(
        "total: {confirmed}/{} confirmed{breakdown} · wall-clock {:.2}s (cpu {cpu:.2}s) · jobs={jobs}",
        results.len(),
        wall.secs(),
    );
    if failures > 0 {
        eprintln!("{failures} experiment(s) did not confirm their claim");
        std::process::exit(1);
    }
    if truncated > 0 {
        eprintln!("{truncated} experiment(s) truncated by the deadline or Ctrl-C (partial run)");
        std::process::exit(EXIT_PARTIAL);
    }
}

/// How one experiment slot ended, for the summary line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Confirmed,
    NotConfirmed,
    Truncated,
}

/// Stub report for an experiment skipped by the deadline or a Ctrl-C.
fn truncated_report(id: &str, title: &str, claim: &str, reason: String) -> Report {
    Report {
        id: id.into(),
        title: title.into(),
        claim: claim.into(),
        tables: Vec::new(),
        verdict: Verdict::Truncated(reason),
        notes: vec!["not run; re-run without --deadline for the full evaluation".into()],
    }
}

/// The value following `--<name>`, or an error if the option is present
/// with no value (or with another option where its value belongs).
fn option_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{name} needs a value")),
        },
    }
}

/// Whether `token` is the value slot of some `--option value` pair.
fn is_option_value(args: &[String], token: &String) -> bool {
    args.iter()
        .position(|a| std::ptr::eq(a, token))
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .map(|prev| {
            matches!(
                prev.as_str(),
                "--markdown" | "--json" | "--jobs" | "--deadline"
            )
        })
        .unwrap_or(false)
}

fn dir_option(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    match option_value(args, name) {
        Ok(v) => v.map(std::path::PathBuf::from),
        Err(_) => usage_error(&format!("{name} needs a directory argument")),
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro <IDS>|all [--full] [--jobs N] [--no-timing] [--deadline DUR] [--markdown DIR] [--json DIR]"
    );
    std::process::exit(2);
}

fn print_help() {
    println!(
        "repro — regenerate every bound claimed in 'Paging for Multicore Processors'\n\n\
         usage:\n  repro --list\n  repro <IDS>... [--full] [--jobs N] [--no-timing] [--deadline DUR] [--markdown DIR] [--json DIR]\n  repro all [--full] [--jobs N] [--no-timing] [--deadline DUR] [--markdown DIR] [--json DIR]\n\n\
         Scales: default quick (seconds/experiment); --full matches EXPERIMENTS.md.\n\
         Parallelism: --jobs N (default MCP_JOBS or the hardware); reports still\n\
         print in ID order and are bit-identical for every jobs value.\n\
         --no-timing zeroes measured-time table cells for byte-comparable output.\n\
         --deadline DUR (30s, 500ms, 2m): experiments not started before the\n\
         deadline (or after a Ctrl-C) report Truncated instead of running.\n\n\
         exit codes: 0 all confirmed · 1 any failure · 2 usage error ·\n\
         3 partial (truncated experiments, no failures)."
    );
}
