//! `repro` — regenerate the paper's claimed bounds.
//!
//! ```text
//! repro --list              list experiments
//! repro E08 E04             run selected experiments (quick scale)
//! repro all                 run everything
//! repro all --full          the sweeps recorded in EXPERIMENTS.md
//! repro all --markdown out/ write per-experiment markdown files
//! ```

use mcp_analysis::{registry, Scale, Verdict};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }

    let experiments = registry();

    if args.iter().any(|a| a == "--list") {
        for e in &experiments {
            println!("{}  {}", e.id(), e.title());
        }
        return;
    }

    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let markdown_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--markdown")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let json_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    let run_all = args.iter().any(|a| a == "all");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "all")
        .map(|a| a.to_uppercase())
        .collect();

    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| run_all || wanted.iter().any(|w| w == e.id()))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
    if let Some(dir) = &markdown_dir {
        std::fs::create_dir_all(dir).expect("create markdown output dir");
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }

    let mut failures = 0usize;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for e in selected {
        let started = std::time::Instant::now();
        let report = e.run(scale);
        let secs = started.elapsed().as_secs_f64();
        let _ = writeln!(out, "{}", report.to_text());
        let _ = writeln!(out, "({secs:.2}s)\n");
        if let Some(dir) = &markdown_dir {
            let path = dir.join(format!("{}.md", report.id));
            std::fs::write(&path, report.to_markdown()).expect("write markdown report");
        }
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("{}.json", report.id));
            std::fs::write(&path, report.to_json_pretty()).expect("write json report");
        }
        if !matches!(report.verdict, Verdict::Confirmed) {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) did not confirm their claim");
        std::process::exit(1);
    }
}

fn print_help() {
    println!(
        "repro — regenerate every bound claimed in 'Paging for Multicore Processors'\n\n\
         usage:\n  repro --list\n  repro <IDS>... [--full] [--markdown DIR] [--json DIR]\n  repro all [--full] [--markdown DIR] [--json DIR]\n\n\
         Scales: default quick (seconds/experiment); --full matches EXPERIMENTS.md."
    );
}
