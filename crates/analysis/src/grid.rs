//! Grid enumeration: the row-major cartesian products every sweep loop
//! and the tournament share, materialized as `Vec`s so they can be handed
//! straight to `mcp_exec::Pool::par_map` (which takes a slice and
//! preserves input order — the enumeration order *is* the output order).
//!
//! Row-major means the **last** axis varies fastest, matching the nested
//! `for` loops these calls replace.

/// All `(a, b)` pairs, `b` fastest.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// All `(a, b, c)` triples, `c` fastest.
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// All `(a, b, c, d)` quadruples, `d` fastest.
pub fn grid4<A: Clone, B: Clone, C: Clone, D: Clone>(
    a: &[A],
    b: &[B],
    c: &[C],
    d: &[D],
) -> Vec<(A, B, C, D)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len() * d.len());
    for x in a {
        for y in b {
            for z in c {
                for u in d {
                    out.push((x.clone(), y.clone(), z.clone(), u.clone()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_order_matches_nested_loops() {
        assert_eq!(
            grid2(&[1, 2], &["a", "b", "c"]),
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
        assert_eq!(
            grid3(&[1, 2], &[10], &[100, 200]),
            vec![(1, 10, 100), (1, 10, 200), (2, 10, 100), (2, 10, 200)]
        );
        assert_eq!(
            grid4(&[1], &[2], &[3], &[4, 5]),
            vec![(1, 2, 3, 4), (1, 2, 3, 5)]
        );
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let none: &[u8] = &[];
        assert!(grid2(none, &[1, 2]).is_empty());
        assert!(grid3(&[1], none, &[2]).is_empty());
    }
}
