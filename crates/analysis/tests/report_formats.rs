//! Report-format integration tests: reports serialize to JSON, render to
//! every output format, and the registry's quick runs produce
//! well-formed tables.

use mcp_analysis::{registry, Scale, Verdict};

#[test]
fn reports_serialize_to_json() {
    // Run the three cheapest experiments and serialize their reports.
    for e in registry()
        .into_iter()
        .filter(|e| ["E01", "E04", "E07"].contains(&e.id()))
    {
        let report = e.run(Scale::Quick);
        let json = report.to_json();
        assert!(json.contains(&format!("\"id\":\"{}\"", e.id())));
        assert!(json.contains("Confirmed"), "{json}");
    }
}

#[test]
fn every_report_renders_all_formats() {
    for e in registry()
        .into_iter()
        .filter(|e| ["E02", "E05"].contains(&e.id()))
    {
        let report = e.run(Scale::Quick);
        let text = report.to_text();
        assert!(text.contains(&format!("=== {}", e.id())));
        assert!(text.contains("claim:"));
        let md = report.to_markdown();
        assert!(md.contains(&format!("## {}", e.id())));
        assert!(md.contains("**Verdict:**"));
        for table in &report.tables {
            let csv = table.to_csv();
            // Header plus at least one data row.
            assert!(csv.lines().count() >= 2, "{csv}");
            assert_eq!(
                csv.lines().next().unwrap().split(',').count(),
                table.columns.len(),
                "CSV header arity"
            );
        }
    }
}

#[test]
fn quick_and_full_scales_agree_on_verdicts_for_cheap_experiments() {
    // The scale changes sweep sizes, never the claim: spot-check one cheap
    // experiment at both scales.
    let e04 = registry().into_iter().find(|e| e.id() == "E04").unwrap();
    assert!(matches!(e04.run(Scale::Quick).verdict, Verdict::Confirmed));
    assert!(matches!(e04.run(Scale::Full).verdict, Verdict::Confirmed));
}
