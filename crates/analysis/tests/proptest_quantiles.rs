//! Property test of the [`QuantileSketch`] relative-error guarantee:
//! for arbitrary nonnegative streams and any probed quantile, the sketch
//! answer is within `α` relative error of the exact sorted-array
//! quantile at the same rank, and merging split streams loses nothing.

use mcp_analysis::stats::QuantileSketch;
use proptest::prelude::*;

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sketch_within_alpha_of_exact(
        raw in prop::collection::vec(0u64..1_000_000_000_000, 1..400),
        alpha_pm in 5u32..80, // α in [0.005, 0.08)
        q_pm in 0u32..1001,
    ) {
        // Milli-unit integers -> nonnegative floats spanning 9 decades.
        let values: Vec<f64> = raw.iter().map(|&v| v as f64 * 0.001).collect();
        let alpha = alpha_pm as f64 / 1000.0;
        let q = q_pm as f64 / 1000.0;
        let mut sk = QuantileSketch::new(alpha);
        for &v in &values {
            sk.add(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_quantile(&sorted, q);
        let est = sk.quantile(q).expect("non-empty sketch answers");
        prop_assert!(
            (est - exact).abs() <= alpha * exact + 1e-9,
            "alpha={} q={}: est {} vs exact {}", alpha, q, est, exact
        );
    }

    #[test]
    fn merged_split_streams_answer_like_one(
        raw in prop::collection::vec(0u64..1_000_000_000, 2..300),
        split_pm in 0u32..1001,
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| v as f64 * 0.001).collect();
        let split = (values.len() * split_pm as usize) / 1001;
        let (lo, hi) = values.split_at(split);
        let mut a = QuantileSketch::new(0.01);
        let mut whole = QuantileSketch::new(0.01);
        for &v in lo {
            a.add(v);
        }
        let mut b = QuantileSketch::new(0.01);
        for &v in hi {
            b.add(v);
        }
        for &v in &values {
            whole.add(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(a.quantile(q), whole.quantile(q), "q={}", q);
        }
    }
}
