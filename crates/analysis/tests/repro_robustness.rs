//! Resource-governance contract of the `repro` binary, end-to-end:
//! a panicking experiment is contained to its own slot (exit 1, fleet
//! completes), an expired `--deadline` truncates not-yet-started
//! experiments (exit 3), and malformed `--deadline` values exit 2.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn injected_panic_is_contained_to_its_slot() {
    let out = repro()
        .args(["E01", "E02", "E03", "--jobs", "2"])
        .env("MCP_REPRO_PANIC", "E02")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "a failed experiment exits 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("=== E02: FAILED ==="),
        "panicking experiment must be reported FAILED:\n{stdout}"
    );
    assert!(
        stdout.contains("injected fault in E02"),
        "panic message must be surfaced:\n{stdout}"
    );
    // The siblings still ran to completion.
    for id in ["E01", "E03"] {
        assert!(
            stdout.contains(&format!("=== {id}: ")) && !stdout.contains(&format!("{id}: FAILED")),
            "{id} must complete despite E02 panicking:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("total: 2/3 confirmed (1 failed, 0 truncated)"),
        "summary must count the failure:\n{stdout}"
    );
}

#[test]
fn expired_deadline_truncates_with_partial_exit_code() {
    let out = repro()
        .args(["E01", "E02", "--deadline", "0s", "--jobs", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "truncated-only run exits 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout
            .matches("Truncated(\"deadline reached before start\")")
            .count(),
        2,
        "both experiments must report Truncated:\n{stdout}"
    );
    assert!(
        stdout.contains("total: 0/2 confirmed (0 failed, 2 truncated)"),
        "summary must count the truncations:\n{stdout}"
    );
}

#[test]
fn truncated_verdict_round_trips_through_json_reports() {
    let dir = std::env::temp_dir().join(format!("repro_trunc_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = repro()
        .args(["E01", "--deadline", "0s", "--json", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let json = std::fs::read_to_string(dir.join("E01.json")).expect("truncated report written");
    assert!(
        json.contains("\"Truncated\": \"deadline reached before start\""),
        "JSON must carry the Truncated verdict:\n{json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_deadline_exits_2() {
    for args in [
        &["all", "--deadline"][..],
        &["all", "--deadline", "soon"][..],
        &["all", "--deadline", "-5s"][..],
    ] {
        let out = repro().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "expected exit 2 for {args:?}");
    }
}
