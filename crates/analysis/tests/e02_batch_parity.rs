//! Satellite gate: E02 ported to the batch engine must produce a JSON
//! report byte-equal to the per-run path, at every worker count.

use mcp_analysis::experiments::e02_lemma1_upper::{E02Engine, E02};
use mcp_analysis::Scale;

#[test]
fn batch_and_per_run_reports_are_byte_equal_at_every_jobs_level() {
    let reference = E02::run_with(Scale::Quick, E02Engine::PerRun).to_json();
    for jobs in [1usize, 2, 4] {
        mcp_exec::set_jobs(Some(jobs));
        let per_run = E02::run_with(Scale::Quick, E02Engine::PerRun).to_json();
        let batch = E02::run_with(Scale::Quick, E02Engine::Batch).to_json();
        assert_eq!(per_run, reference, "per-run path drifted at jobs={jobs}");
        assert_eq!(batch, reference, "batch path differs at jobs={jobs}");
    }
    mcp_exec::set_jobs(None);
}
