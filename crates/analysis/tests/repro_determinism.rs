//! The tentpole guarantee of the exec layer, checked end-to-end on the
//! built `repro` binary: the quick-scale battery produces bit-identical
//! per-experiment JSON for every `--jobs` value, and the argument-parsing
//! fixes (trailing `--markdown`/`--json`, bad `--jobs`) exit 2 instead of
//! silently misbehaving.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_det_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn read_all_json(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("json dir exists") {
        let path = entry.unwrap().path();
        out.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read_to_string(&path).unwrap(),
        );
    }
    out
}

#[test]
fn json_reports_are_bit_identical_across_jobs() {
    let d1 = tmp_dir("j1");
    let d4 = tmp_dir("j4");
    for (dir, jobs) in [(&d1, "1"), (&d4, "4")] {
        let out = repro()
            .args([
                "all",
                "--no-timing",
                "--jobs",
                jobs,
                "--json",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("run repro");
        assert!(out.status.success(), "repro --jobs {jobs} failed");
    }
    let j1 = read_all_json(&d1);
    let j4 = read_all_json(&d4);
    assert_eq!(j1.len(), 21, "one JSON report per experiment");
    assert_eq!(j1, j4, "per-experiment JSON must not depend on --jobs");
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d4).ok();
}

#[test]
fn reports_stream_in_id_order_with_a_summary_line() {
    let out = repro()
        .args(["E01", "E04", "E03", "--jobs", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let positions: Vec<usize> = ["E01", "E03", "E04"]
        .iter()
        .map(|id| stdout.find(&format!("=== {id}: ")).expect("report printed"))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "reports must print in ID order:\n{stdout}"
    );
    let summary = stdout.lines().rev().find(|l| !l.is_empty()).unwrap();
    assert!(
        summary.starts_with("total: 3/3 confirmed") && summary.contains("jobs=2"),
        "missing summary line, got: {summary}"
    );
}

#[test]
fn trailing_markdown_or_json_without_dir_exits_2() {
    for args in [
        &["all", "--markdown"][..],
        &["all", "--json"][..],
        &["all", "--markdown", "--json", "d"][..],
        &["E01", "--json", "--full"][..],
    ] {
        let out = repro().args(args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected exit 2 for {args:?}, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("needs a"),
            "stderr must explain the missing value for {args:?}"
        );
    }
}

#[test]
fn bad_jobs_values_exit_2() {
    for args in [
        &["all", "--jobs"][..],
        &["all", "--jobs", "0"][..],
        &["all", "--jobs", "many"][..],
    ] {
        let out = repro().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "expected exit 2 for {args:?}");
    }
}
