//! Non-disjoint workload semantics: the documented model choices for
//! pages shared across cores (join-fetch misses, cross-core hits).

use mcp_core::{
    simulate, Cache, CacheStrategy, Outcome, PageId, SimConfig, Simulator, Time, Workload,
};

struct FirstFit;
impl CacheStrategy for FirstFit {
    fn name(&self) -> String {
        "FirstFit".into()
    }
    fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
        cache
            .empty_cell()
            .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
            .expect("victim exists")
    }
}

#[test]
fn simultaneous_same_page_miss_costs_one_cell_two_faults() {
    // All three cores request the same page at t = 1: core 0 places the
    // fetch, cores 1 and 2 join it.
    let w = Workload::from_u32([vec![1], vec![1], vec![1]]).unwrap();
    let mut sim = Simulator::new(&w, SimConfig::new(3, 4), FirstFit).unwrap();
    let step = sim.step().unwrap().unwrap();
    assert!(matches!(step.served[0].outcome, Outcome::Fault { .. }));
    assert_eq!(step.served[1].outcome, Outcome::SharedFetchMiss);
    assert_eq!(step.served[2].outcome, Outcome::SharedFetchMiss);
    assert_eq!(sim.cache().occupied(), 1, "one fetch serves all three");
    let r = sim.run().unwrap();
    assert_eq!(r.faults, vec![1, 1, 1], "each core logs its own miss");
}

#[test]
fn staggered_requests_hit_after_the_fetch_completes() {
    // Core 1 asks for the shared page after core 0's fetch lands: a hit.
    let w = Workload::from_u32([vec![1, 1, 1, 1, 1], vec![9, 9, 9, 9, 1]]).unwrap();
    let r = simulate(&w, SimConfig::new(2, 2), FirstFit).unwrap();
    // Core 1: one cold miss on 9, then hits, then a *hit* on the shared 1
    // (fetched by core 0 at t=1, resident from t=3; core 1 reaches it at
    // t=7).
    assert_eq!(r.faults[1], 1);
    assert_eq!(r.hits[1], 4);
}

#[test]
fn shared_hotset_runs_all_strategies_cleanly() {
    // The documented non-disjoint semantics must hold up across the
    // strategy families (no panics, conservation intact).
    use mcp_policies::{shared_lru, static_partition_lru, LruMimicPartition, Partition};
    let w = mcp_workloads::shared_hotset(3, 300, 12, 4, 0.4, 11);
    let cfg = SimConfig::new(9, 2);
    for r in [
        simulate(&w, cfg, shared_lru()).unwrap(),
        simulate(&w, cfg, static_partition_lru(Partition::equal(9, 3))).unwrap(),
        simulate(&w, cfg, LruMimicPartition::new()).unwrap(),
    ] {
        assert_eq!(r.total_faults() + r.total_hits(), 900);
        for core in 0..3 {
            assert_eq!(r.faults[core] + r.hits[core], 300);
        }
    }
}

#[test]
fn sharing_reduces_faults_versus_private_copies() {
    // The same traffic with a genuinely shared hot set should fault less
    // under a shared cache than if each core had a private copy of it
    // (the shared pages are fetched once, not p times).
    use mcp_policies::shared_lru;
    let shared = mcp_workloads::shared_hotset(3, 400, 8, 4, 0.5, 3);
    // Privatize: remap each core's shared pages into its own range.
    let privatized = Workload::new(
        shared
            .sequences()
            .iter()
            .enumerate()
            .map(|(core, seq)| {
                seq.iter()
                    .map(|p| {
                        if p.0 >= u32::MAX - 4 {
                            PageId(p.0 - (core as u32 + 1) * 1000)
                        } else {
                            *p
                        }
                    })
                    .collect()
            })
            .collect(),
    )
    .unwrap();
    let cfg = SimConfig::new(12, 2);
    let f_shared = simulate(&shared, cfg, shared_lru()).unwrap().total_faults();
    let f_private = simulate(&privatized, cfg, shared_lru())
        .unwrap()
        .total_faults();
    assert!(
        f_shared < f_private,
        "sharing must help: shared {f_shared} vs privatized {f_private}"
    );
}
