//! Property tests of [`CapacitySchedule`] itself: the CLI `SPEC` grammar
//! round-trips through `Display`/`parse`, `k_at` honors the
//! effective-at-its-time boundary semantics, and every engine rejects a
//! schedule that dips below one page per open core with the typed
//! [`ModelError::CapacityBelowCores`].

use mcp_core::online::OnlineSimulator;
use mcp_core::{
    simulate_tick_with_capacity, simulate_with_capacity, Cache, CacheStrategy, CapacitySchedule,
    ModelError, PageId, SimConfig, SimError, Time, Workload,
};
use proptest::prelude::*;

/// Arbitrary canonical schedules: an initial capacity plus step deltas
/// with strictly increasing times. `CapacitySchedule::new` drops no-op
/// steps, so the constructed value is canonical by definition.
fn arb_schedule() -> impl Strategy<Value = CapacitySchedule> {
    (
        1usize..12,
        prop::collection::vec((1u64..6, 1usize..12), 0..5),
    )
        .prop_map(|(initial, deltas)| {
            let mut t: Time = 0;
            let steps: Vec<(Time, usize)> = deltas
                .into_iter()
                .map(|(dt, k)| {
                    t += dt;
                    (t, k)
                })
                .collect();
            CapacitySchedule::new(initial, steps).unwrap()
        })
}

/// A minimal legal strategy: first empty cell, else first evictable.
struct FirstFit;

impl CacheStrategy for FirstFit {
    fn name(&self) -> String {
        "FirstFit".into()
    }
    fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
        cache
            .empty_cell()
            .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
            .expect("a legal cell exists")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn display_parse_round_trips(schedule in arb_schedule()) {
        let text = schedule.to_string();
        let back: CapacitySchedule = text.parse().unwrap();
        prop_assert_eq!(&back, &schedule, "{} did not round-trip", text);
        // And the canonical form is a fixed point of the round-trip.
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn k_at_honors_step_boundaries(schedule in arb_schedule(), probe in 0u64..40) {
        // Walk the piecewise definition by hand: a step takes effect AT
        // its time and holds until the next one.
        let mut expected = schedule.initial_k();
        for &(time, k) in schedule.changes() {
            if time <= probe {
                expected = k;
            }
        }
        prop_assert_eq!(schedule.k_at(probe), expected);
        // Exact boundary semantics at every change point.
        for &(time, k) in schedule.changes() {
            prop_assert_eq!(schedule.k_at(time), k, "effective at its own tick");
            let before = schedule
                .changes()
                .iter()
                .take_while(|(t, _)| *t < time)
                .last()
                .map(|&(_, k)| k)
                .unwrap_or(schedule.initial_k());
            prop_assert_eq!(schedule.k_at(time - 1), before, "previous value holds at t-1");
        }
        prop_assert!(schedule.min_k() <= schedule.k_at(probe));
        prop_assert!(schedule.k_at(probe) <= schedule.max_k());
    }

    #[test]
    fn every_engine_rejects_capacity_below_cores(
        cores in 2usize..4,
        dip_raw in 1usize..4,
        at in 1u64..6,
    ) {
        let dip = dip_raw.min(cores - 1);
        let k = cores + 1;
        let schedule = CapacitySchedule::new(k, vec![(at, dip)]).unwrap();
        let w = Workload::new(
            (0..cores).map(|c| vec![PageId(c as u32); 3]).collect::<Vec<_>>(),
        )
        .unwrap();
        let cfg = SimConfig::new(k, 1);
        let expected = SimError::Model(ModelError::CapacityBelowCores { min_k: dip, cores });
        prop_assert_eq!(
            simulate_with_capacity(&w, cfg, schedule.clone(), FirstFit).unwrap_err(),
            expected.clone()
        );
        prop_assert_eq!(
            simulate_tick_with_capacity(&w, cfg, schedule.clone(), FirstFit).unwrap_err(),
            expected.clone()
        );
        prop_assert_eq!(
            OnlineSimulator::with_capacity(cores, cfg, schedule, FirstFit)
                .err()
                .expect("online engine must reject too"),
            expected
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors_not_panics(
        chars in prop::collection::vec(0usize..10, 0..12),
    ) {
        const CHARSET: [char; 10] = ['0', '1', '7', '9', '@', ',', ' ', 'x', 'k', '-'];
        let text: String = chars.into_iter().map(|i| CHARSET[i]).collect();
        // Whatever the outcome, parsing must be total: either a schedule
        // that round-trips or a CapacityError.
        if let Ok(schedule) = text.parse::<CapacitySchedule>() {
            let canon = schedule.to_string();
            prop_assert_eq!(canon.parse::<CapacitySchedule>().unwrap(), schedule);
        }
    }
}
