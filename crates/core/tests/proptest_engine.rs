//! Property tests of the engine: model invariants under arbitrary
//! workloads, configurations, and (randomized but legal) victim choices.

use mcp_core::{
    simulate, Cache, CacheStrategy, Outcome, PageId, SimConfig, Simulator, Time, Workload,
};
use proptest::prelude::*;

/// A legal strategy whose victim choice is driven by a seed: uses empty
/// cells first, then picks the `(seed + fault#)`-th evictable cell.
struct SeededVictim {
    seed: u64,
    faults: u64,
}

impl SeededVictim {
    fn new(seed: u64) -> Self {
        SeededVictim { seed, faults: 0 }
    }
}

impl CacheStrategy for SeededVictim {
    fn name(&self) -> String {
        "SeededVictim".into()
    }
    fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
        self.faults += 1;
        if let Some(cell) = cache.empty_cell() {
            return cell;
        }
        let cells: Vec<usize> = cache.evictable_cells().map(|(i, _, _)| i).collect();
        cells[(self.seed.wrapping_add(self.faults) as usize) % cells.len()]
    }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    // p in 1..=3, per-core length 0..=15, per-core universe 1..=4 pages,
    // cores disjoint by construction.
    prop::collection::vec(prop::collection::vec(0u32..4, 0..15), 1..=3).prop_map(|seqs| {
        let shifted: Vec<Vec<PageId>> = seqs
            .into_iter()
            .enumerate()
            .map(|(core, s)| {
                s.into_iter()
                    .map(|v| PageId(core as u32 * 100 + v))
                    .collect()
            })
            .collect();
        Workload::new(shifted).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_conservation_and_bounds(
        w in arb_workload(),
        extra_k in 0usize..4,
        tau in 0u64..5,
        seed in 0u64..1000,
    ) {
        let k = w.num_cores() + extra_k;
        let cfg = SimConfig::new(k, tau);
        let r = simulate(&w, cfg, SeededVictim::new(seed)).unwrap();
        let n = w.total_len() as u64;
        prop_assert_eq!(r.total_faults() + r.total_hits(), n);
        prop_assert!(r.total_faults() >= w.universe_size() as u64 || n == 0);
        prop_assert!(r.makespan <= n * (tau + 1));
        prop_assert!(r.makespan >= w.max_len() as u64);
        for core in 0..w.num_cores() {
            prop_assert_eq!(r.faults[core] + r.hits[core], w.len(core) as u64);
            prop_assert!(r.fault_times[core].windows(2).all(|x| x[0] < x[1]));
            // Issue times live within the horizon.
            if let Some(&last) = r.fault_times[core].last() {
                prop_assert!(last <= r.makespan);
            }
        }
    }

    #[test]
    fn stepping_equals_running(
        w in arb_workload(),
        tau in 0u64..4,
        seed in 0u64..1000,
    ) {
        let cfg = SimConfig::new(w.num_cores() + 1, tau);
        let whole = simulate(&w, cfg, SeededVictim::new(seed)).unwrap();
        let mut sim = Simulator::new(&w, cfg, SeededVictim::new(seed)).unwrap();
        let mut steps = 0usize;
        while sim.step().unwrap().is_some() {
            steps += 1;
            prop_assert!(steps <= w.total_len() * (tau as usize + 2) + 2);
        }
        prop_assert!(sim.finished());
        let stepped = {
            // Re-run via run() for an identical result object.
            let sim2 = Simulator::new(&w, cfg, SeededVictim::new(seed)).unwrap();
            sim2.run().unwrap()
        };
        prop_assert_eq!(whole, stepped);
    }

    #[test]
    fn trace_accounts_every_request(
        w in arb_workload(),
        tau in 0u64..4,
        seed in 0u64..1000,
    ) {
        let cfg = SimConfig::new(w.num_cores() + 1, tau);
        let sim = Simulator::new(&w, cfg, SeededVictim::new(seed)).unwrap();
        let (result, trace) = sim.run_with_trace().unwrap();
        let served: usize = trace.iter().map(|s| s.served.len()).sum();
        prop_assert_eq!(served, w.total_len());
        let faults = trace
            .iter()
            .flat_map(|s| &s.served)
            .filter(|s| !matches!(s.outcome, Outcome::Hit))
            .count() as u64;
        prop_assert_eq!(faults, result.total_faults());
        prop_assert!(trace.windows(2).all(|x| x[0].time < x[1].time));
    }

    #[test]
    fn disjoint_single_page_cores_fault_once(
        pages in prop::collection::vec(1usize..8, 1..4),
        tau in 0u64..4,
    ) {
        // Each core repeats one private page: exactly one cold miss each.
        let w = Workload::new(
            pages
                .iter()
                .enumerate()
                .map(|(c, &n)| vec![PageId(c as u32); n])
                .collect(),
        )
        .unwrap();
        let cfg = SimConfig::new(pages.len(), tau);
        let r = simulate(&w, cfg, SeededVictim::new(0)).unwrap();
        for core in 0..pages.len() {
            prop_assert_eq!(r.faults[core], 1);
        }
    }

    #[test]
    fn larger_cache_never_hurts_seeded_victims_on_single_core(
        seq in prop::collection::vec(0u32..5, 1..20),
        tau in 0u64..3,
    ) {
        // With p=1 and the FIRST-evictable victim rule (seed 0 picks a
        // deterministic cell), a strictly larger cache holds a superset…
        // not guaranteed for arbitrary policies, but guaranteed when the
        // cache is large enough to hold the whole universe: only cold
        // misses remain.
        let w = Workload::new(vec![seq.iter().map(|&v| PageId(v)).collect()]).unwrap();
        let big = SimConfig::new(w.universe_size().max(1), tau);
        let r = simulate(&w, big, SeededVictim::new(0)).unwrap();
        prop_assert_eq!(r.total_faults(), w.universe_size() as u64);
    }
}
