//! The discrete-event simulation engine.
//!
//! Semantics (Section 3 of the paper, pinned down):
//!
//! * Time is discrete; core `j`'s first request issues at `t = 1`.
//! * All cores whose next request is due at `t` are served at `t`, in
//!   increasing core order (the fixed logical order); a request served
//!   later within the timestep observes the cache effects of earlier ones.
//! * A **hit** completes at `t`; the core's next request issues at `t + 1`.
//! * A **miss** evicts a victim immediately, reserves the cell for the
//!   fetch (unusable and unevictable until done), completes at `t + τ`,
//!   and the core's next request issues at `t + τ + 1`. Thus a miss delays
//!   all remaining requests of that core by the additive term `τ`.
//! * A request for a page that is mid-fetch for *another* core (possible
//!   only for non-disjoint workloads) counts as a fault for the requesting
//!   core and delays it by `τ`, but allocates no second cell.
//! * All pages requested in a parallel step are read in parallel, so none
//!   of them may be evicted during that step (they are *pinned*). This
//!   mirrors the `R(x) ⊆ C'` constraint of the paper's Algorithms 1 and 2
//!   and makes DP optima exactly achievable by the engine. Pins are placed
//!   before the strategy's voluntary evictions run, so a voluntary
//!   eviction of a currently requested page is rejected too.
//! * Strategies cannot delay or reorder requests.
//! * The engine fast-forwards over timesteps at which no request is due,
//!   except those a strategy declares via
//!   [`crate::CacheStrategy::next_voluntary_time`]: the paper's model
//!   permits voluntary evictions at any timestep, including ones where
//!   every core is mid-fetch.
//!
//! # The event engine
//!
//! [`Simulator`] realizes these semantics as a discrete-event scheduler
//! rather than a per-step core scan (DESIGN §11). Wake-ups live in
//! min-queues keyed by `(next_time, component_id)`:
//!
//! * **request-issue events** — exactly one live entry per unfinished
//!   core, keyed by the core's clock (the time its next request issues);
//! * **fetch-completion events** — drained at the start of each served
//!   step so every fetch due by `t` reads as `Present` before pins,
//!   voluntary evictions, and service (exactly the old lazy
//!   `promote_due`). A fetch completes exactly when its core's next
//!   request issues, so for non-final requests the completion rides the
//!   core's own issue wake-up (`pending_promote`); only fetches started
//!   by a core's final request get their own heap entry;
//! * **strategy-declared voluntary times** — consulted from
//!   [`crate::CacheStrategy::next_voluntary_time`] before each step (the
//!   declaration may move after every step, so it is re-read rather than
//!   queued; the boundary contract is documented on the trait method).
//!
//! Popping `(time, core)` pairs from a min-heap yields, for a given
//! timestep, exactly the due cores in increasing core order — the model's
//! fixed logical order — so within-step semantics (promote due fetches,
//! then pins, then voluntary evictions, then service in core order with
//! shared-fetch-miss charging) are preserved *by construction*, and the
//! engine is bit-identical to the scan-based [`crate::TickSimulator`] and
//! the oracle crate's naive tick-by-tick reference. Cost is
//! `O(events · log p)` instead of `O(steps · p)` — on sparse or large-τ
//! workloads, where most timesteps are idle and served steps touch one
//! core, that is the difference between `O(n·p)` and `O(n·log p)` total.

use crate::cache::{Cache, CacheError, Lookup};
use crate::capacity::CapacitySchedule;
use crate::strategy::CacheStrategy;
use crate::types::{ModelError, PageId, SimConfig, Time, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pack a `(time, component_id)` wake-up into one `u128` heap key:
/// time in the high 96 bits, id in the low 32. Integer order on the
/// packed key is exactly lexicographic `(time, id)` order, so a min-heap
/// of packed keys pops wake-ups time-ascending and, within a timestep,
/// id-ascending — while comparisons and sift moves touch a single
/// scalar instead of a two-field tuple.
#[inline]
fn pack(time: Time, id: u32) -> u128 {
    ((time as u128) << 32) | id as u128
}

/// The `time` half of a packed wake-up key.
#[inline]
fn key_time(key: u128) -> Time {
    (key >> 32) as Time
}

/// The `component_id` half of a packed wake-up key.
#[inline]
fn key_id(key: u128) -> u32 {
    key as u32
}

/// Errors surfaced by a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimError {
    /// The workload/config combination is malformed.
    Model(ModelError),
    /// The strategy performed an illegal cache manipulation.
    Cache(CacheError),
    /// The strategy asked to voluntarily evict a cell that is not `Present`.
    BadVoluntaryEviction { cell: usize },
    /// The strategy's [`CacheStrategy::shrink_victims`] named a cell that
    /// is not `Present` (capacity-schedule runs only).
    BadShrinkEviction { cell: usize },
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<CacheError> for SimError {
    fn from(e: CacheError) -> Self {
        SimError::Cache(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Cache(e) => write!(f, "cache error: {e}"),
            SimError::BadVoluntaryEviction { cell } => {
                write!(f, "voluntary eviction of non-present cell {cell}")
            }
            SimError::BadShrinkEviction { cell } => {
                write!(f, "capacity-shrink eviction of non-present cell {cell}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How a single request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Outcome {
    /// Resident page: served from cache.
    Hit,
    /// Absent page: fetch started into `cell`, possibly after evicting
    /// `evicted` from it.
    Fault {
        cell: usize,
        evicted: Option<PageId>,
    },
    /// Page was mid-fetch for another core: fault, but no cell consumed.
    SharedFetchMiss,
}

/// One served request, for step-wise inspection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// Core that issued the request.
    pub core: usize,
    /// Index of the request within the core's sequence (0-based).
    pub index: usize,
    /// The requested page.
    pub page: PageId,
    /// How it was served.
    pub outcome: Outcome,
}

/// Everything that happened in one simulated timestep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// The timestep.
    pub time: Time,
    /// Voluntary evictions applied at the start of the step: `(cell, page)`.
    pub voluntary: Vec<(usize, PageId)>,
    /// Requests served this step, in logical (core) order.
    pub served: Vec<Served>,
}

/// Aggregate result of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Per-core fault counts.
    pub faults: Vec<u64>,
    /// Per-core hit counts.
    pub hits: Vec<u64>,
    /// Completion time of the last request (0 for an empty workload).
    pub makespan: Time,
    /// Issue times of each core's faults, ascending.
    pub fault_times: Vec<Vec<Time>>,
    /// The configuration the run used.
    pub config: SimConfig,
}

impl SimResult {
    /// Total faults across all cores (the FTF objective).
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total hits across all cores.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Number of faults core `core` had incurred by time `t` (inclusive of
    /// faults issued at `t`) — the quantity PARTIAL-INDIVIDUAL-FAULTS bounds.
    pub fn faults_at(&self, core: usize, t: Time) -> u64 {
        self.fault_times[core].partition_point(|&ft| ft <= t) as u64
    }

    /// The whole fault vector at time `t`.
    pub fn fault_vector_at(&self, t: Time) -> Vec<u64> {
        (0..self.fault_times.len())
            .map(|c| self.faults_at(c, t))
            .collect()
    }
}

/// A stepping simulator: drive it with [`Simulator::step`] or run it to
/// completion with [`Simulator::run`] / the [`simulate`] convenience.
///
/// This is the event-driven engine (see the module docs): per-core clocks
/// live in a min-queue of `(next_time, core)` wake-ups, fetch completions
/// are first-class events, and idle time is skipped outright.
pub struct Simulator<'w, S: CacheStrategy> {
    workload: &'w Workload,
    cfg: SimConfig,
    /// The capacity schedule `K(t)` ([`CapacitySchedule::fixed`] for
    /// constant-K runs — then `cap_idx` never advances and every
    /// capacity branch is a no-op, so the fixed path is the pre-capacity
    /// engine verbatim). Capacity-change times are first-class events:
    /// [`Simulator::next_event_time_with`] mins the next change into the
    /// step time, so idle-gap skipping stays exact and shrink evictions
    /// land exactly at the change time.
    capacity: CapacitySchedule,
    /// Cursor into `capacity.changes()`: changes before it are applied.
    cap_idx: usize,
    strategy: S,
    cache: Cache,
    pos: Vec<usize>,
    ready: Vec<Time>,
    /// Request-issue wake-ups, keyed [`pack`]`(issue_time, core)`.
    /// Invariant: exactly one live entry per unfinished core — an entry
    /// is popped only when its core is served at that time, and serving
    /// pushes the core's next wake-up (if any remain) — so no entry is
    /// ever stale.
    issue: BinaryHeap<Reverse<u128>>,
    /// Cores whose next request issues at exactly `last_time + 1` — the
    /// dense fast path. A hit (and any fault when `τ = 0`) re-arms for
    /// the immediately following timestep, so in dense regimes every
    /// wake-up would be pushed and re-popped with the same key; instead
    /// such cores are appended here (in serve order, hence ascending core
    /// order) and merged with the heap's due entries at the next step.
    /// Invariant: non-empty only until the next served step, which (see
    /// [`Simulator::next_event_time_with`]) is then exactly
    /// `last_time + 1` and drains it entirely.
    issue_next: Vec<u32>,
    /// Fetch-completion wake-ups, keyed [`pack`]`(ready_at, cell)` — one
    /// per in-flight fetch started by a core's *final* request (all
    /// others ride the core's own issue wake-up, see
    /// [`Simulator::pending_promote`]). A fetching cell cannot be
    /// evicted, and a cell is re-fetched only after its previous
    /// completion was drained (residency precedes eviction), so no entry
    /// is ever stale here either.
    completions: BinaryHeap<Reverse<u128>>,
    /// `pending_promote[core]` is the cell whose fetch — started by this
    /// core's *non-final* request — completes exactly when the core's
    /// next request issues (`u32::MAX` when none). Such a completion
    /// needs no heap entry: the core is in the due set of the first
    /// served step at or past its ready time (that is what its issue
    /// wake-up means), which is precisely the step where the heap drain
    /// would have promoted the cell, so promoting when the core enters
    /// the due set — still ahead of pins, voluntary evictions, and
    /// service — is observably identical. Only a fetch started by a
    /// core's final request (no future wake-up) goes through the
    /// [`Simulator::completions`] heap.
    pending_promote: Vec<u32>,
    faults: Vec<u64>,
    hits: Vec<u64>,
    fault_times: Vec<Vec<Time>>,
    makespan: Time,
    last_time: Time,
    // Persistent per-step buffers so the hot path ([`Simulator::run`])
    // allocates nothing per timestep.
    voluntary_buf: Vec<(usize, PageId)>,
    served_buf: Vec<Served>,
    due_buf: Vec<u32>,
}

impl<'w, S: CacheStrategy> Simulator<'w, S> {
    /// Create a simulator; calls the strategy's [`CacheStrategy::begin`].
    pub fn new(workload: &'w Workload, cfg: SimConfig, strategy: S) -> Result<Self, SimError> {
        Simulator::with_capacity(
            workload,
            cfg,
            CapacitySchedule::fixed(cfg.cache_size),
            strategy,
        )
    }

    /// Create a simulator whose cache capacity follows `capacity`. The
    /// schedule's initial capacity must equal `cfg.cache_size` and its
    /// minimum must stay at or above the core count; the cache is
    /// allocated at the schedule's maximum and its limit moved at each
    /// change. [`CapacitySchedule::fixed`]`(cfg.cache_size)` reproduces
    /// [`Simulator::new`] exactly.
    pub fn with_capacity(
        workload: &'w Workload,
        cfg: SimConfig,
        capacity: CapacitySchedule,
        mut strategy: S,
    ) -> Result<Self, SimError> {
        cfg.validate(workload)?;
        if capacity.initial_k() != cfg.cache_size {
            return Err(ModelError::CapacityMismatch {
                config_k: cfg.cache_size,
                initial_k: capacity.initial_k(),
            }
            .into());
        }
        if capacity.min_k() < workload.num_cores() {
            return Err(ModelError::CapacityBelowCores {
                min_k: capacity.min_k(),
                cores: workload.num_cores(),
            }
            .into());
        }
        strategy.begin(workload, &cfg);
        let p = workload.num_cores();
        let mut issue = BinaryHeap::with_capacity(p);
        for core in 0..p {
            if workload.len(core) > 0 {
                issue.push(Reverse(pack(1, core as u32)));
            }
        }
        let mut cache = Cache::new(capacity.max_k(), p);
        cache.set_limit(cfg.cache_size);
        Ok(Simulator {
            workload,
            cfg,
            capacity,
            cap_idx: 0,
            strategy,
            cache,
            pos: vec![0; p],
            ready: vec![1; p],
            issue,
            issue_next: Vec::with_capacity(p),
            completions: BinaryHeap::with_capacity(p),
            pending_promote: vec![u32::MAX; p],
            faults: vec![0; p],
            hits: vec![0; p],
            fault_times: vec![Vec::new(); p],
            makespan: 0,
            last_time: 0,
            voluntary_buf: Vec::new(),
            served_buf: Vec::with_capacity(p),
            due_buf: Vec::with_capacity(p),
        })
    }

    /// The shared cache, for inspection between steps.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Next request index of each core.
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// Time at which each core's next request issues.
    pub fn ready_times(&self) -> &[Time] {
        &self.ready
    }

    /// `true` once every sequence has been fully served.
    pub fn finished(&self) -> bool {
        self.pos
            .iter()
            .zip(self.workload.sequences())
            .all(|(&pos, seq)| pos >= seq.len())
    }

    /// The next timestep to serve: the earliest queued request-issue
    /// wake-up, unless the strategy declares an earlier non-stale
    /// voluntary time. `heap_min` is the already-peeked issue-heap top
    /// (an `O(1)` peek — no core scan), passed in so
    /// [`Simulator::step_inner`] reads the heap top once per step and
    /// reuses it for due-event collection.
    ///
    /// This implements the boundary contract documented on
    /// [`CacheStrategy::next_voluntary_time`]: stale declarations (at or
    /// before the last served timestep) are ignored so each step strictly
    /// advances time; a declaration coinciding with `next_request` folds
    /// into that step; and once the issue queue is empty (every sequence
    /// finished) any declaration is dropped and the run ends.
    fn next_event_time_with(&self, heap_min: Option<u128>) -> Option<Time> {
        // A deferred core is due at `last_time + 1`, which no queued heap
        // entry beats (every entry's time is strictly past its push step),
        // so the deferred list short-circuits the peek.
        let next_request = if self.issue_next.is_empty() {
            key_time(heap_min?)
        } else {
            self.last_time + 1
        };
        let mut t = next_request;
        if let Some(vt) = self.strategy.next_voluntary_time() {
            if vt > self.last_time && vt < t {
                t = vt;
            }
        }
        // A capacity change is a first-class event: serve a (possibly
        // quiet) step at the change time so shrink evictions land exactly
        // there. The `heap_min?` above already dropped post-final changes:
        // once every sequence is finished the run ends.
        if let Some((ct, _)) = self.capacity.next_change_after(self.last_time) {
            if ct < t {
                t = ct;
            }
        }
        Some(t)
    }

    /// Serve one timestep (the next time at which any request is due).
    /// Returns `Ok(None)` when every sequence is finished.
    pub fn step(&mut self) -> Result<Option<StepReport>, SimError> {
        match self.step_inner()? {
            None => Ok(None),
            Some(t) => Ok(Some(StepReport {
                time: t,
                voluntary: std::mem::take(&mut self.voluntary_buf),
                served: std::mem::take(&mut self.served_buf),
            })),
        }
    }

    /// Serve one timestep into the persistent buffers, returning the time
    /// served (`None` once every sequence is finished). [`Simulator::run`]
    /// drives this directly, so the hot path performs no per-step
    /// allocation; [`Simulator::step`] wraps the buffers into a
    /// [`StepReport`] for callers that want the trace.
    fn step_inner(&mut self) -> Result<Option<Time>, SimError> {
        let heap_min = self.issue.peek().map(|&Reverse(key)| key);
        let Some(t) = self.next_event_time_with(heap_min) else {
            return Ok(None);
        };
        self.last_time = t;
        // Fetch completions are first-class events: drain every completion
        // due by `t` so the strategy and the serve loop observe those
        // pages as `Present` — exactly what the lazy `promote_due(t)` scan
        // produced, but in O(completions due · log K).
        while let Some(&Reverse(key)) = self.completions.peek() {
            if key_time(key) > t {
                break;
            }
            self.completions.pop();
            self.cache.promote_cell(key_id(key) as usize, t);
        }
        self.voluntary_buf.clear();
        self.served_buf.clear();

        // Collect this step's request-issue events. Every queued heap
        // entry has time ≥ t (ready times are always pushed strictly in
        // the future and t is the queue minimum or earlier), so popping
        // while time = t yields exactly the due heap cores in increasing
        // core order. Deferred cores (`issue_next`) are all due too — a
        // non-empty deferred list forces t = last step + 1 — and are
        // already core-ascending (they were appended in serve order), so
        // a two-way merge restores the model's fixed logical order. A
        // core is never in both (one live wake-up per unfinished core).
        self.due_buf.clear();
        if !matches!(heap_min, Some(key) if key_time(key) <= t) {
            // Nothing due in the heap: the due set is the deferred list
            // verbatim, so take it wholesale (due_buf was just cleared,
            // so the swap leaves issue_next empty, as draining requires).
            std::mem::swap(&mut self.due_buf, &mut self.issue_next);
        } else {
            let mut deferred = 0;
            while let Some(&Reverse(key)) = self.issue.peek() {
                if key_time(key) > t {
                    break;
                }
                let core = key_id(key);
                while deferred < self.issue_next.len() && self.issue_next[deferred] < core {
                    self.due_buf.push(self.issue_next[deferred]);
                    deferred += 1;
                }
                self.issue.pop();
                self.due_buf.push(core);
            }
            self.due_buf.extend_from_slice(&self.issue_next[deferred..]);
            self.issue_next.clear();
        }

        // Pin every page requested this parallel step *before* the strategy
        // gets to evict voluntarily: parallel reads require `R(x) ⊆ C'`
        // (Algorithms 1 and 2), so evicting a page that is requested at `t`
        // must fail even when the eviction is voluntary.
        // Detach the due list so the loops below can iterate it while
        // borrowing `self` mutably (restored before returning).
        let due = std::mem::take(&mut self.due_buf);
        for &core in &due {
            let core = core as usize;
            // Entering the due set consumes the core's own completed
            // fetch, if one was riding its wake-up (see
            // [`Simulator::pending_promote`]); promotion order across
            // cells is immaterial and pinning does not read cell states,
            // so interleaving with the pin loop is unobservable.
            let pending = self.pending_promote[core];
            if pending != u32::MAX {
                self.cache.promote_cell(pending as usize, t);
                self.pending_promote[core] = u32::MAX;
            }
            self.cache
                .pin_page(self.workload.sequence(core)[self.pos[core]]);
        }

        // Capacity changes due at `t` apply after pinning (the pages
        // requested this step stay in the configuration, `R(x) ⊆ C'`) and
        // before the strategy's own voluntary evictions; shrink evictions
        // are traced like voluntary ones.
        apply_capacity_step(
            t,
            &self.capacity,
            &mut self.cap_idx,
            &mut self.cache,
            &mut self.strategy,
            &mut self.voluntary_buf,
        )?;

        for cell in self.strategy.voluntary_evictions(t, &self.cache) {
            if !matches!(self.cache.cell(cell), crate::cache::CellState::Present(_)) {
                return Err(SimError::BadVoluntaryEviction { cell });
            }
            let page = self.cache.evict(cell)?;
            self.strategy.on_evict(page, cell);
            self.voluntary_buf.push((cell, page));
        }

        // Serve in due (= increasing core) order. Re-arming for `t + 1` —
        // every hit, and every fault when τ = 0 — is the overwhelmingly
        // common case on dense workloads, so it is not pushed per core:
        // if EVERY due core re-armed for `t + 1`, the next deferred list
        // is the due list verbatim (same cores, same order) and is
        // installed by one swap after the loop; only heap-bound re-arms
        // (ready later than `t + 1`) are pushed inline, and the mixed /
        // finished cases rebuild the deferred list by filtering `due`.
        let mut all_deferred = true;
        for &core in &due {
            let core = core as usize;
            let seq = self.workload.sequence(core);
            let index = self.pos[core];
            let page = seq[index];
            let outcome = match self.cache.lookup(page) {
                Lookup::Present { .. } => {
                    self.hits[core] += 1;
                    self.strategy.on_hit(core, page, t, &self.cache);
                    self.ready[core] = t + 1;
                    self.makespan = self.makespan.max(t);
                    Outcome::Hit
                }
                Lookup::Fetching { .. } => {
                    // In flight for another core (same core cannot be
                    // mid-fetch while issuing). Fault, no new cell.
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    self.strategy
                        .on_shared_fetch_miss(core, page, t, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::SharedFetchMiss
                }
                Lookup::Absent => {
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    let cell = self.strategy.choose_cell(core, page, t, &self.cache);
                    let evicted = match self.cache.cell(cell) {
                        crate::cache::CellState::Present(_) => {
                            let victim = self.cache.evict(cell)?;
                            self.strategy.on_evict(victim, cell);
                            Some(victim)
                        }
                        crate::cache::CellState::Empty => None,
                        crate::cache::CellState::Fetching { .. } => {
                            return Err(SimError::Cache(CacheError::EvictFetching { cell }));
                        }
                    };
                    self.cache
                        .start_fetch(cell, page, core, t + self.cfg.tau + 1)?;
                    if index + 1 < seq.len() {
                        // The completion coincides with this core's next
                        // wake-up: let it ride that event instead of
                        // paying for a heap entry.
                        self.pending_promote[core] = cell as u32;
                    } else {
                        self.completions
                            .push(Reverse(pack(t + self.cfg.tau + 1, cell as u32)));
                    }
                    self.strategy.on_fault(core, page, t, cell, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::Fault { cell, evicted }
                }
            };
            self.pos[core] += 1;
            if self.pos[core] < seq.len() {
                // Re-arm the core's clock: its next request issues at the
                // just-computed ready time (t + 1 on a hit, t + τ + 1 on
                // either kind of fault), always strictly after t. The
                // t + 1 case defers to `issue_next` (installed after the
                // loop): it is served at the very next step, so a heap
                // push/re-pop with the same key would be pure churn.
                if self.ready[core] != t + 1 {
                    all_deferred = false;
                    self.issue
                        .push(Reverse(pack(self.ready[core], core as u32)));
                }
            } else {
                all_deferred = false;
            }
            self.served_buf.push(Served {
                core,
                index,
                page,
                outcome,
            });
        }
        if all_deferred {
            // `issue_next` was drained during due collection, so the swap
            // leaves `due_buf` empty for the next step.
            self.due_buf = std::mem::replace(&mut self.issue_next, due);
        } else {
            for &core in &due {
                let c = core as usize;
                if self.pos[c] < self.workload.len(c) && self.ready[c] == t + 1 {
                    self.issue_next.push(core);
                }
            }
            self.due_buf = due;
        }
        self.cache.clear_pins();
        Ok(Some(t))
    }

    /// Run to completion and return the aggregate result.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        while self.step_inner()?.is_some() {}
        Ok(self.into_result())
    }

    /// Run to completion, additionally collecting every [`StepReport`]
    /// (one per non-empty timestep) — the full event trace.
    pub fn run_with_trace(mut self) -> Result<(SimResult, Vec<StepReport>), SimError> {
        let mut trace = Vec::new();
        while let Some(report) = self.step()? {
            trace.push(report);
        }
        Ok((self.into_result(), trace))
    }

    fn into_result(self) -> SimResult {
        SimResult {
            faults: self.faults,
            hits: self.hits,
            makespan: self.makespan,
            fault_times: self.fault_times,
            config: self.cfg,
        }
    }
}

/// Apply every capacity change due at `t` and evict down to the limit —
/// the per-step capacity transition shared verbatim by the event engine,
/// the tick engine, and the online engine (the oracle crate's naive
/// reference re-implements it independently, as it does every rule).
///
/// Ordering within the step: the limit moves and
/// [`CacheStrategy::on_capacity_change`] fires for each change due by
/// `t` (in schedule order), then shrink evictions bring occupancy back
/// to the limit, strategy-chosen first
/// ([`CacheStrategy::shrink_victims`]) with a lowest-index-evictable
/// fallback covering any shortfall. Pinned and in-flight cells cannot be
/// evicted; if they alone exceed the limit, the remaining debt carries
/// into subsequent steps (this function also settles such debt on steps
/// with no change of their own). Shrink evictions are appended to
/// `voluntary_buf`, so they are charged and traced exactly like
/// voluntary evictions.
///
/// Under [`CapacitySchedule::fixed`] both loops are dead: the fixed path
/// costs two comparisons per step and changes no behavior.
pub(crate) fn apply_capacity_step<S: CacheStrategy>(
    t: Time,
    capacity: &CapacitySchedule,
    cap_idx: &mut usize,
    cache: &mut Cache,
    strategy: &mut S,
    voluntary_buf: &mut Vec<(usize, PageId)>,
) -> Result<(), SimError> {
    let changes = capacity.changes();
    while *cap_idx < changes.len() && changes[*cap_idx].0 <= t {
        let (_, k) = changes[*cap_idx];
        *cap_idx += 1;
        cache.set_limit(k);
        strategy.on_capacity_change(t, k, cache);
    }
    while cache.over_limit() > 0 {
        let need = cache.over_limit();
        let victims = strategy.shrink_victims(need, t, cache);
        let mut progress = false;
        for cell in victims.into_iter().take(need) {
            if cache.over_limit() == 0 {
                break;
            }
            if !matches!(cache.cell(cell), crate::cache::CellState::Present(_)) {
                return Err(SimError::BadShrinkEviction { cell });
            }
            let page = cache.evict(cell)?;
            strategy.on_evict(page, cell);
            voluntary_buf.push((cell, page));
            progress = true;
        }
        if !progress {
            // The strategy under-delivered: cover the shortfall with the
            // lowest-index evictable cell, or carry the debt if nothing
            // is evictable (every occupied cell pinned or mid-fetch).
            let Some(cell) = cache.evictable_cells().map(|(i, _, _)| i).next() else {
                break;
            };
            let page = cache.evict(cell)?;
            strategy.on_evict(page, cell);
            voluntary_buf.push((cell, page));
        }
    }
    Ok(())
}

/// Run `strategy` on `workload` under `cfg` and return the result.
pub fn simulate<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    strategy: S,
) -> Result<SimResult, SimError> {
    Simulator::new(workload, cfg, strategy)?.run()
}

/// Run `strategy` on `workload` under `cfg` with cache capacity following
/// `capacity` (see [`CapacitySchedule`]).
pub fn simulate_with_capacity<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    capacity: CapacitySchedule,
    strategy: S,
) -> Result<SimResult, SimError> {
    Simulator::with_capacity(workload, cfg, capacity, strategy)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evicts the lowest-indexed present cell; uses empty cells first.
    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("a victim always exists when K >= p")
        }
    }

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn single_core_timing_with_tau() {
        // [a, b] with K=2, tau=3: a faults at 1 (done 4), b at 5 (done 8).
        let wl = w(&[&[1, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 3), FirstFit).unwrap();
        assert_eq!(r.faults, vec![2]);
        assert_eq!(r.hits, vec![0]);
        assert_eq!(r.fault_times[0], vec![1, 5]);
        assert_eq!(r.makespan, 8);
    }

    #[test]
    fn refetch_becomes_hit_exactly_when_ready() {
        // [a, a] with K=1, tau=3: fault at 1, page ready at 5; second
        // request issues at 5 and hits.
        let wl = w(&[&[1, 1]]);
        let r = simulate(&wl, SimConfig::new(1, 3), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1]);
        assert_eq!(r.hits, vec![1]);
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn tau_zero_means_unit_time_faults() {
        let wl = w(&[&[1, 2, 1, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 0), FirstFit).unwrap();
        assert_eq!(r.total_faults(), 2);
        assert_eq!(r.total_hits(), 2);
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn fault_delays_accumulate() {
        // Three distinct pages, K=3, tau=2: faults at t = 1, 4, 7.
        let wl = w(&[&[1, 2, 3]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        assert_eq!(r.fault_times[0], vec![1, 4, 7]);
        assert_eq!(r.makespan, 9);
    }

    #[test]
    fn logical_order_within_timestep() {
        // Both cores request page 1 at t=1 (non-disjoint). Core 0 faults
        // and starts the fetch; core 1 sees the in-flight fetch and takes a
        // shared-fetch miss without consuming a second cell.
        let wl = w(&[&[1], &[1]]);
        let mut sim = Simulator::new(&wl, SimConfig::new(2, 4), FirstFit).unwrap();
        let report = sim.step().unwrap().unwrap();
        assert_eq!(report.served.len(), 2);
        assert!(matches!(report.served[0].outcome, Outcome::Fault { .. }));
        assert_eq!(report.served[1].outcome, Outcome::SharedFetchMiss);
        assert_eq!(sim.cache().occupied(), 1);
        let r = sim.run().unwrap();
        assert_eq!(r.faults, vec![1, 1]);
    }

    #[test]
    fn later_core_hits_page_fetched_long_before() {
        // Core 0 brings page 1 in at t=1 (ready at 3, tau=2). Core 1 first
        // requests its own page (fault, delayed to t=4), then page 1 at
        // t=4, by which time it is resident: a hit.
        let wl = w(&[&[1], &[2, 1]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1, 1]);
        assert_eq!(r.hits, vec![0, 1]);
    }

    #[test]
    fn parallel_service_no_cross_core_delay() {
        // Disjoint single-page loops: each core faults once then hits.
        // Faults on one core must not delay the other.
        let wl = w(&[&[1, 1, 1], &[2, 2, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 5), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1, 1]);
        assert_eq!(r.hits, vec![2, 2]);
        // Fault at 1, hits at 7 and 8 on both cores.
        assert_eq!(r.makespan, 8);
    }

    #[test]
    fn faults_at_checkpoints() {
        let wl = w(&[&[1, 2, 3]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        // Fault issue times: 1, 4, 7.
        assert_eq!(r.faults_at(0, 0), 0);
        assert_eq!(r.faults_at(0, 1), 1);
        assert_eq!(r.faults_at(0, 3), 1);
        assert_eq!(r.faults_at(0, 4), 2);
        assert_eq!(r.faults_at(0, 100), 3);
        assert_eq!(r.fault_vector_at(4), vec![2]);
    }

    #[test]
    fn empty_workload_is_trivial() {
        let wl = w(&[&[], &[]]);
        let r = simulate(&wl, SimConfig::new(2, 3), FirstFit).unwrap();
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.makespan, 0);
    }

    /// Voluntarily evicts page 1 at `at`, wherever it is resident (a
    /// dishonest strategy used to probe voluntary-eviction semantics).
    struct ForcingEvict {
        at: Time,
    }
    impl CacheStrategy for ForcingEvict {
        fn name(&self) -> String {
            "ForcingEvict".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .unwrap()
        }
        fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
            if time == self.at {
                cache
                    .present_cells()
                    .filter(|(_, p, _)| *p == PageId(1))
                    .map(|(i, _, _)| i)
                    .collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn voluntary_evictions_apply_before_service() {
        // [1, 2, 1] K=3 tau=0: honest would fault twice; evicting page 1
        // at t=2 (while page 2 is being served) forces a third fault at t=3.
        let wl = w(&[&[1, 2, 1]]);
        let r = simulate(&wl, SimConfig::new(3, 0), ForcingEvict { at: 2 }).unwrap();
        assert_eq!(r.total_faults(), 3);
    }

    #[test]
    fn same_step_voluntary_eviction_of_requested_page_is_rejected() {
        // Page 1 is requested again at t=3; a voluntary eviction of it in
        // that very step would violate R(x) ⊆ C', so the engine pins due
        // pages first and surfaces the attempt as EvictPinned.
        let wl = w(&[&[1, 2, 1]]);
        let err = simulate(&wl, SimConfig::new(3, 0), ForcingEvict { at: 3 }).unwrap_err();
        assert_eq!(err, SimError::Cache(CacheError::EvictPinned { cell: 0 }));
    }

    #[test]
    fn invalid_voluntary_eviction_is_an_error() {
        struct Bad;
        impl CacheStrategy for Bad {
            fn name(&self) -> String {
                "Bad".into()
            }
            fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
                cache.empty_cell().unwrap()
            }
            fn voluntary_evictions(&mut self, _t: Time, _c: &Cache) -> Vec<usize> {
                vec![0] // cell 0 is empty at t=1
            }
        }
        let wl = w(&[&[1]]);
        assert_eq!(
            simulate(&wl, SimConfig::new(1, 0), Bad).unwrap_err(),
            SimError::BadVoluntaryEviction { cell: 0 }
        );
    }

    #[test]
    fn choosing_a_fetching_cell_is_an_error() {
        struct Bad;
        impl CacheStrategy for Bad {
            fn name(&self) -> String {
                "Bad".into()
            }
            fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, _cache: &Cache) -> usize {
                0 // always cell 0, even when it is mid-fetch
            }
        }
        // Two cores fault simultaneously; core 1's placement targets the
        // cell core 0 is fetching into.
        let wl = w(&[&[1], &[2]]);
        let err = simulate(&wl, SimConfig::new(2, 3), Bad).unwrap_err();
        assert_eq!(err, SimError::Cache(CacheError::EvictFetching { cell: 0 }));
    }

    #[test]
    fn trace_matches_aggregate_result() {
        let wl = w(&[&[1, 2, 1, 2], &[7, 7, 8, 8]]);
        let cfg = SimConfig::new(3, 2);
        let sim = Simulator::new(&wl, cfg, FirstFit).unwrap();
        let (result, trace) = sim.run_with_trace().unwrap();
        let baseline = simulate(&wl, cfg, FirstFit).unwrap();
        assert_eq!(result, baseline);
        // Every served request appears exactly once in the trace.
        let served: usize = trace.iter().map(|s| s.served.len()).sum();
        assert_eq!(served, wl.total_len());
        // Trace times strictly increase and faults in the trace agree.
        assert!(trace.windows(2).all(|w| w[0].time < w[1].time));
        let traced_faults = trace
            .iter()
            .flat_map(|s| &s.served)
            .filter(|s| !matches!(s.outcome, Outcome::Hit))
            .count() as u64;
        assert_eq!(traced_faults, result.total_faults());
    }

    #[test]
    fn makespan_counts_trailing_fetch() {
        // Last request is a miss at t=1 with tau=4: completes at 5.
        let wl = w(&[&[1]]);
        let r = simulate(&wl, SimConfig::new(1, 4), FirstFit).unwrap();
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn capacity_drop_evicts_before_serving() {
        // [1, 2, 3, 1] with K=3, tau=0 and a drop to K=2 at t=4: pages
        // 1..3 are resident after t=3; the shrink at t=4 evicts the
        // lowest-index evictable cell not pinned by the t=4 request.
        // Page 1 is requested (and pinned) at t=4, so the shrink evicts
        // page 2 (cell 1) and page 1 still hits.
        let wl = w(&[&[1, 2, 3, 1]]);
        let cap: CapacitySchedule = "3,2@4".parse().unwrap();
        let (r, trace) = Simulator::with_capacity(&wl, SimConfig::new(3, 0), cap, FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap();
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.total_hits(), 1);
        let step4 = trace.iter().find(|s| s.time == 4).unwrap();
        assert_eq!(step4.voluntary, vec![(1, PageId(2))]);
        assert!(matches!(step4.served[0].outcome, Outcome::Hit));
    }

    #[test]
    fn capacity_drop_at_quiet_time_is_observable() {
        // [1, 2, 1] with tau=2, K=3 dropping to 1 at t=5. The core is
        // mid-fetch over 4..7 (page 2), so t=5 is a quiet timestep the
        // engine would normally skip — but the capacity change forces a
        // served step there, and the shrink evicts the resident page 1
        // (page 2 is mid-fetch, unevictable). The third request then
        // misses where a skipped shrink would have hit.
        let wl = w(&[&[1, 2, 1]]);
        let cap: CapacitySchedule = "3,1@5".parse().unwrap();
        let (r, trace) = Simulator::with_capacity(&wl, SimConfig::new(3, 2), cap, FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap();
        let step5 = trace.iter().find(|s| s.time == 5).unwrap();
        assert!(step5.served.is_empty());
        assert_eq!(step5.voluntary, vec![(0, PageId(1))]);
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.total_hits(), 0);
    }

    #[test]
    fn capacity_growth_reopens_cells() {
        // K=2 shrunk... rather grown: [1,2,3,1] K=2 grows to 3 at t=3.
        // Fixed K=2 would evict page 1 on page 3's fault; with growth the
        // empty third cell absorbs page 3 and page 1 still hits.
        let wl = w(&[&[1, 2, 3, 1]]);
        let cap: CapacitySchedule = "2,3@3".parse().unwrap();
        let r = simulate_with_capacity(&wl, SimConfig::new(2, 0), cap, FirstFit).unwrap();
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.total_hits(), 1);
        let fixed = simulate(&wl, SimConfig::new(2, 0), FirstFit).unwrap();
        assert_eq!(fixed.total_faults(), 4);
    }

    #[test]
    fn fixed_capacity_schedule_is_bit_identical() {
        let wl = w(&[&[1, 2, 1, 2, 3, 1], &[7, 7, 8, 8, 7, 9]]);
        let cfg = SimConfig::new(3, 2);
        let (plain, plain_trace) = Simulator::new(&wl, cfg, FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap();
        let (fixed, fixed_trace) =
            Simulator::with_capacity(&wl, cfg, CapacitySchedule::fixed(3), FirstFit)
                .unwrap()
                .run_with_trace()
                .unwrap();
        assert_eq!(plain, fixed);
        assert_eq!(plain_trace, fixed_trace);
    }

    #[test]
    fn capacity_validation_errors() {
        let wl = w(&[&[1], &[2]]);
        let cfg = SimConfig::new(4, 0);
        let err = Simulator::with_capacity(&wl, cfg, "4,1@5".parse().unwrap(), FirstFit)
            .err()
            .unwrap();
        assert_eq!(
            err,
            SimError::Model(ModelError::CapacityBelowCores { min_k: 1, cores: 2 })
        );
        let err = Simulator::with_capacity(&wl, cfg, CapacitySchedule::fixed(5), FirstFit)
            .err()
            .unwrap();
        assert_eq!(
            err,
            SimError::Model(ModelError::CapacityMismatch {
                config_k: 4,
                initial_k: 5
            })
        );
    }

    #[test]
    fn post_final_capacity_changes_are_dropped() {
        let wl = w(&[&[1, 2]]);
        let cfg = SimConfig::new(2, 0);
        let cap: CapacitySchedule = "2,3@100".parse().unwrap();
        let (r, trace) = Simulator::with_capacity(&wl, cfg, cap, FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap();
        let (pr, pt) = Simulator::new(&wl, cfg, FirstFit)
            .unwrap()
            .run_with_trace()
            .unwrap();
        assert_eq!(r, pr);
        assert_eq!(trace, pt);
    }
}
