//! The discrete-time simulation engine.
//!
//! Semantics (Section 3 of the paper, pinned down):
//!
//! * Time is discrete; core `j`'s first request issues at `t = 1`.
//! * All cores whose next request is due at `t` are served at `t`, in
//!   increasing core order (the fixed logical order); a request served
//!   later within the timestep observes the cache effects of earlier ones.
//! * A **hit** completes at `t`; the core's next request issues at `t + 1`.
//! * A **miss** evicts a victim immediately, reserves the cell for the
//!   fetch (unusable and unevictable until done), completes at `t + τ`,
//!   and the core's next request issues at `t + τ + 1`. Thus a miss delays
//!   all remaining requests of that core by the additive term `τ`.
//! * A request for a page that is mid-fetch for *another* core (possible
//!   only for non-disjoint workloads) counts as a fault for the requesting
//!   core and delays it by `τ`, but allocates no second cell.
//! * All pages requested in a parallel step are read in parallel, so none
//!   of them may be evicted during that step (they are *pinned*). This
//!   mirrors the `R(x) ⊆ C'` constraint of the paper's Algorithms 1 and 2
//!   and makes DP optima exactly achievable by the engine. Pins are placed
//!   before the strategy's voluntary evictions run, so a voluntary
//!   eviction of a currently requested page is rejected too.
//! * Strategies cannot delay or reorder requests.
//! * The engine fast-forwards over timesteps at which no request is due,
//!   except those a strategy declares via
//!   [`crate::CacheStrategy::next_voluntary_time`]: the paper's model
//!   permits voluntary evictions at any timestep, including ones where
//!   every core is mid-fetch.

use crate::cache::{Cache, CacheError, Lookup};
use crate::strategy::CacheStrategy;
use crate::types::{ModelError, PageId, SimConfig, Time, Workload};

/// Errors surfaced by a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimError {
    /// The workload/config combination is malformed.
    Model(ModelError),
    /// The strategy performed an illegal cache manipulation.
    Cache(CacheError),
    /// The strategy asked to voluntarily evict a cell that is not `Present`.
    BadVoluntaryEviction { cell: usize },
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<CacheError> for SimError {
    fn from(e: CacheError) -> Self {
        SimError::Cache(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Cache(e) => write!(f, "cache error: {e}"),
            SimError::BadVoluntaryEviction { cell } => {
                write!(f, "voluntary eviction of non-present cell {cell}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How a single request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Outcome {
    /// Resident page: served from cache.
    Hit,
    /// Absent page: fetch started into `cell`, possibly after evicting
    /// `evicted` from it.
    Fault {
        cell: usize,
        evicted: Option<PageId>,
    },
    /// Page was mid-fetch for another core: fault, but no cell consumed.
    SharedFetchMiss,
}

/// One served request, for step-wise inspection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// Core that issued the request.
    pub core: usize,
    /// Index of the request within the core's sequence (0-based).
    pub index: usize,
    /// The requested page.
    pub page: PageId,
    /// How it was served.
    pub outcome: Outcome,
}

/// Everything that happened in one simulated timestep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// The timestep.
    pub time: Time,
    /// Voluntary evictions applied at the start of the step: `(cell, page)`.
    pub voluntary: Vec<(usize, PageId)>,
    /// Requests served this step, in logical (core) order.
    pub served: Vec<Served>,
}

/// Aggregate result of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Per-core fault counts.
    pub faults: Vec<u64>,
    /// Per-core hit counts.
    pub hits: Vec<u64>,
    /// Completion time of the last request (0 for an empty workload).
    pub makespan: Time,
    /// Issue times of each core's faults, ascending.
    pub fault_times: Vec<Vec<Time>>,
    /// The configuration the run used.
    pub config: SimConfig,
}

impl SimResult {
    /// Total faults across all cores (the FTF objective).
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total hits across all cores.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Number of faults core `core` had incurred by time `t` (inclusive of
    /// faults issued at `t`) — the quantity PARTIAL-INDIVIDUAL-FAULTS bounds.
    pub fn faults_at(&self, core: usize, t: Time) -> u64 {
        self.fault_times[core].partition_point(|&ft| ft <= t) as u64
    }

    /// The whole fault vector at time `t`.
    pub fn fault_vector_at(&self, t: Time) -> Vec<u64> {
        (0..self.fault_times.len())
            .map(|c| self.faults_at(c, t))
            .collect()
    }
}

/// A stepping simulator: drive it with [`Simulator::step`] or run it to
/// completion with [`Simulator::run`] / the [`simulate`] convenience.
pub struct Simulator<'w, S: CacheStrategy> {
    workload: &'w Workload,
    cfg: SimConfig,
    strategy: S,
    cache: Cache,
    pos: Vec<usize>,
    ready: Vec<Time>,
    faults: Vec<u64>,
    hits: Vec<u64>,
    fault_times: Vec<Vec<Time>>,
    makespan: Time,
    last_time: Time,
    // Persistent per-step buffers so the hot path ([`Simulator::run`])
    // allocates nothing per timestep.
    voluntary_buf: Vec<(usize, PageId)>,
    served_buf: Vec<Served>,
}

impl<'w, S: CacheStrategy> Simulator<'w, S> {
    /// Create a simulator; calls the strategy's [`CacheStrategy::begin`].
    pub fn new(workload: &'w Workload, cfg: SimConfig, mut strategy: S) -> Result<Self, SimError> {
        cfg.validate(workload)?;
        strategy.begin(workload, &cfg);
        let p = workload.num_cores();
        Ok(Simulator {
            workload,
            cfg,
            strategy,
            cache: Cache::new(cfg.cache_size, p),
            pos: vec![0; p],
            ready: vec![1; p],
            faults: vec![0; p],
            hits: vec![0; p],
            fault_times: vec![Vec::new(); p],
            makespan: 0,
            last_time: 0,
            voluntary_buf: Vec::new(),
            served_buf: Vec::with_capacity(p),
        })
    }

    /// The shared cache, for inspection between steps.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Next request index of each core.
    pub fn positions(&self) -> &[usize] {
        &self.pos
    }

    /// Time at which each core's next request issues.
    pub fn ready_times(&self) -> &[Time] {
        &self.ready
    }

    /// `true` once every sequence has been fully served.
    pub fn finished(&self) -> bool {
        self.pos
            .iter()
            .zip(self.workload.sequences())
            .all(|(&pos, seq)| pos >= seq.len())
    }

    fn next_event_time(&self) -> Option<Time> {
        let next_request = self
            .pos
            .iter()
            .zip(self.ready.iter())
            .zip(self.workload.sequences())
            .filter(|((&pos, _), seq)| pos < seq.len())
            .map(|((_, &ready), _)| ready)
            .min()?;
        // A strategy may want to evict voluntarily at a timestep where
        // every core is mid-fetch (legal in the paper's model); honor such
        // declared times instead of fast-forwarding past them. Stale
        // declarations (at or before the last served timestep) are ignored,
        // so each step strictly advances time and the run still terminates.
        match self.strategy.next_voluntary_time() {
            Some(vt) if vt > self.last_time && vt < next_request => Some(vt),
            _ => Some(next_request),
        }
    }

    /// Serve one timestep (the next time at which any request is due).
    /// Returns `Ok(None)` when every sequence is finished.
    pub fn step(&mut self) -> Result<Option<StepReport>, SimError> {
        match self.step_inner()? {
            None => Ok(None),
            Some(t) => Ok(Some(StepReport {
                time: t,
                voluntary: std::mem::take(&mut self.voluntary_buf),
                served: std::mem::take(&mut self.served_buf),
            })),
        }
    }

    /// Serve one timestep into the persistent buffers, returning the time
    /// served (`None` once every sequence is finished). [`Simulator::run`]
    /// drives this directly, so the hot path performs no per-step
    /// allocation; [`Simulator::step`] wraps the buffers into a
    /// [`StepReport`] for callers that want the trace.
    fn step_inner(&mut self) -> Result<Option<Time>, SimError> {
        let Some(t) = self.next_event_time() else {
            return Ok(None);
        };
        self.last_time = t;
        self.cache.promote_due(t);
        self.voluntary_buf.clear();
        self.served_buf.clear();

        // Pin every page requested this parallel step *before* the strategy
        // gets to evict voluntarily: parallel reads require `R(x) ⊆ C'`
        // (Algorithms 1 and 2), so evicting a page that is requested at `t`
        // must fail even when the eviction is voluntary.
        for core in 0..self.workload.num_cores() {
            if self.pos[core] < self.workload.len(core) && self.ready[core] == t {
                self.cache
                    .pin_page(self.workload.sequence(core)[self.pos[core]]);
            }
        }

        for cell in self.strategy.voluntary_evictions(t, &self.cache) {
            if !matches!(self.cache.cell(cell), crate::cache::CellState::Present(_)) {
                return Err(SimError::BadVoluntaryEviction { cell });
            }
            let page = self.cache.evict(cell)?;
            self.strategy.on_evict(page, cell);
            self.voluntary_buf.push((cell, page));
        }

        for core in 0..self.workload.num_cores() {
            let seq = self.workload.sequence(core);
            if self.pos[core] >= seq.len() || self.ready[core] != t {
                continue;
            }
            let index = self.pos[core];
            let page = seq[index];
            let outcome = match self.cache.lookup(page) {
                Lookup::Present { .. } => {
                    self.hits[core] += 1;
                    self.strategy.on_hit(core, page, t, &self.cache);
                    self.ready[core] = t + 1;
                    self.makespan = self.makespan.max(t);
                    Outcome::Hit
                }
                Lookup::Fetching { .. } => {
                    // In flight for another core (same core cannot be
                    // mid-fetch while issuing). Fault, no new cell.
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    self.strategy
                        .on_shared_fetch_miss(core, page, t, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::SharedFetchMiss
                }
                Lookup::Absent => {
                    self.faults[core] += 1;
                    self.fault_times[core].push(t);
                    let cell = self.strategy.choose_cell(core, page, t, &self.cache);
                    let evicted = match self.cache.cell(cell) {
                        crate::cache::CellState::Present(_) => {
                            let victim = self.cache.evict(cell)?;
                            self.strategy.on_evict(victim, cell);
                            Some(victim)
                        }
                        crate::cache::CellState::Empty => None,
                        crate::cache::CellState::Fetching { .. } => {
                            return Err(SimError::Cache(CacheError::EvictFetching { cell }));
                        }
                    };
                    self.cache
                        .start_fetch(cell, page, core, t + self.cfg.tau + 1)?;
                    self.strategy.on_fault(core, page, t, cell, &self.cache);
                    self.ready[core] = t + self.cfg.tau + 1;
                    self.makespan = self.makespan.max(t + self.cfg.tau);
                    Outcome::Fault { cell, evicted }
                }
            };
            self.pos[core] += 1;
            self.served_buf.push(Served {
                core,
                index,
                page,
                outcome,
            });
        }
        self.cache.clear_pins();
        Ok(Some(t))
    }

    /// Run to completion and return the aggregate result.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        while self.step_inner()?.is_some() {}
        Ok(self.into_result())
    }

    /// Run to completion, additionally collecting every [`StepReport`]
    /// (one per non-empty timestep) — the full event trace.
    pub fn run_with_trace(mut self) -> Result<(SimResult, Vec<StepReport>), SimError> {
        let mut trace = Vec::new();
        while let Some(report) = self.step()? {
            trace.push(report);
        }
        Ok((self.into_result(), trace))
    }

    fn into_result(self) -> SimResult {
        SimResult {
            faults: self.faults,
            hits: self.hits,
            makespan: self.makespan,
            fault_times: self.fault_times,
            config: self.cfg,
        }
    }
}

/// Run `strategy` on `workload` under `cfg` and return the result.
pub fn simulate<S: CacheStrategy>(
    workload: &Workload,
    cfg: SimConfig,
    strategy: S,
) -> Result<SimResult, SimError> {
    Simulator::new(workload, cfg, strategy)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evicts the lowest-indexed present cell; uses empty cells first.
    struct FirstFit;
    impl CacheStrategy for FirstFit {
        fn name(&self) -> String {
            "FirstFit".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .expect("a victim always exists when K >= p")
        }
    }

    fn w(seqs: &[&[u32]]) -> Workload {
        Workload::from_u32(seqs.iter().map(|s| s.to_vec())).unwrap()
    }

    #[test]
    fn single_core_timing_with_tau() {
        // [a, b] with K=2, tau=3: a faults at 1 (done 4), b at 5 (done 8).
        let wl = w(&[&[1, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 3), FirstFit).unwrap();
        assert_eq!(r.faults, vec![2]);
        assert_eq!(r.hits, vec![0]);
        assert_eq!(r.fault_times[0], vec![1, 5]);
        assert_eq!(r.makespan, 8);
    }

    #[test]
    fn refetch_becomes_hit_exactly_when_ready() {
        // [a, a] with K=1, tau=3: fault at 1, page ready at 5; second
        // request issues at 5 and hits.
        let wl = w(&[&[1, 1]]);
        let r = simulate(&wl, SimConfig::new(1, 3), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1]);
        assert_eq!(r.hits, vec![1]);
        assert_eq!(r.makespan, 5);
    }

    #[test]
    fn tau_zero_means_unit_time_faults() {
        let wl = w(&[&[1, 2, 1, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 0), FirstFit).unwrap();
        assert_eq!(r.total_faults(), 2);
        assert_eq!(r.total_hits(), 2);
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn fault_delays_accumulate() {
        // Three distinct pages, K=3, tau=2: faults at t = 1, 4, 7.
        let wl = w(&[&[1, 2, 3]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        assert_eq!(r.fault_times[0], vec![1, 4, 7]);
        assert_eq!(r.makespan, 9);
    }

    #[test]
    fn logical_order_within_timestep() {
        // Both cores request page 1 at t=1 (non-disjoint). Core 0 faults
        // and starts the fetch; core 1 sees the in-flight fetch and takes a
        // shared-fetch miss without consuming a second cell.
        let wl = w(&[&[1], &[1]]);
        let mut sim = Simulator::new(&wl, SimConfig::new(2, 4), FirstFit).unwrap();
        let report = sim.step().unwrap().unwrap();
        assert_eq!(report.served.len(), 2);
        assert!(matches!(report.served[0].outcome, Outcome::Fault { .. }));
        assert_eq!(report.served[1].outcome, Outcome::SharedFetchMiss);
        assert_eq!(sim.cache().occupied(), 1);
        let r = sim.run().unwrap();
        assert_eq!(r.faults, vec![1, 1]);
    }

    #[test]
    fn later_core_hits_page_fetched_long_before() {
        // Core 0 brings page 1 in at t=1 (ready at 3, tau=2). Core 1 first
        // requests its own page (fault, delayed to t=4), then page 1 at
        // t=4, by which time it is resident: a hit.
        let wl = w(&[&[1], &[2, 1]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1, 1]);
        assert_eq!(r.hits, vec![0, 1]);
    }

    #[test]
    fn parallel_service_no_cross_core_delay() {
        // Disjoint single-page loops: each core faults once then hits.
        // Faults on one core must not delay the other.
        let wl = w(&[&[1, 1, 1], &[2, 2, 2]]);
        let r = simulate(&wl, SimConfig::new(2, 5), FirstFit).unwrap();
        assert_eq!(r.faults, vec![1, 1]);
        assert_eq!(r.hits, vec![2, 2]);
        // Fault at 1, hits at 7 and 8 on both cores.
        assert_eq!(r.makespan, 8);
    }

    #[test]
    fn faults_at_checkpoints() {
        let wl = w(&[&[1, 2, 3]]);
        let r = simulate(&wl, SimConfig::new(3, 2), FirstFit).unwrap();
        // Fault issue times: 1, 4, 7.
        assert_eq!(r.faults_at(0, 0), 0);
        assert_eq!(r.faults_at(0, 1), 1);
        assert_eq!(r.faults_at(0, 3), 1);
        assert_eq!(r.faults_at(0, 4), 2);
        assert_eq!(r.faults_at(0, 100), 3);
        assert_eq!(r.fault_vector_at(4), vec![2]);
    }

    #[test]
    fn empty_workload_is_trivial() {
        let wl = w(&[&[], &[]]);
        let r = simulate(&wl, SimConfig::new(2, 3), FirstFit).unwrap();
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.makespan, 0);
    }

    /// Voluntarily evicts page 1 at `at`, wherever it is resident (a
    /// dishonest strategy used to probe voluntary-eviction semantics).
    struct ForcingEvict {
        at: Time,
    }
    impl CacheStrategy for ForcingEvict {
        fn name(&self) -> String {
            "ForcingEvict".into()
        }
        fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
            cache
                .empty_cell()
                .or_else(|| cache.evictable_cells().map(|(i, _, _)| i).next())
                .unwrap()
        }
        fn voluntary_evictions(&mut self, time: Time, cache: &Cache) -> Vec<usize> {
            if time == self.at {
                cache
                    .present_cells()
                    .filter(|(_, p, _)| *p == PageId(1))
                    .map(|(i, _, _)| i)
                    .collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn voluntary_evictions_apply_before_service() {
        // [1, 2, 1] K=3 tau=0: honest would fault twice; evicting page 1
        // at t=2 (while page 2 is being served) forces a third fault at t=3.
        let wl = w(&[&[1, 2, 1]]);
        let r = simulate(&wl, SimConfig::new(3, 0), ForcingEvict { at: 2 }).unwrap();
        assert_eq!(r.total_faults(), 3);
    }

    #[test]
    fn same_step_voluntary_eviction_of_requested_page_is_rejected() {
        // Page 1 is requested again at t=3; a voluntary eviction of it in
        // that very step would violate R(x) ⊆ C', so the engine pins due
        // pages first and surfaces the attempt as EvictPinned.
        let wl = w(&[&[1, 2, 1]]);
        let err = simulate(&wl, SimConfig::new(3, 0), ForcingEvict { at: 3 }).unwrap_err();
        assert_eq!(err, SimError::Cache(CacheError::EvictPinned { cell: 0 }));
    }

    #[test]
    fn invalid_voluntary_eviction_is_an_error() {
        struct Bad;
        impl CacheStrategy for Bad {
            fn name(&self) -> String {
                "Bad".into()
            }
            fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, cache: &Cache) -> usize {
                cache.empty_cell().unwrap()
            }
            fn voluntary_evictions(&mut self, _t: Time, _c: &Cache) -> Vec<usize> {
                vec![0] // cell 0 is empty at t=1
            }
        }
        let wl = w(&[&[1]]);
        assert_eq!(
            simulate(&wl, SimConfig::new(1, 0), Bad).unwrap_err(),
            SimError::BadVoluntaryEviction { cell: 0 }
        );
    }

    #[test]
    fn choosing_a_fetching_cell_is_an_error() {
        struct Bad;
        impl CacheStrategy for Bad {
            fn name(&self) -> String {
                "Bad".into()
            }
            fn choose_cell(&mut self, _c: usize, _p: PageId, _t: Time, _cache: &Cache) -> usize {
                0 // always cell 0, even when it is mid-fetch
            }
        }
        // Two cores fault simultaneously; core 1's placement targets the
        // cell core 0 is fetching into.
        let wl = w(&[&[1], &[2]]);
        let err = simulate(&wl, SimConfig::new(2, 3), Bad).unwrap_err();
        assert_eq!(err, SimError::Cache(CacheError::EvictFetching { cell: 0 }));
    }

    #[test]
    fn trace_matches_aggregate_result() {
        let wl = w(&[&[1, 2, 1, 2], &[7, 7, 8, 8]]);
        let cfg = SimConfig::new(3, 2);
        let sim = Simulator::new(&wl, cfg, FirstFit).unwrap();
        let (result, trace) = sim.run_with_trace().unwrap();
        let baseline = simulate(&wl, cfg, FirstFit).unwrap();
        assert_eq!(result, baseline);
        // Every served request appears exactly once in the trace.
        let served: usize = trace.iter().map(|s| s.served.len()).sum();
        assert_eq!(served, wl.total_len());
        // Trace times strictly increase and faults in the trace agree.
        assert!(trace.windows(2).all(|w| w[0].time < w[1].time));
        let traced_faults = trace
            .iter()
            .flat_map(|s| &s.served)
            .filter(|s| !matches!(s.outcome, Outcome::Hit))
            .count() as u64;
        assert_eq!(traced_faults, result.total_faults());
    }

    #[test]
    fn makespan_counts_trailing_fetch() {
        // Last request is a miss at t=1 with tau=4: completes at 5.
        let wl = w(&[&[1]]);
        let r = simulate(&wl, SimConfig::new(1, 4), FirstFit).unwrap();
        assert_eq!(r.makespan, 5);
    }
}
